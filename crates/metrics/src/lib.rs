//! # mdx-metrics — lock-free metrics registry with Prometheus exposition
//!
//! A dependency-light metrics substrate for the SR2201 serving stack:
//! monotonic [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s whose
//! hot paths are plain atomic adds — no locks, no allocation after
//! registration. A [`Registry`] owns the metric families; handles returned
//! at registration are cheap `Arc` clones that writers keep and hammer.
//!
//! Reading is pull-based: [`Registry::snapshot`] materializes a consistent
//! point-in-time [`Snapshot`] which renders either as Prometheus text
//! exposition format ([`Snapshot::render_prometheus`]) or as a JSON-ready
//! [`serde::value::Value`] tree ([`Snapshot::to_value`]) for the serve
//! protocol's `metrics` verb.
//!
//! Design rules, in order:
//! 1. **Writers never block.** Every mutation is a relaxed atomic RMW.
//! 2. **Zero allocation after registration.** Handles are `Arc`s around
//!    fixed-size atomic cells; `observe` on a histogram is a bound scan
//!    plus three `fetch_add`s.
//! 3. **Detached costs nothing.** Components take `Option<Handle>`s; the
//!    `None` path is a branch on a constant (pinned by the `metrics` row of
//!    the `engine_observer_overhead` bench).
//!
//! ```
//! use mdx_metrics::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("mdx_cache_hits_total", "Cache hits");
//! hits.inc();
//! let lat = reg.histogram(
//!     "mdx_request_seconds",
//!     "Request latency",
//!     mdx_metrics::DEFAULT_LATENCY_BUCKETS_S,
//! );
//! lat.observe(0.002);
//! let text = reg.snapshot().render_prometheus();
//! assert!(text.contains("mdx_cache_hits_total 1"));
//! assert!(text.contains("mdx_request_seconds_count 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::value::Value;

/// Default latency bucket upper bounds, in seconds.
///
/// Spans 10µs (cache hits answer in ~5µs) through 30s (worst-case cold
/// deadlock sweeps), roughly logarithmic. Shared by the serve request and
/// queue-wait histograms and by the campaign per-row timers.
pub const DEFAULT_LATENCY_BUCKETS_S: &[f64] = &[
    10e-6, 50e-6, 100e-6, 500e-6, 1e-3, 5e-3, 10e-3, 50e-3, 0.1, 0.5, 1.0, 5.0, 30.0,
];

/// Default size bucket upper bounds for "how many things" histograms
/// (active packets per cycle, queue depths, batch sizes).
pub const DEFAULT_SIZE_BUCKETS: &[f64] = &[
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0,
];

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Instantaneous `f64`, may go up or down.
    Gauge,
    /// Fixed-bucket distribution of `f64` observations.
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// A monotonic counter handle. Cheap to clone; all clones share the cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle: an `f64` stored as bits in an `AtomicU64`.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `d` (may be negative) with a CAS loop.
    #[inline]
    pub fn add(&self, d: f64) {
        let mut cur = self.cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .cell
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCell {
    /// Upper bounds, strictly increasing; an implicit `+Inf` bucket follows.
    bounds: Box<[f64]>,
    /// Per-bucket (non-cumulative) observation counts; `bounds.len() + 1`
    /// entries, the last being the overflow (`+Inf`) bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of observed values, `f64` bits, CAS-accumulated.
    sum: AtomicU64,
    /// Exemplar floor, `f64` bits: observations below it never take the
    /// exemplar slot.
    exemplar_min: AtomicU64,
    /// Worst exemplar value seen so far, `f64` bits (`-Inf` until one is
    /// recorded).
    exemplar_value: AtomicU64,
    /// Label of the worst exemplar (a trace id). Mutex is fine: the lock
    /// is only taken when a new worst is being recorded, never on the
    /// plain observe path.
    exemplar_label: Mutex<Option<String>>,
}

/// A fixed-bucket histogram handle.
///
/// `observe` is a linear scan over the bucket bounds (a dozen compares)
/// plus three relaxed atomic adds — no locks, no allocation.
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        self.observe_n(v, 1);
    }

    /// Record `n` identical observations in one shot (bulk import, e.g.
    /// folding a per-run occupancy profile into a service-lifetime
    /// histogram).
    pub fn observe_n(&self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        let cell = &*self.cell;
        let mut idx = cell.bounds.len();
        for (i, b) in cell.bounds.iter().enumerate() {
            if v <= *b {
                idx = i;
                break;
            }
        }
        cell.buckets[idx].fetch_add(n, Ordering::Relaxed);
        cell.count.fetch_add(n, Ordering::Relaxed);
        let add = v * n as f64;
        let mut cur = cell.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match cell
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record a duration, in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Record one observation and offer it as the series' exemplar — the
    /// caller's `label` (typically a trace id) is kept when `v` is at or
    /// above the exemplar threshold *and* beats the current worst.
    ///
    /// Cost above [`Histogram::observe`]: one relaxed load (the threshold
    /// compare) on the common path; the label `Mutex` is only taken for a
    /// new worst. Plain `observe` never touches the exemplar slot, so
    /// series that record no exemplars pay nothing.
    pub fn observe_exemplar(&self, v: f64, label: &str) {
        self.observe(v);
        let cell = &*self.cell;
        if v < f64::from_bits(cell.exemplar_min.load(Ordering::Relaxed)) {
            return;
        }
        if v > f64::from_bits(cell.exemplar_value.load(Ordering::Relaxed)) {
            // Label and value race benignly under concurrent writers: each
            // field ends up from *some* recent worst observation, and the
            // exemplar is diagnostic, not an accounting value.
            *cell.exemplar_label.lock().expect("exemplar label lock") = Some(label.to_string());
            cell.exemplar_value.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Sets the exemplar floor: observations below `min` never take the
    /// exemplar slot (default `0.0` — any non-negative observation may).
    pub fn set_exemplar_threshold(&self, min: f64) {
        self.cell
            .exemplar_min
            .store(min.to_bits(), Ordering::Relaxed);
    }

    /// The current exemplar, when one has been recorded.
    pub fn exemplar(&self) -> Option<Exemplar> {
        let label = self
            .cell
            .exemplar_label
            .lock()
            .expect("exemplar label lock")
            .clone()?;
        Some(Exemplar {
            label,
            value: f64::from_bits(self.cell.exemplar_value.load(Ordering::Relaxed)),
        })
    }

    /// Total number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    #[inline]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.cell.sum.load(Ordering::Relaxed))
    }
}

enum CellRef {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

struct Series {
    labels: Vec<(String, String)>,
    cell: CellRef,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// The metric registry: owns families, hands out write handles.
///
/// Cloning a `Registry` is an `Arc` clone; all clones see the same metrics.
/// Registration takes a `Mutex` (cold path); handle mutation never does.
#[derive(Clone)]
pub struct Registry {
    families: Arc<Mutex<Vec<Family>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.families.lock().map(|g| g.len()).unwrap_or(0);
        write!(f, "Registry({n} families)")
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry {
            families: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> CellRef,
    ) -> CellRef {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut fams = self.families.lock().expect("metrics registry poisoned");
        let fam = match fams.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name:?} registered twice with different kinds ({:?} vs {:?})",
                    f.kind,
                    kind
                );
                f
            }
            None => {
                fams.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                fams.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = fam
            .series
            .iter()
            .find(|s| s.labels.len() == labels.len() && labels_eq(&s.labels, labels))
        {
            return clone_cell(&s.cell);
        }
        let cell = make();
        fam.series.push(Series {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            cell: clone_cell(&cell),
        });
        cell
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, Kind::Counter, labels, || {
            CellRef::Counter(Arc::new(AtomicU64::new(0)))
        }) {
            CellRef::Counter(cell) => Counter { cell },
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, Kind::Gauge, labels, || {
            CellRef::Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
        }) {
            CellRef::Gauge(cell) => Gauge { cell },
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Register (or look up) an unlabeled histogram with the given bucket
    /// upper bounds (strictly increasing; a `+Inf` bucket is implicit).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Register (or look up) a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name:?} bounds must be strictly increasing"
        );
        // A caller-supplied trailing `+Inf` would duplicate the implicit
        // overflow bucket and double-emit `le="+Inf"` in the exposition, so
        // normalize it away: the implicit bucket is the only `+Inf`.
        let bounds = match bounds.split_last() {
            Some((last, rest)) if *last == f64::INFINITY => rest,
            _ => bounds,
        };
        match self.register(name, help, Kind::Histogram, labels, || {
            let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            CellRef::Histogram(Arc::new(HistogramCell {
                bounds: bounds.to_vec().into_boxed_slice(),
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0f64.to_bits()),
                exemplar_min: AtomicU64::new(0f64.to_bits()),
                exemplar_value: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
                exemplar_label: Mutex::new(None),
            }))
        }) {
            CellRef::Histogram(cell) => Histogram { cell },
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Materialize a point-in-time snapshot of every registered series.
    pub fn snapshot(&self) -> Snapshot {
        let fams = self.families.lock().expect("metrics registry poisoned");
        Snapshot {
            families: fams
                .iter()
                .map(|f| FamilySnapshot {
                    name: f.name.clone(),
                    help: f.help.clone(),
                    kind: f.kind,
                    series: f
                        .series
                        .iter()
                        .map(|s| SeriesSnapshot {
                            labels: s.labels.clone(),
                            value: match &s.cell {
                                CellRef::Counter(c) => {
                                    SampleValue::Counter(c.load(Ordering::Relaxed))
                                }
                                CellRef::Gauge(g) => {
                                    SampleValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                                }
                                CellRef::Histogram(h) => SampleValue::Histogram {
                                    bounds: h.bounds.to_vec(),
                                    buckets: h
                                        .buckets
                                        .iter()
                                        .map(|b| b.load(Ordering::Relaxed))
                                        .collect(),
                                    count: h.count.load(Ordering::Relaxed),
                                    sum: f64::from_bits(h.sum.load(Ordering::Relaxed)),
                                    exemplar: h
                                        .exemplar_label
                                        .lock()
                                        .expect("exemplar label lock")
                                        .clone()
                                        .map(|label| Exemplar {
                                            label,
                                            value: f64::from_bits(
                                                h.exemplar_value.load(Ordering::Relaxed),
                                            ),
                                        }),
                                },
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

fn labels_eq(stored: &[(String, String)], wanted: &[(&str, &str)]) -> bool {
    stored
        .iter()
        .zip(wanted)
        .all(|((sk, sv), (wk, wv))| sk == wk && sv == wv)
}

fn clone_cell(cell: &CellRef) -> CellRef {
    match cell {
        CellRef::Counter(c) => CellRef::Counter(c.clone()),
        CellRef::Gauge(g) => CellRef::Gauge(g.clone()),
        CellRef::Histogram(h) => CellRef::Histogram(h.clone()),
    }
}

/// A histogram series' exemplar: the label (a trace id) attached to the
/// worst qualifying observation so far. Links an aggregate latency series
/// back to one concrete, replayable request.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Caller-supplied label — by convention a trace id.
    pub label: String,
    /// The exemplar observation's value.
    pub value: f64,
}

/// One sampled value in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state: per-bucket (non-cumulative) counts aligned with
    /// `bounds`, plus one trailing overflow bucket, total count, and sum.
    Histogram {
        /// Bucket upper bounds.
        bounds: Vec<f64>,
        /// Non-cumulative per-bucket counts (`bounds.len() + 1` entries).
        buckets: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// Worst-qualifying-observation exemplar, when one was recorded
        /// via [`Histogram::observe_exemplar`].
        exemplar: Option<Exemplar>,
    },
}

/// One series (label set) in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Label key/value pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// One metric family in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Metric name (e.g. `mdx_serve_request_seconds`).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Family kind.
    pub kind: Kind,
    /// All registered series of this family.
    pub series: Vec<SeriesSnapshot>,
}

/// A consistent point-in-time read of a [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// All families, in registration order.
    pub families: Vec<FamilySnapshot>,
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(&v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Snapshot {
    /// Render the snapshot in Prometheus text exposition format
    /// (`text/plain; version=0.0.4`): `# HELP`/`# TYPE` headers, one sample
    /// line per series, histograms expanded into cumulative `_bucket{le=}`
    /// samples plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} {}\n",
                fam.name,
                escape_help(&fam.help),
                fam.name,
                fam.kind.as_str()
            ));
            for s in &fam.series {
                match &s.value {
                    SampleValue::Counter(v) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            fam.name,
                            label_block(&s.labels, None),
                            v
                        ));
                    }
                    SampleValue::Gauge(v) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            fam.name,
                            label_block(&s.labels, None),
                            fmt_f64(*v)
                        ));
                    }
                    SampleValue::Histogram {
                        bounds,
                        buckets,
                        count,
                        sum,
                        exemplar,
                    } => {
                        let mut cum = 0u64;
                        for (i, b) in buckets.iter().enumerate() {
                            cum += b;
                            let le = bounds.get(i).copied().unwrap_or(f64::INFINITY);
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                fam.name,
                                label_block(&s.labels, Some(("le", fmt_f64(le)))),
                                cum
                            ));
                        }
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            fam.name,
                            label_block(&s.labels, None),
                            fmt_f64(*sum)
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            fam.name,
                            label_block(&s.labels, None),
                            count
                        ));
                        // The classic text format has no exemplar syntax
                        // (that's OpenMetrics), so render it as a comment a
                        // human or a lenient scraper can still read.
                        if let Some(ex) = exemplar {
                            out.push_str(&format!(
                                "# exemplar {}{} trace_id=\"{}\" value={}\n",
                                fam.name,
                                label_block(&s.labels, None),
                                escape_label(&ex.label),
                                fmt_f64(ex.value)
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    /// Render the snapshot as a JSON-ready [`Value`] tree for the serve
    /// protocol's `metrics` verb:
    /// `{"families": [{"name", "kind", "help", "series": [{"labels": {..},
    /// "value" | "buckets"/"bounds"/"count"/"sum"}]}]}`.
    pub fn to_value(&self) -> Value {
        let fams = self
            .families
            .iter()
            .map(|fam| {
                let series = fam
                    .series
                    .iter()
                    .map(|s| {
                        let labels = Value::Map(
                            s.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                                .collect(),
                        );
                        let mut m = vec![("labels".to_string(), labels)];
                        match &s.value {
                            SampleValue::Counter(v) => {
                                m.push(("value".to_string(), Value::U64(*v)));
                            }
                            SampleValue::Gauge(v) => {
                                m.push(("value".to_string(), Value::F64(*v)));
                            }
                            SampleValue::Histogram {
                                bounds,
                                buckets,
                                count,
                                sum,
                                exemplar,
                            } => {
                                m.push((
                                    "bounds".to_string(),
                                    Value::Seq(bounds.iter().map(|b| Value::F64(*b)).collect()),
                                ));
                                m.push((
                                    "buckets".to_string(),
                                    Value::Seq(buckets.iter().map(|b| Value::U64(*b)).collect()),
                                ));
                                m.push(("count".to_string(), Value::U64(*count)));
                                m.push(("sum".to_string(), Value::F64(*sum)));
                                if let Some(ex) = exemplar {
                                    m.push((
                                        "exemplar".to_string(),
                                        Value::Map(vec![
                                            ("label".to_string(), Value::Str(ex.label.clone())),
                                            ("value".to_string(), Value::F64(ex.value)),
                                        ]),
                                    ));
                                }
                            }
                        }
                        Value::Map(m)
                    })
                    .collect();
                Value::Map(vec![
                    ("name".to_string(), Value::Str(fam.name.clone())),
                    (
                        "kind".to_string(),
                        Value::Str(fam.kind.as_str().to_string()),
                    ),
                    ("help".to_string(), Value::Str(fam.help.clone())),
                    ("series".to_string(), Value::Seq(series)),
                ])
            })
            .collect();
        Value::Map(vec![("families".to_string(), Value::Seq(fams))])
    }

    /// Look up a family by name.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Convenience: the value of an unlabeled (or first) counter series.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.family(name)?
            .series
            .iter()
            .find_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
    }

    /// Convenience: the value of an unlabeled (or first) gauge series.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.family(name)?
            .series
            .iter()
            .find_map(|s| match s.value {
                SampleValue::Gauge(v) => Some(v),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_cloned_handles() {
        let reg = Registry::new();
        let a = reg.counter("mdx_test_total", "help");
        let b = a.clone();
        a.inc();
        b.add(2);
        // Re-registration returns the same cell.
        let c = reg.counter("mdx_test_total", "help");
        c.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot().counter_value("mdx_test_total"), Some(4));
    }

    #[test]
    fn labeled_series_are_distinct_within_one_family() {
        let reg = Registry::new();
        let run = reg.counter_with("mdx_req_total", "reqs", &[("verb", "run")]);
        let stats = reg.counter_with("mdx_req_total", "reqs", &[("verb", "stats")]);
        run.add(3);
        stats.inc();
        let snap = reg.snapshot();
        let fam = snap.family("mdx_req_total").unwrap();
        assert_eq!(fam.series.len(), 2);
        let text = snap.render_prometheus();
        assert!(text.contains("mdx_req_total{verb=\"run\"} 3"));
        assert!(text.contains("mdx_req_total{verb=\"stats\"} 1"));
        // One family header, not two.
        assert_eq!(text.matches("# TYPE mdx_req_total counter").count(), 1);
    }

    #[test]
    fn gauge_set_add_and_negative_values() {
        let reg = Registry::new();
        let g = reg.gauge("mdx_inflight", "in flight");
        g.set(5.0);
        g.dec();
        g.add(-1.5);
        assert!((g.get() - 2.5).abs() < 1e-12);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("mdx_inflight 2.5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let reg = Registry::new();
        let h = reg.histogram("mdx_lat_seconds", "latency", &[0.001, 0.01, 0.1]);
        h.observe(0.0005); // bucket 0
        h.observe(0.005); // bucket 1
        h.observe(0.005); // bucket 1
        h.observe(99.0); // overflow
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 99.0105).abs() < 1e-9);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("mdx_lat_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("mdx_lat_seconds_bucket{le=\"0.01\"} 3"));
        assert!(text.contains("mdx_lat_seconds_bucket{le=\"0.1\"} 3"));
        assert!(text.contains("mdx_lat_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("mdx_lat_seconds_count 4"));
    }

    #[test]
    fn observe_n_bulk_imports_match_repeated_observe() {
        let reg = Registry::new();
        let a = reg.histogram("mdx_a", "a", DEFAULT_SIZE_BUCKETS);
        let b = reg.histogram("mdx_b", "b", DEFAULT_SIZE_BUCKETS);
        for _ in 0..7 {
            a.observe(3.0);
        }
        b.observe_n(3.0, 7);
        assert_eq!(a.count(), b.count());
        assert!((a.sum() - b.sum()).abs() < 1e-9);
    }

    #[test]
    fn snapshot_value_tree_serializes_to_json() {
        let reg = Registry::new();
        reg.counter("mdx_hits_total", "hits").add(2);
        reg.histogram("mdx_h", "h", &[1.0]).observe(0.5);
        let v = reg.snapshot().to_value();
        let json = serde_json::to_string(&v).unwrap();
        assert!(json.contains("\"mdx_hits_total\""));
        assert!(json.contains("\"families\""));
        assert!(json.contains("\"buckets\""));
        // Round-trips through the shim parser.
        let back: Value = serde_json::from_str(&json).unwrap();
        let m = back.as_map().unwrap();
        assert_eq!(m[0].0, "families");
    }

    #[test]
    fn concurrent_writers_do_not_lose_increments() {
        let reg = Registry::new();
        let c = reg.counter("mdx_conc_total", "c");
        let h = reg.histogram("mdx_conc_h", "h", &[10.0]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe((i % 20) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn exemplar_keeps_worst_qualifying_observation() {
        let reg = Registry::new();
        let h = reg.histogram("mdx_ex_seconds", "latency", &[0.01, 0.1]);
        assert!(h.exemplar().is_none());
        h.observe(5.0); // plain observe never records an exemplar
        assert!(h.exemplar().is_none());
        h.observe_exemplar(0.02, "trace-a");
        h.observe_exemplar(0.08, "trace-b"); // new worst
        h.observe_exemplar(0.03, "trace-c"); // not worst — ignored
        let ex = h.exemplar().expect("exemplar recorded");
        assert_eq!(ex.label, "trace-b");
        assert!((ex.value - 0.08).abs() < 1e-12);
        // Below the floor: never takes the slot.
        h.set_exemplar_threshold(0.5);
        h.observe_exemplar(0.4, "trace-d");
        assert_eq!(h.exemplar().unwrap().label, "trace-b");
        assert_eq!(h.count(), 5);

        let snap = reg.snapshot();
        let text = snap.render_prometheus();
        assert!(
            text.contains("# exemplar mdx_ex_seconds trace_id=\"trace-b\" value=0.08"),
            "{text}"
        );
        // The comment must not break sample-line parsers: the _count line
        // is still present and uncommented.
        assert!(text.contains("mdx_ex_seconds_count 5"));
        let json = serde_json::to_string(&snap.to_value()).unwrap();
        assert!(json.contains("\"exemplar\""), "{json}");
        assert!(json.contains("\"trace-b\""), "{json}");
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_mismatch_panics_at_registration() {
        let reg = Registry::new();
        reg.counter("mdx_x", "x");
        reg.gauge("mdx_x", "x");
    }

    #[test]
    fn explicit_inf_bound_emits_single_inf_bucket() {
        let reg = Registry::new();
        let h = reg.histogram("mdx_inf_seconds", "latency", &[0.5, f64::INFINITY]);
        h.observe(0.1);
        h.observe(7.0);
        let text = reg.snapshot().render_prometheus();
        assert_eq!(
            text.matches("mdx_inf_seconds_bucket{le=\"+Inf\"}").count(),
            1,
            "{text}"
        );
        assert!(text.contains("mdx_inf_seconds_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("mdx_inf_seconds_bucket{le=\"+Inf\"} 2"));
        // The normalized registration and a finite-bounds registration of
        // the same family agree on the stored bounds, so re-registering
        // without the trailing +Inf resolves to the same cell.
        let again = reg.histogram("mdx_inf_seconds", "latency", &[0.5]);
        again.observe(0.2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn help_text_and_label_values_are_escaped_per_spec() {
        let reg = Registry::new();
        reg.counter_with(
            "mdx_esc_total",
            "line one\nback\\slash \"quoted\"",
            &[("path", "a\\b\n\"c\"")],
        )
        .inc();
        let text = reg.snapshot().render_prometheus();
        // HELP: escape `\` and `\n`; a raw quote is legal and left alone.
        assert!(
            text.contains("# HELP mdx_esc_total line one\\nback\\\\slash \"quoted\"\n"),
            "{text}"
        );
        // Label values: escape `\`, `\n`, and `"`.
        assert!(
            text.contains("mdx_esc_total{path=\"a\\\\b\\n\\\"c\\\"\"} 1\n"),
            "{text}"
        );
        // No raw newline may survive inside any sample or header line.
        assert!(text.lines().all(|l| !l.is_empty()), "{text}");
    }
}
