//! End-to-end service sessions: a long pipelined run over the worker pool,
//! duplicate-token cache hits, a mid-stream fault storm submitted as a
//! workload spec, and a full TCP round-trip with shutdown.

use mdx_campaign::{Scenario, Workload};
use mdx_serve::{Request, Response, ServeConfig, Server, Service, SharedWriter};
use std::io::{BufRead, BufReader, Write};
use std::sync::{mpsc, Arc, Mutex};

/// A writer whose bytes stay readable after the workers are done with it.
#[derive(Clone, Default)]
struct CaptureWriter(Arc<Mutex<Vec<u8>>>);

impl Write for CaptureWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl CaptureWriter {
    fn shared(&self) -> SharedWriter {
        Arc::new(Mutex::new(Box::new(self.clone())))
    }

    fn responses(&self) -> Vec<Response> {
        let bytes = self.0.lock().unwrap().clone();
        String::from_utf8(bytes)
            .expect("utf8 output")
            .lines()
            .map(|l| serde_json::from_str(l).expect("response line parses"))
            .collect()
    }
}

fn storm_token(seed: u64) -> String {
    Scenario::new(
        vec![4, 3],
        "sr2201",
        Workload::BroadcastStorm {
            sources: vec![(seed as usize) % 12],
            flits: 4,
        },
        seed,
    )
    .token()
}

#[test]
fn a_hundred_tokens_stream_through_one_bounded_process() {
    const TOKENS: u64 = 110;
    const CACHE_CAP: usize = 32;
    let cfg = ServeConfig {
        workers: 4,
        cache_capacity: CACHE_CAP,
        ..ServeConfig::default()
    };
    let service = Arc::new(Service::new(&cfg));
    let server = Server::new(service.clone(), cfg.workers);
    let out = CaptureWriter::default();

    for seed in 0..TOKENS {
        let req = Request::run(&storm_token(seed)).with_id(seed);
        server.submit(serde_json::to_string(&req).unwrap(), out.shared());
    }
    server.drain();

    let responses = out.responses();
    assert_eq!(responses.len(), TOKENS as usize);
    let mut ids: Vec<u64> = Vec::new();
    for resp in &responses {
        assert_eq!(resp.kind, "row", "error: {:?}", resp.error);
        let row = resp.row.as_ref().expect("row body");
        assert_eq!(row.outcome, "completed");
        ids.push(resp.id.expect("echoed id"));
    }
    // Out-of-order completion is fine; every id must be answered once.
    ids.sort_unstable();
    assert_eq!(ids, (0..TOKENS).collect::<Vec<_>>());

    // Memory stays bounded: the in-memory cache never exceeds its cap even
    // though 110 distinct rows flowed through.
    let stats = service.stats();
    assert_eq!(stats.served, TOKENS as usize);
    assert!(
        stats.cached_rows <= CACHE_CAP,
        "cache grew to {}",
        stats.cached_rows
    );
    server.shutdown();
}

#[test]
fn duplicate_tokens_short_circuit_through_the_cache() {
    let service = Service::new(&ServeConfig::default());
    let token = storm_token(7);

    let first = service.handle(&Request::run(&token).with_id(1));
    assert_eq!(first.cached, Some(false));
    let second = service.handle(&Request::run(&token).with_id(2));
    assert_eq!(second.cached, Some(true));
    // The cached row is the identical row, not a re-simulation.
    assert_eq!(
        serde_json::to_string(&first.row.unwrap()).unwrap(),
        serde_json::to_string(&second.row.unwrap()).unwrap()
    );

    // `force` bypasses the lookup but still refreshes the cache.
    let mut forced = Request::run(&token).with_id(3);
    forced.force = true;
    assert_eq!(service.handle(&forced).cached, Some(false));

    let stats = service.stats();
    assert_eq!(stats.served, 3);
    assert_eq!(stats.cache_hits, 1);
}

#[test]
fn a_spec_with_a_mid_stream_storm_reports_the_epoch_protocol() {
    let spec = "\
        seed 5\n\
        flits 2\n\
        phase 0..600 uniform rate=0.04\n\
        storm 200 xbar:0:1\n\
        storm 420 repair xbar:0:1\n\
        horizon 1200\n";
    let service = Service::new(&ServeConfig {
        windows: Some(100),
        ..ServeConfig::default()
    });
    let req = Request {
        cmd: "spec".to_string(),
        spec: Some(spec.to_string()),
        shape: Some(vec![4, 4]),
        seed: Some(3),
        ..Request::default()
    };

    let resp = service.handle(&req);
    assert_eq!(resp.kind, "row", "error: {:?}", resp.error);
    let row = resp.row.expect("row body");
    assert_eq!(row.outcome, "completed");

    // The storm lines drive the live epoch protocol: one epoch per fault
    // event, transition-safe, nothing lost.
    let rc = row.reconfig.expect("storm spec implies a reconfig report");
    assert_eq!(rc.epochs.len(), 2);
    assert!(rc.transition_safe());
    assert_eq!(rc.lost, 0);
    assert_eq!(rc.victims_total, rc.recovered);

    // Windowed telemetry rode along under the service's default width.
    let stream = row.stream.expect("windowed stream summary");
    assert_eq!(stream.window, 100);
    assert!(stream.windows > 0);

    // The spec's row replays byte-identically from its token.
    let again = service.handle(&Request::run(&row.token));
    assert_eq!(again.cached, Some(true));
    assert_eq!(again.row.unwrap().digest, row.digest);

    // Malformed specs surface the line-numbered parse error.
    let bad = service.handle(&Request {
        cmd: "spec".to_string(),
        spec: Some("phase 0..10 uniform rate=nope".to_string()),
        ..Request::default()
    });
    assert!(bad.is_error());
    assert!(bad.error.unwrap().contains("line 1"));
}

/// `"windows":0` is valid JSON but an invalid width; it must come back as
/// an error response — not panic a worker and wedge `drain()` forever.
#[test]
fn zero_window_width_errors_instead_of_wedging_the_pool() {
    let cfg = ServeConfig {
        workers: 1,
        // A zero server default is normalized away rather than trapping
        // every windowless request.
        windows: Some(0),
        ..ServeConfig::default()
    };
    let service = Arc::new(Service::new(&cfg));
    let server = Server::new(service.clone(), cfg.workers);
    let out = CaptureWriter::default();

    let mut bad = Request::run(&storm_token(21)).with_id(1);
    bad.windows = Some(0);
    server.submit(serde_json::to_string(&bad).unwrap(), out.shared());
    // The same (sole) worker must survive to serve the next request.
    let good = Request::run(&storm_token(22)).with_id(2);
    server.submit(serde_json::to_string(&good).unwrap(), out.shared());
    server.drain();

    let responses = out.responses();
    assert_eq!(responses.len(), 2);
    let by_id = |id: u64| responses.iter().find(|r| r.id == Some(id)).unwrap();
    assert!(by_id(1).is_error());
    assert!(by_id(1).error.as_ref().unwrap().contains("windows"));
    assert_eq!(by_id(2).kind, "row");
    server.shutdown();
}

/// The cache's full counter story through the `stats` verb: misses on
/// first sight, hits on duplicates, FIFO eviction at the cap (an evicted
/// token re-simulates as a miss), and `--force` bypassing the lookup
/// entirely (neither hit nor miss).
#[test]
fn stats_verb_tracks_cache_hits_misses_and_evictions() {
    let cfg = ServeConfig {
        workers: 1,
        cache_capacity: 2,
        ..ServeConfig::default()
    };
    let service = Service::new(&cfg);

    // Three distinct tokens through a 2-row cache: three misses, and the
    // third insert evicts the first token.
    for seed in 0..3 {
        let resp = service.handle(&Request::run(&storm_token(seed)));
        assert_eq!(resp.kind, "row", "error: {:?}", resp.error);
        assert_eq!(resp.cached, Some(false));
    }
    // The newest token is resident: a hit.
    assert_eq!(
        service.handle(&Request::run(&storm_token(2))).cached,
        Some(true)
    );
    // The evicted token is gone: a miss, a re-simulation, and a second
    // eviction as it reenters the full cache.
    assert_eq!(
        service.handle(&Request::run(&storm_token(0))).cached,
        Some(false)
    );
    // `force` skips the lookup: no hit, no miss, and re-inserting a
    // resident key evicts nothing.
    let mut forced = Request::run(&storm_token(2));
    forced.force = true;
    assert_eq!(service.handle(&forced).cached, Some(false));

    let stats = service.stats();
    assert_eq!(stats.served, 6);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 4);
    assert_eq!(stats.cache_evictions, 2);
    assert_eq!(stats.cached_rows, 2);
    assert_eq!(stats.errors, 0);

    // The stats verb itself round-trips the same numbers over the wire.
    let resp = service.handle(&Request {
        cmd: "stats".to_string(),
        id: Some(40),
        ..Request::default()
    });
    assert_eq!(resp.kind, "stats");
    let wire = resp.stats.expect("stats body");
    assert_eq!(wire.cache_misses, 4);
    assert_eq!(wire.cache_evictions, 2);
}

/// The `metrics` verb returns the registry snapshot as JSON, and the same
/// registry renders Prometheus text with the per-verb and cache series
/// the scrape gate requires.
#[test]
fn metrics_verb_snapshots_the_registry() {
    let service = Service::new(&ServeConfig::default());
    let token = storm_token(31);
    assert_eq!(service.handle(&Request::run(&token)).kind, "row");
    assert_eq!(service.handle(&Request::run(&token)).cached, Some(true));
    assert!(service
        .handle(&Request {
            cmd: "no-such-verb".to_string(),
            ..Request::default()
        })
        .is_error());

    let resp = service.handle(&Request {
        cmd: "metrics".to_string(),
        id: Some(50),
        ..Request::default()
    });
    assert_eq!(resp.kind, "metrics");
    assert_eq!(resp.id, Some(50));
    let snapshot = resp.metrics.expect("metrics body");
    let json = serde_json::to_string(&snapshot).unwrap();
    for family in [
        "mdx_serve_requests_total",
        "mdx_serve_request_seconds",
        "mdx_serve_cache_hits_total",
        "mdx_serve_errors_total",
        "mdx_engine_idle_tick_fraction",
    ] {
        assert!(json.contains(family), "missing {family} in {json}");
    }

    // The Prometheus rendering of the same registry carries the counts
    // the protocol verbs just produced.
    let text = service.registry().snapshot().render_prometheus();
    assert!(
        text.contains("mdx_serve_requests_total{verb=\"run\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("mdx_serve_requests_total{verb=\"other\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("mdx_serve_errors_total{class=\"unknown_verb\"} 1"),
        "{text}"
    );
    assert!(text.contains("mdx_serve_cache_hits_total 1"), "{text}");
    assert!(text.contains("mdx_serve_cache_misses_total 1"), "{text}");
    // One simulated row fed the engine family.
    assert!(text.contains("mdx_engine_cycles_total"), "{text}");
    assert!(text.contains("mdx_engine_active_packets_bucket"), "{text}");
}

/// End-to-end scrape: a service's registry served over the HTTP endpoint
/// is the same live registry the verbs feed — a second scrape after more
/// traffic moves.
#[test]
fn http_endpoint_scrapes_the_live_service_registry() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let service = Service::new(&ServeConfig::default());
    let stop = Arc::new(AtomicBool::new(false));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let (addr, handle) =
        mdx_serve::spawn_metrics_listener(service.registry().clone(), listener, stop.clone())
            .expect("listener");

    let scrape = || {
        let mut sock = std::net::TcpStream::connect(addr).expect("connect");
        sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("request");
        let mut body = String::new();
        use std::io::Read;
        sock.read_to_string(&mut body).expect("response");
        body
    };

    assert!(scrape().contains("mdx_serve_requests_total{verb=\"run\"} 0"));
    assert_eq!(service.handle(&Request::run(&storm_token(33))).kind, "row");
    let after = scrape();
    assert!(
        after.contains("mdx_serve_requests_total{verb=\"run\"} 1"),
        "{after}"
    );
    assert!(after.contains("mdx_engine_idle_tick_fraction"), "{after}");

    stop.store(true, Ordering::SeqCst);
    handle.join().expect("listener thread");
}

/// The span pipeline end to end: client trace ids are echoed on every
/// response shape (rows, unknown verbs, *parse failures*), untagged
/// traced requests get a server-minted id, the `spans` verb returns the
/// ledger, and the worst run's trace id lands as the latency histogram's
/// exemplar.
#[test]
fn traced_sessions_echo_trace_ids_and_answer_the_spans_verb() {
    use std::time::Instant;

    let cfg = ServeConfig {
        span_sample: Some(1.0),
        ..ServeConfig::default()
    };
    let service = Service::new(&cfg);
    let process = |line: &str| -> Response {
        serde_json::from_str(&service.process_line(line, Instant::now())).expect("response parses")
    };

    // A client-tagged run echoes the client's trace id.
    let line = serde_json::to_string(
        &Request::run(&storm_token(41))
            .with_id(1)
            .with_trace("cli-1"),
    )
    .unwrap();
    let resp = process(&line);
    assert_eq!(resp.kind, "row", "error: {:?}", resp.error);
    assert_eq!(resp.trace.as_deref(), Some("cli-1"));

    // An untagged request gets a server-minted id, echoed so the client
    // can find its trace later.
    let line = serde_json::to_string(&Request::run(&storm_token(41)).with_id(2)).unwrap();
    let minted = process(&line).trace.expect("server-minted trace id");
    assert!(!minted.is_empty() && minted != "cli-1");

    // Error paths echo too: an unknown verb, and a line that parses as
    // JSON but not as a request (the trace tag is salvaged leniently).
    let resp = process(r#"{"cmd":"no-such-verb","trace":"t-unknown"}"#);
    assert!(resp.is_error());
    assert_eq!(resp.trace.as_deref(), Some("t-unknown"));
    let resp = process(r#"{"cmd":7,"trace":"t-parse"}"#);
    assert!(resp.is_error());
    assert_eq!(resp.trace.as_deref(), Some("t-parse"));

    // The spans verb returns the collector's ledger: every request above
    // was traced (rate 1.0), parse failures produce no trace.
    let resp = process(r#"{"cmd":"spans","id":9}"#);
    assert_eq!(resp.kind, "spans");
    let ledger = serde_json::to_string(&resp.spans.expect("spans body")).unwrap();
    assert!(ledger.contains("\"kept\":3"), "{ledger}");
    assert!(ledger.contains("cli-1"), "{ledger}");

    // The run histogram carries the worst request's trace id as an
    // exemplar comment in the Prometheus exposition.
    let text = service.registry().snapshot().render_prometheus();
    assert!(
        text.contains("# exemplar mdx_serve_request_seconds{verb=\"run\"} trace_id=\""),
        "{text}"
    );

    // Without span collection, the verb reports itself disabled — and the
    // client's trace tag still comes back.
    let bare = Service::new(&ServeConfig::default());
    let resp: Response = serde_json::from_str(
        &bare.process_line(r#"{"cmd":"spans","trace":"t-off"}"#, Instant::now()),
    )
    .expect("response parses");
    assert!(resp.is_error());
    assert_eq!(resp.trace.as_deref(), Some("t-off"));
}

/// A slow span replays deterministically: the `run` span's `token` attr
/// re-simulates to the byte-identical row, and its `digest` attr matches.
#[test]
fn an_exemplar_spans_token_replays_byte_identically() {
    use mdx_campaign::{run_scenario_instrumented, ObsOptions, Scenario};
    use mdx_obs::DEFAULT_FLIGHT_CAPACITY;
    use std::time::Instant;

    let cfg = ServeConfig {
        span_sample: Some(1.0),
        ..ServeConfig::default()
    };
    let service = Service::new(&cfg);
    let line = serde_json::to_string(&Request::run(&storm_token(51)).with_id(1)).unwrap();
    let resp: Response =
        serde_json::from_str(&service.process_line(&line, Instant::now())).expect("response");
    let row = resp.row.expect("row body");

    let traces = service.spans().expect("collector").kept_traces();
    assert_eq!(traces.len(), 1);
    let run = traces[0]
        .iter()
        .find(|s| s.name == "run")
        .expect("run child span");
    let token = run.attr("token").expect("token attr").to_string();
    let digest = run.attr("digest").expect("digest attr").to_string();
    assert_eq!(digest, row.digest);

    // Replay from the span's token alone, under the service's options.
    let scenario = Scenario::from_token(&token).expect("span token decodes");
    let opts = ObsOptions {
        flight: Some(DEFAULT_FLIGHT_CAPACITY),
        ..ObsOptions::default()
    };
    let (replayed, _) = run_scenario_instrumented(&scenario, &opts).expect("replay runs");
    assert_eq!(replayed.digest, digest);
    assert_eq!(
        serde_json::to_string(&replayed).unwrap(),
        serde_json::to_string(&row).unwrap(),
        "replayed row must be byte-identical"
    );
}

/// The `tournament` verb: one request runs a whole cross-scheme grid, a
/// repeat of the same grid — even a comment/whitespace variant — is
/// answered from the spec-keyed cache byte-identically, `force` re-runs,
/// and malformed specs surface the line-numbered parse error.
#[test]
fn tournament_verb_runs_grids_and_caches_by_parsed_spec() {
    let service = Service::new(&ServeConfig::default());
    let spec = "scheme sr2201 naive-broadcast\n\
                topology mdx:3x3\n\
                faults none\n\
                workload storm flits=16\n\
                seeds 1\n\
                max-cycles 4000\n";
    let req = |text: &str, id: u64| Request {
        cmd: "tournament".to_string(),
        spec: Some(text.to_string()),
        id: Some(id),
        ..Request::default()
    };

    let first = service.handle(&req(spec, 1));
    assert_eq!(first.kind, "tournament", "error: {:?}", first.error);
    assert_eq!(first.cached, Some(false));
    assert_eq!(first.id, Some(1));
    let table = first.tournament.expect("tournament body");
    assert_eq!(table.cells.len(), 2);
    assert!(table.cells.iter().any(|c| c.deadlocks > 0));

    // The cache key is the parsed grid, not the text: a comment and
    // trailing-whitespace variant of the same spec hits.
    let variant = format!("# same grid, different bytes\n{spec}\n");
    let second = service.handle(&req(&variant, 2));
    assert_eq!(second.cached, Some(true));
    assert_eq!(
        second.tournament.as_ref().unwrap().to_jsonl(),
        table.to_jsonl(),
        "cached table must be byte-identical"
    );

    // `force` bypasses the cache; determinism makes the bytes equal anyway.
    let mut forced = req(spec, 3);
    forced.force = true;
    let third = service.handle(&forced);
    assert_eq!(third.cached, Some(false));
    assert_eq!(third.tournament.unwrap().to_jsonl(), table.to_jsonl());

    // Parse errors carry their line number; a missing body errors too.
    let bad = service.handle(&req("scheme not-a-scheme\n", 4));
    assert!(bad.is_error());
    let msg = bad.error.unwrap();
    assert!(msg.contains("line 1"), "{msg}");
    assert!(msg.contains("not-a-scheme"), "{msg}");
    let empty = service.handle(&Request {
        cmd: "tournament".to_string(),
        ..Request::default()
    });
    assert!(empty.is_error());
}

#[test]
fn tcp_round_trip_serves_pipelined_clients_and_honors_shutdown() {
    let cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let (addr_tx, addr_rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        mdx_serve::serve_on(&cfg, listener, move |addr| {
            addr_tx.send(addr).expect("report addr");
        })
        .expect("serve loop")
    });
    let addr = addr_rx.recv().expect("bound addr");

    // A second connection that goes idle after one request: shutdown from
    // the other connection must still unblock its reader and let the
    // server exit instead of hanging until this client disconnects.
    let idle = std::net::TcpStream::connect(addr).expect("connect idle");
    let mut idle_reader = BufReader::new(idle.try_clone().expect("clone idle"));
    (&idle)
        .write_all(b"{\"cmd\":\"stats\",\"id\":99}\n")
        .expect("idle request");
    let mut idle_line = String::new();
    idle_reader.read_line(&mut idle_line).expect("idle stats");

    let mut sock = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(sock.try_clone().expect("clone sock"));
    let token = storm_token(11);

    // First request alone, and wait for its row, so the duplicate below is
    // deterministically a cache hit rather than a concurrent re-simulation.
    let first = serde_json::to_string(&Request::run(&token).with_id(1)).unwrap();
    sock.write_all((first + "\n").as_bytes()).expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("first row");
    let mut responses: Vec<Response> = vec![serde_json::from_str(&line).expect("response parses")];

    // Then a pipelined burst: a fresh token, the duplicate, stats, shutdown.
    let lines = [
        serde_json::to_string(&Request::run(&storm_token(12)).with_id(2)).unwrap(),
        serde_json::to_string(&Request::run(&token).with_id(3)).unwrap(),
        r#"{"cmd":"stats","id":4}"#.to_string(),
        r#"{"cmd":"shutdown","id":5}"#.to_string(),
    ];
    sock.write_all((lines.join("\n") + "\n").as_bytes())
        .expect("send requests");

    for line in reader.lines() {
        let line = line.expect("read response");
        responses.push(serde_json::from_str(&line).expect("response parses"));
    }
    // 4 answers plus the shutdown ack, then the server closes the socket.
    assert_eq!(responses.len(), 5);
    let by_id = |id: u64| {
        responses
            .iter()
            .find(|r| r.id == Some(id))
            .unwrap_or_else(|| panic!("response {id}"))
    };
    assert_eq!(by_id(1).kind, "row");
    assert_eq!(by_id(2).kind, "row");
    assert_eq!(by_id(3).cached, Some(true));
    assert_eq!(
        by_id(1).row.as_ref().unwrap().digest,
        by_id(3).row.as_ref().unwrap().digest
    );
    let stats = by_id(4).stats.as_ref().expect("stats body");
    assert_eq!(stats.workers, 2);
    // The shutdown ack echoes its correlation id like every other verb.
    assert_eq!(by_id(5).kind, "ok");

    // The idle connection's reader was unblocked (EOF), not left hanging.
    let mut eof = String::new();
    assert_eq!(idle_reader.read_line(&mut eof).expect("idle eof"), 0);
    assert_eq!(handle.join().expect("server thread"), 2);
}

/// One traced `--slo` session exercises the health, spans, and metrics
/// verbs together: every response path — ok rows, the health report
/// itself, unknown verbs, even parse-error salvage — carries the SLO
/// verdict and echoes its trace id, and a deadlock row flips the verdict
/// from pass to breach for everything answered after it.
#[test]
fn health_spans_and_metrics_verbs_share_one_traced_slo_session() {
    use mdx_health::SloSpec;
    use std::time::Instant;

    let spec = SloSpec::parse(
        "window fast=1 slow=1\nburn fast=1.0 slow=1.0\n\
         objective deadlock_budget deadlock_rate ceiling 0.0 budget=0.5\n",
    )
    .expect("spec parses");
    let cfg = ServeConfig {
        span_sample: Some(1.0),
        slo: Some(spec),
        ..ServeConfig::default()
    };
    let service = Service::new(&cfg);
    let process = |line: &str| -> Response {
        serde_json::from_str(&service.process_line(line, Instant::now())).expect("response parses")
    };

    // A healthy row: verdict pass, trace echoed.
    let line = serde_json::to_string(
        &Request::run(&storm_token(61))
            .with_id(1)
            .with_trace("h-row"),
    )
    .unwrap();
    let resp = process(&line);
    assert_eq!(resp.kind, "row", "error: {:?}", resp.error);
    assert_eq!(resp.verdict.as_deref(), Some("pass"));
    assert_eq!(resp.trace.as_deref(), Some("h-row"));

    // The health verb: a full report, itself stamped and traced.
    let resp = process(r#"{"cmd":"health","id":2,"trace":"h-verb"}"#);
    assert_eq!(resp.kind, "health", "error: {:?}", resp.error);
    assert_eq!(resp.verdict.as_deref(), Some("pass"));
    assert_eq!(resp.trace.as_deref(), Some("h-verb"));
    let body = serde_json::to_string(&resp.health.expect("health body")).unwrap();
    assert!(body.contains("\"status\":\"pass\""), "{body}");
    assert!(body.contains("deadlock_budget"), "{body}");

    // Error paths are stamped too: an unknown verb, and a line that
    // parses as JSON but not as a request (trace salvaged leniently).
    let resp = process(r#"{"cmd":"no-such-verb","trace":"h-unknown"}"#);
    assert!(resp.is_error());
    assert_eq!(resp.verdict.as_deref(), Some("pass"));
    assert_eq!(resp.trace.as_deref(), Some("h-unknown"));
    let resp = process(r#"{"cmd":7,"trace":"h-parse"}"#);
    assert!(resp.is_error());
    assert_eq!(resp.verdict.as_deref(), Some("pass"));
    assert_eq!(resp.trace.as_deref(), Some("h-parse"));

    // A deadlocking row (the paper's naive broadcast wedges a 4x3 storm)
    // drives deadlock_rate over its zero ceiling...
    let naive = Scenario::new(
        vec![4, 3],
        "naive-broadcast",
        Workload::BroadcastStorm {
            sources: vec![0, 2, 4, 6],
            flits: 16,
        },
        0,
    )
    .token();
    let line = serde_json::to_string(&Request::run(&naive).with_id(3).with_trace("h-dl")).unwrap();
    let resp = process(&line);
    assert_eq!(resp.row.expect("row body").outcome, "deadlock");

    // ...so the next health evaluation breaches, and every later response
    // carries the degraded verdict.
    let resp = process(r#"{"cmd":"health","id":4}"#);
    assert_eq!(resp.kind, "health");
    assert_eq!(resp.verdict.as_deref(), Some("breach"));
    let body = serde_json::to_string(&resp.health.expect("health body")).unwrap();
    assert!(body.contains("\"status\":\"breach\""), "{body}");
    assert!(body.contains("\"to\":\"breach\""), "alert missing: {body}");
    let resp = process(r#"{"cmd":"stats","id":5}"#);
    assert_eq!(resp.kind, "stats");
    assert_eq!(resp.verdict.as_deref(), Some("breach"));

    // The metrics verb sees the health gauges the evaluation published.
    let resp = process(r#"{"cmd":"metrics","id":6,"trace":"h-metrics"}"#);
    assert_eq!(resp.kind, "metrics");
    assert_eq!(resp.verdict.as_deref(), Some("breach"));
    assert_eq!(resp.trace.as_deref(), Some("h-metrics"));
    let snap = serde_json::to_string(&resp.metrics.expect("metrics body")).unwrap();
    assert!(snap.contains("mdx_health_status"), "{snap}");
    assert!(snap.contains("mdx_slo_burn_rate"), "{snap}");
    assert!(snap.contains("mdx_slo_budget_remaining"), "{snap}");
    let text = service.registry().snapshot().render_prometheus();
    assert!(text.contains("mdx_health_status 2"), "{text}");

    // The spans verb still answers under --slo, and the session's tagged
    // traces are all in the ledger.
    let resp = process(r#"{"cmd":"spans","id":7}"#);
    assert_eq!(resp.kind, "spans");
    assert_eq!(resp.verdict.as_deref(), Some("breach"));
    let ledger = serde_json::to_string(&resp.spans.expect("spans body")).unwrap();
    for trace in ["h-row", "h-verb", "h-dl"] {
        assert!(ledger.contains(trace), "{trace} missing from {ledger}");
    }
}

/// Without `--slo`, response lines are byte-identical to the pre-health
/// protocol: no `health` key, no `verdict` key, on any response path.
#[test]
fn responses_without_slo_carry_no_health_or_verdict_bytes() {
    use std::time::Instant;

    let service = Service::new(&ServeConfig::default());
    let lines = [
        serde_json::to_string(&Request::run(&storm_token(62)).with_id(1)).unwrap(),
        r#"{"cmd":"stats","id":2}"#.to_string(),
        r#"{"cmd":"no-such-verb","id":3}"#.to_string(),
        r#"{"cmd":7}"#.to_string(),
        r#"{"cmd":"health","id":4}"#.to_string(),
    ];
    for line in &lines {
        let raw = service.process_line(line, Instant::now());
        assert!(
            !raw.contains("\"verdict\"") && !raw.contains("\"health\""),
            "un-slo'd response leaked health bytes: {raw}"
        );
    }
    // And the health verb itself reports the feature off.
    let resp: Response =
        serde_json::from_str(&service.process_line(&lines[4], Instant::now())).unwrap();
    assert!(resp.is_error());
    assert!(resp.error.unwrap().contains("--slo"));
}
