//! Property test: span conservation across the serve pipeline.
//!
//! For every kept trace, randomized over request mixes (fresh tokens,
//! cache-hit duplicates, fault-timeline storm specs, and failing
//! requests): children nest inside their parent on the parent's own
//! timeline, and the root `request` span is tiled *exactly* — no gaps, no
//! overlap — by its direct wall-clock children (`queue`, `cache`, `run`,
//! `serialize`, `handle`). Under a fault timeline the same conservation
//! holds one level down on the cycle timeline: each reconfig epoch span
//! is tiled by its five protocol phases.

use mdx_campaign::{Scenario, Workload};
use mdx_obs::{Span, SpanUnit};
use mdx_serve::{Request, Response, ServeConfig, Service};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Instant;

fn storm_token(seed: u64) -> String {
    Scenario::new(
        vec![4, 3],
        "sr2201",
        Workload::BroadcastStorm {
            sources: vec![(seed as usize) % 12],
            flits: 4,
        },
        seed,
    )
    .token()
}

/// A spec whose mid-stream storm drives the live epoch protocol, so the
/// trace gains the cycle-domain epoch/phase subtree.
const STORM_SPEC: &str = "\
    seed 5\n\
    flits 2\n\
    phase 0..600 uniform rate=0.04\n\
    storm 200 xbar:0:1\n\
    storm 420 repair xbar:0:1\n\
    horizon 1200\n";

/// Checks nesting and exact tiling for one trace.
fn check_conservation(spans: &[Span]) {
    let by_id: HashMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let roots: Vec<&Span> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "exactly one root per trace: {spans:?}");
    let root = roots[0];
    assert_eq!(root.name, "request");
    assert_eq!(root.unit, SpanUnit::Micros);

    // Nesting: every child lives inside its parent, whenever the two
    // share a time domain (the cycle-domain engine subtree hangs off a
    // wall-clock run span; across domains containment is meaningless).
    for s in spans {
        let Some(pid) = s.parent else { continue };
        let p = by_id.get(&pid).expect("parent span exists in the trace");
        assert!(s.trace == root.trace, "one trace id per trace");
        if p.unit == s.unit {
            assert!(
                s.start >= p.start && s.end <= p.end,
                "`{}` [{}, {}] escapes `{}` [{}, {}]",
                s.name,
                s.start,
                s.end,
                p.name,
                p.start,
                p.end
            );
        }
    }

    // Exact tiling of the root by its direct wall-clock children.
    let mut kids: Vec<&Span> = spans
        .iter()
        .filter(|s| s.parent == Some(root.id) && s.unit == SpanUnit::Micros)
        .collect();
    assert!(!kids.is_empty(), "root must have phase children");
    kids.sort_by_key(|s| (s.start, s.id));
    assert_eq!(kids[0].start, root.start, "first child starts the root");
    for pair in kids.windows(2) {
        assert_eq!(
            pair[0].end, pair[1].start,
            "`{}` -> `{}` must share a boundary",
            pair[0].name, pair[1].name
        );
    }
    assert_eq!(
        kids[kids.len() - 1].end,
        root.end,
        "last child ends the root"
    );

    // Epoch conservation on the cycle timeline: each `epoch N` span is
    // tiled by exactly its five protocol phases, in protocol order.
    for epoch in spans.iter().filter(|s| s.name.starts_with("epoch ")) {
        assert_eq!(epoch.unit, SpanUnit::Cycles);
        let mut phases: Vec<&Span> = spans
            .iter()
            .filter(|s| s.parent == Some(epoch.id))
            .collect();
        assert_eq!(phases.len(), 5, "five phases per epoch");
        phases.sort_by_key(|s| s.id);
        let names: Vec<&str> = phases.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["detect", "quiesce", "drain", "reprogram", "resume"]);
        assert_eq!(phases[0].start, epoch.start);
        for pair in phases.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(phases[4].end, epoch.end);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn request_spans_nest_and_tile_the_root(
        seeds in proptest::collection::vec(0u64..6, 1..4),
        dup in any::<bool>(),
        with_storm in any::<bool>(),
        with_error in any::<bool>(),
    ) {
        let cfg = ServeConfig {
            workers: 1,
            windows: Some(50),
            span_sample: Some(1.0),
            ..ServeConfig::default()
        };
        let service = Service::new(&cfg);

        let mut lines: Vec<(String, String)> = Vec::new();
        for (i, seed) in seeds.iter().enumerate() {
            let trace = format!("t-{i}");
            let req = Request::run(&storm_token(*seed)).with_id(i as u64).with_trace(&*trace);
            lines.push((serde_json::to_string(&req).unwrap(), trace));
        }
        if dup {
            // A guaranteed cache hit: re-request the first token.
            let req = Request::run(&storm_token(seeds[0])).with_trace("t-dup");
            lines.push((serde_json::to_string(&req).unwrap(), "t-dup".into()));
        }
        if with_storm {
            // A fault-timeline run: the trace grows the epoch subtree.
            let req = Request {
                cmd: "spec".to_string(),
                spec: Some(STORM_SPEC.to_string()),
                shape: Some(vec![4, 4]),
                seed: Some(3),
                trace: Some("t-storm".to_string()),
                ..Request::default()
            };
            lines.push((serde_json::to_string(&req).unwrap(), "t-storm".into()));
        }
        if with_error {
            let mut req = Request::run("MDX1.not-a-token").with_trace("t-bad");
            req.id = Some(99);
            lines.push((serde_json::to_string(&req).unwrap(), "t-bad".into()));
        }

        for (line, trace) in &lines {
            let body = service.process_line(line, Instant::now());
            let resp: Response = serde_json::from_str(&body).expect("response parses");
            // Every response — rows and errors alike — echoes its trace.
            prop_assert_eq!(resp.trace.as_deref(), Some(trace.as_str()));
        }

        // Rate 1.0 keeps every trace; conservation must hold for each.
        let traces = service.spans().expect("collector").kept_traces();
        prop_assert_eq!(traces.len(), lines.len());
        for t in &traces {
            check_conservation(t);
        }

        // The storm trace specifically must carry the cycle-domain epoch
        // subtree its reconfig report implies.
        if with_storm {
            let storm = traces
                .iter()
                .find(|t| t[0].trace == "t-storm")
                .expect("storm trace kept");
            let epochs = storm.iter().filter(|s| s.name.starts_with("epoch ")).count();
            // Two storm events, two epochs.
            prop_assert_eq!(epochs, 2);
        }
    }
}
