//! The resident campaign service: request dispatch, worker pool, and the
//! stdio / TCP serving loops behind `campaign serve`.
//!
//! [`Service`] is the protocol brain — stateless per request apart from
//! the result cache and the post-mortem store, so it is shared freely
//! across worker threads. [`Server`] owns a fixed pool of OS threads
//! feeding off one queue: each request line is simulated (or answered
//! from cache) on a worker and its response line is written, under a
//! per-connection lock, as soon as it is ready — a client pipelining N
//! tokens gets rows streamed back as they finish, not batched at the end.
//!
//! Memory stays bounded for arbitrarily long sessions: the row cache is
//! capped (FIFO), post-mortems are capped, and streaming rows use the
//! engine's incremental [`mdx_sim::TrafficSource`] seam plus windowed
//! telemetry rather than materialized schedules.
//!
//! With span collection on (`--span-log` / `--span-sample`), every request
//! gets a trace: a `request` root span tiled exactly by its `queue`,
//! `cache`, `run` (with the engine's phase and reconfig-epoch children),
//! and `serialize` phases, offered to a [`mdx_obs::SpanCollector`] and
//! echoed on the response via its `trace` id.

use crate::cache::{row_key, CacheMetrics, ResultCache, DEFAULT_CACHE_CAPACITY};
use crate::metrics::{spawn_metrics_listener, spawn_snapshot_writer, ServeMetrics};
use crate::protocol::{Request, Response, ServeStats};
use mdx_campaign::{push_engine_spans, run_scenario_instrumented, ObsOptions, Scenario, Workload};
use mdx_health::{HealthEngine, HealthReport, SignalFrame, SloSpec};
use mdx_metrics::Registry;
use mdx_obs::{PostmortemReport, SpanCollector, SpanUnit, TraceBuilder, DEFAULT_FLIGHT_CAPACITY};
use mdx_tournament::{run_tournament, TournamentResult, TournamentSpec};
use mdx_workloads::StreamSpec;
use serde::value::Value;
use serde::Serialize as _;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Post-mortems retained for `postmortem` requests (FIFO eviction).
pub const MAX_POSTMORTEMS: usize = 64;

/// Finished tournament tables retained for repeat `tournament` requests
/// (FIFO eviction). Tables are small but each one took a whole grid of
/// simulations to produce, so a resident server keeps the recent ones.
pub const MAX_TOURNAMENTS: usize = 16;

/// Default interval, in seconds, between `--metrics-file` snapshots.
pub const DEFAULT_METRICS_EVERY_SECS: u64 = 10;

/// Default interval, in seconds, between periodic SLO evaluations.
pub const DEFAULT_SLO_EVERY_SECS: u64 = 2;

/// Configuration for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads simulating requests concurrently.
    pub workers: usize,
    /// Default window width (cycles) for per-row open-loop telemetry;
    /// requests may override per row. `None` disables window telemetry.
    pub windows: Option<u64>,
    /// Disk tier for the result cache (shared with `campaign replay`).
    pub cache_dir: Option<PathBuf>,
    /// In-memory result-cache capacity, in rows.
    pub cache_capacity: usize,
    /// Bind address for the Prometheus text endpoint (`--metrics-addr`);
    /// `None` disables the HTTP exporter.
    pub metrics_addr: Option<String>,
    /// Path for periodic Prometheus-text snapshots (`--metrics-file`);
    /// `None` disables the file writer.
    pub metrics_file: Option<PathBuf>,
    /// Seconds between `metrics_file` snapshots.
    pub metrics_every_secs: u64,
    /// JSONL span log path (`--span-log`). Setting this (or `span_sample`)
    /// turns span collection on.
    pub span_log: Option<PathBuf>,
    /// Head-sampling rate in `[0, 1]` (`--span-sample`); traces with
    /// abnormal outcomes are kept regardless. Setting this (or `span_log`)
    /// turns span collection on; the default rate is 1.0 (keep all).
    pub span_sample: Option<f64>,
    /// Parsed SLO spec (`--slo FILE`); `None` disables health evaluation,
    /// the `health` verb, and verdict stamping entirely — response lines
    /// stay byte-identical to a pre-SLO server.
    pub slo: Option<SloSpec>,
    /// JSONL alert-log path (`--alert-log`): every SLO status transition
    /// appends one [`mdx_health::Alert`] line.
    pub alert_log: Option<PathBuf>,
    /// Seconds between periodic SLO evaluations.
    pub slo_every_secs: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
            windows: None,
            cache_dir: None,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            metrics_addr: None,
            metrics_file: None,
            metrics_every_secs: DEFAULT_METRICS_EVERY_SECS,
            span_log: None,
            span_sample: None,
            slo: None,
            alert_log: None,
            slo_every_secs: DEFAULT_SLO_EVERY_SECS,
        }
    }
}

/// The SLO evaluator a `--slo` service carries: the burn-rate engine, the
/// latest overall verdict (lock-free, for stamping every response line),
/// and the alert log sink.
struct HealthState {
    engine: Mutex<HealthEngine>,
    /// Latest overall status in its gauge encoding (0 pass, 1 warn,
    /// 2 breach).
    last: AtomicUsize,
    alert_log: Option<Mutex<std::fs::File>>,
}

/// The request dispatcher: runs scenarios (through the cache) and answers
/// protocol verbs. Shared across workers via `Arc`.
pub struct Service {
    windows: Option<u64>,
    workers: usize,
    cache: ResultCache,
    postmortems: Mutex<(HashMap<String, PostmortemReport>, Vec<String>)>,
    tournaments: Mutex<(HashMap<String, TournamentResult>, Vec<String>)>,
    served: AtomicUsize,
    cache_hits: AtomicUsize,
    errors: AtomicUsize,
    registry: Registry,
    metrics: ServeMetrics,
    spans: Option<Arc<SpanCollector>>,
    health: Option<HealthState>,
    /// Wall-clock zero for span timestamps: every span offset is
    /// microseconds since the service was built, so spans from different
    /// workers share one timeline.
    epoch: Instant,
}

impl Service {
    /// Builds a service from its configuration.
    pub fn new(cfg: &ServeConfig) -> Service {
        let registry = Registry::new();
        let metrics = ServeMetrics::register(&registry);
        let mut cache =
            ResultCache::new(cfg.cache_capacity).with_metrics(CacheMetrics::register(&registry));
        if let Some(dir) = &cfg.cache_dir {
            cache = cache.with_dir(dir);
        }
        let spans = if cfg.span_log.is_some() || cfg.span_sample.is_some() {
            let rate = cfg.span_sample.unwrap_or(1.0);
            let collector = match &cfg.span_log {
                Some(path) => match SpanCollector::new(rate).with_log(path) {
                    Ok(c) => c,
                    Err(e) => {
                        // A broken log path degrades to in-memory
                        // collection — observability must not take the
                        // service down.
                        eprintln!("campaign serve: span log {} disabled: {e}", path.display());
                        SpanCollector::new(rate)
                    }
                },
                None => SpanCollector::new(rate),
            };
            Some(Arc::new(collector))
        } else {
            None
        };
        let health = cfg.slo.as_ref().map(|spec| {
            let alert_log = cfg.alert_log.as_ref().and_then(|path| {
                match std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                {
                    Ok(f) => Some(Mutex::new(f)),
                    Err(e) => {
                        // Same degradation policy as the span log: a broken
                        // sink must not take the service down.
                        eprintln!("campaign serve: alert log {} disabled: {e}", path.display());
                        None
                    }
                }
            });
            HealthState {
                engine: Mutex::new(HealthEngine::new(spec.clone())),
                last: AtomicUsize::new(0),
                alert_log,
            }
        });
        Service {
            // A zero width would panic the window observer; treat it as
            // "no window telemetry" rather than arming a trap.
            windows: cfg.windows.filter(|&w| w > 0),
            workers: cfg.workers,
            cache,
            postmortems: Mutex::new((HashMap::new(), Vec::new())),
            tournaments: Mutex::new((HashMap::new(), Vec::new())),
            served: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
            registry,
            metrics,
            spans,
            health,
            epoch: Instant::now(),
        }
    }

    /// Whether this service evaluates SLOs (`--slo`).
    pub fn has_slo(&self) -> bool {
        self.health.is_some()
    }

    /// The latest overall SLO verdict (`pass` / `warn` / `breach`), or
    /// `None` when no SLO spec is loaded. Lock-free — cheap enough to
    /// stamp on every response line.
    pub fn verdict(&self) -> Option<String> {
        self.health.as_ref().map(|h| {
            match h.last.load(Ordering::Relaxed) {
                2 => "breach",
                1 => "warn",
                _ => "pass",
            }
            .to_string()
        })
    }

    /// Builds the SLO evaluation frame: the flattened registry snapshot
    /// plus derived service-level rates (`error_rate`, `cache_hit_rate`,
    /// `deadlock_rate`, `completed_rate`) and short aliases for the
    /// request-latency percentiles, so spec files can say `latency_p99`
    /// instead of the full family selector.
    fn health_frame(&self) -> SignalFrame {
        let snap = self.registry.snapshot();
        let mut f = SignalFrame::from_snapshot(0, &snap);
        let rows = f.get("mdx_serve_rows_total").unwrap_or(0.0);
        if rows > 0.0 {
            let deadlocks = f
                .get("mdx_serve_rows_total{outcome=\"deadlock\"}")
                .unwrap_or(0.0);
            let completed = f
                .get("mdx_serve_rows_total{outcome=\"completed\"}")
                .unwrap_or(0.0);
            f.set("deadlock_rate", deadlocks / rows);
            f.set("completed_rate", completed / rows);
        }
        let requests = f.get("mdx_serve_requests_total").unwrap_or(0.0);
        if requests > 0.0 {
            let errors = f.get("mdx_serve_errors_total").unwrap_or(0.0);
            f.set("error_rate", errors / requests);
        }
        let stats = self.stats();
        let lookups = stats.cache_hits + stats.cache_misses;
        if lookups > 0 {
            f.set("cache_hit_rate", stats.cache_hits as f64 / lookups as f64);
        }
        for (alias, src) in [
            ("latency_p50", "mdx_serve_request_seconds_p50"),
            ("latency_p95", "mdx_serve_request_seconds_p95"),
            ("latency_p99", "mdx_serve_request_seconds_p99"),
            ("queue_wait_p99", "mdx_serve_queue_wait_seconds_p99"),
            ("idle_tick_fraction", "mdx_engine_idle_tick_fraction"),
        ] {
            if let Some(v) = f.get(src) {
                f.set(alias, v);
            }
        }
        f
    }

    /// Runs one SLO evaluation tick: builds the frame, advances the
    /// burn-rate engine, refreshes the `mdx_health_status` /
    /// `mdx_slo_burn_rate` / `mdx_slo_budget_remaining` gauges, and
    /// appends any fired alerts to the alert log. Returns `None` when no
    /// SLO spec is loaded. Both the periodic evaluator and the `health`
    /// verb land here, so a pull is never staler than one request.
    pub fn evaluate_health(&self) -> Option<HealthReport> {
        let hs = self.health.as_ref()?;
        let frame = self.health_frame();
        let report = hs
            .engine
            .lock()
            .expect("health engine lock")
            .observe(&frame);
        hs.last
            .store(report.status.gauge_value() as usize, Ordering::Relaxed);
        self.registry
            .gauge(
                "mdx_health_status",
                "Overall SLO status: 0 pass, 1 warn, 2 breach",
            )
            .set(report.status.gauge_value());
        for o in &report.objectives {
            self.registry
                .gauge_with(
                    "mdx_slo_burn_rate",
                    "Error-budget burn rate, per objective and window",
                    &[("objective", o.id.as_str()), ("window", "fast")],
                )
                .set(o.fast_burn);
            self.registry
                .gauge_with(
                    "mdx_slo_burn_rate",
                    "Error-budget burn rate, per objective and window",
                    &[("objective", o.id.as_str()), ("window", "slow")],
                )
                .set(o.slow_burn);
            self.registry
                .gauge_with(
                    "mdx_slo_budget_remaining",
                    "Unspent slow-window error budget, per objective",
                    &[("objective", o.id.as_str())],
                )
                .set(o.budget_remaining);
        }
        if !report.alerts.is_empty() {
            if let Some(log) = &hs.alert_log {
                let mut w = log.lock().unwrap_or_else(|e| e.into_inner());
                for a in &report.alerts {
                    let line = serde_json::to_string(a).expect("alert serializes");
                    let _ = writeln!(w, "{line}");
                }
                let _ = w.flush();
            }
        }
        Some(report)
    }

    /// Counts one served row under `mdx_serve_rows_total{outcome=...}` —
    /// the counter family `deadlock_rate` / `completed_rate` SLO signals
    /// are derived from.
    fn count_row_outcome(&self, outcome: &str) {
        self.registry
            .counter_with(
                "mdx_serve_rows_total",
                "Rows served, by scenario outcome",
                &[("outcome", outcome)],
            )
            .inc();
    }

    /// The metric registry every exporter view (the `metrics` verb, the
    /// Prometheus endpoint, the snapshot file) reads from.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The serve-layer instruments (shared with the worker pool).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The span collector, when span collection is on.
    pub fn spans(&self) -> Option<&Arc<SpanCollector>> {
        self.spans.as_ref()
    }

    /// Microseconds since the service epoch, for span timestamps.
    fn us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    fn now_us(&self) -> u64 {
        self.us(Instant::now())
    }

    /// Parses one request line and dispatches it. Malformed JSON becomes
    /// an `error` response — echoing any salvageable `trace` tag — never
    /// a crash.
    pub fn handle_line(&self, line: &str) -> Response {
        match serde_json::from_str::<Request>(line) {
            Ok(req) => self.handle(&req),
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.metrics.error("parse");
                Response::error(None, format!("bad request: {e}"))
                    .with_trace(trace_of_line(line))
                    .with_verdict(self.verdict())
            }
        }
    }

    /// Dispatches one parsed request, untraced (spans need the serialize
    /// boundary, so only [`Service::process_line`] emits them). The
    /// client's `trace` tag is still echoed.
    pub fn handle(&self, req: &Request) -> Response {
        let resp = self.handle_inner(req, None).with_trace(req.trace.clone());
        let verdict = self.verdict();
        resp.with_verdict(verdict)
    }

    /// Processes one request line end to end — parse, dispatch, serialize
    /// — and returns the response *line*. This is the span-instrumented
    /// path the worker pool uses: the serialize child span can only be
    /// closed after the response is encoded, so the trace finishes here.
    /// `queued_at` anchors the root's `queue` child.
    pub fn process_line(&self, line: &str, queued_at: Instant) -> String {
        let (resp, tr) = match serde_json::from_str::<Request>(line) {
            Ok(req) => {
                let mut tr = self.begin_trace(&req, queued_at);
                let resp = self.handle_inner(&req, tr.as_mut());
                // Echo the *effective* trace id: the client's tag, or the
                // server-minted id a traced-but-untagged request got.
                let trace = match &tr {
                    Some(tr) => Some(tr.t.trace_id().to_string()),
                    None => req.trace.clone(),
                };
                (resp.with_trace(trace), tr)
            }
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.metrics.error("parse");
                let resp = Response::error(None, format!("bad request: {e}"))
                    .with_trace(trace_of_line(line));
                (resp, None)
            }
        };
        // Verdict stamping covers every path — rows, verbs, unknown
        // verbs, even parse-error salvage — and happens after dispatch so
        // a `health` request's own evaluation is already reflected.
        let resp = resp.with_verdict(self.verdict());
        let body = serde_json::to_string(&resp).expect("response serializes");
        if let Some(mut tr) = tr {
            let collector = self.spans.as_ref().expect("trace implies a collector");
            let s1 = self.now_us();
            tr.t.add(Some(tr.root), "serialize", tr.last, s1, SpanUnit::Micros);
            tr.t.set_end(tr.root, s1);
            let root = tr.root;
            tr.t.attr(root, "outcome", &tr.outcome);
            // Head-sampled traces are kept; abnormal outcomes (errors,
            // deadlocks, cycle limits) are kept regardless of the sampler.
            if tr.sampled || tr.outcome != "completed" {
                collector.offer(tr.t.finish());
            } else {
                collector.drop_unsampled();
            }
        }
        body
    }

    /// Opens the root span of a traced request: a `request` root anchored
    /// at `queued_at` with a `queue` child up to now. Returns `None` when
    /// span collection is off.
    fn begin_trace(&self, req: &Request, queued_at: Instant) -> Option<RequestTrace> {
        let collector = self.spans.as_ref()?;
        let sampled = collector.head_sample();
        let trace_id = match &req.trace {
            Some(t) => t.clone(),
            None => collector.next_trace_id(),
        };
        let q0 = self.us(queued_at);
        let h0 = self.now_us();
        let mut t = TraceBuilder::new(trace_id);
        let root = t.add(None, "request", q0, h0, SpanUnit::Micros);
        t.attr(root, "verb", &req.cmd);
        t.add(Some(root), "queue", q0, h0, SpanUnit::Micros);
        Some(RequestTrace {
            t,
            root,
            last: h0,
            sampled,
            outcome: String::from("completed"),
        })
    }

    fn handle_inner(&self, req: &Request, mut tr: Option<&mut RequestTrace>) -> Response {
        let verb = self.metrics.verb(&req.cmd);
        verb.requests.inc();
        self.metrics.inflight.inc();
        let spans_before = tr.as_ref().map(|tr| tr.t.len());
        let t0 = Instant::now();
        let resp = match req.cmd.as_str() {
            "run" => self.cmd_run(req, tr.as_deref_mut()),
            "spec" => self.cmd_spec(req, tr.as_deref_mut()),
            "postmortem" => self.cmd_postmortem(req),
            "tournament" => self.cmd_tournament(req),
            "stats" => Response::stats(req.id, self.stats()),
            "metrics" => Response::metrics(req.id, self.registry.snapshot().to_value()),
            "spans" => self.cmd_spans(req),
            "health" => self.cmd_health(req),
            "shutdown" => Response::ok(req.id),
            other => Response::error(req.id, format!("unknown cmd `{other}`")),
        };
        let secs = t0.elapsed().as_secs_f64();
        if let Some(tr) = tr.as_deref_mut() {
            // The trace id rides along as the histogram's exemplar, so the
            // worst request per verb is replayable from /metrics alone.
            verb.latency.observe_exemplar(secs, tr.t.trace_id());
            if Some(tr.t.len()) == spans_before {
                // Verbs that opened no children of their own (stats,
                // errors, shutdown) still tile the root: one `handle`
                // span from the last boundary to now.
                let e = self.now_us();
                tr.t.add(Some(tr.root), "handle", tr.last, e, SpanUnit::Micros);
                tr.last = e;
            }
        } else {
            verb.latency.observe(secs);
        }
        self.metrics.inflight.dec();
        if resp.is_error() {
            self.errors.fetch_add(1, Ordering::Relaxed);
            let class = match req.cmd.as_str() {
                "run" | "spec" | "postmortem" | "tournament" | "stats" | "metrics" | "spans"
                | "health" | "shutdown" => "request",
                _ => "unknown_verb",
            };
            self.metrics.error(class);
            if let Some(tr) = tr {
                tr.outcome = String::from("error");
            }
        }
        resp
    }

    fn cmd_spans(&self, req: &Request) -> Response {
        match &self.spans {
            Some(c) => Response::spans(req.id, c.to_value()),
            None => Response::error(
                req.id,
                "span collection disabled; start with --span-log or --span-sample",
            ),
        }
    }

    fn cmd_health(&self, req: &Request) -> Response {
        match self.evaluate_health() {
            Some(report) => Response::health(req.id, report.to_value()),
            None => Response::error(req.id, "slo evaluation disabled; start with --slo FILE"),
        }
    }

    fn cmd_run(&self, req: &Request, tr: Option<&mut RequestTrace>) -> Response {
        let Some(token) = &req.token else {
            return Response::error(req.id, "run needs a `token`");
        };
        let scenario = match Scenario::from_token(token) {
            Ok(s) => s,
            Err(e) => return Response::error(req.id, e.to_string()),
        };
        self.run_row(req, token, &scenario, tr)
    }

    fn cmd_spec(&self, req: &Request, tr: Option<&mut RequestTrace>) -> Response {
        let Some(text) = &req.spec else {
            return Response::error(req.id, "spec needs a `spec` body");
        };
        let spec = match StreamSpec::parse(text) {
            Ok(s) => s,
            Err(e) => return Response::error(req.id, e.to_string()),
        };
        let shape = req.shape.clone().unwrap_or_else(|| vec![4, 4]);
        let scheme = req.scheme.as_deref().unwrap_or("sr2201");
        let horizon = spec.horizon;
        let mut scenario = Scenario::new(
            shape,
            scheme,
            Workload::Stream { spec },
            req.seed.unwrap_or(0),
        );
        // The horizon is the stream's cycle budget: a saturated run ends
        // there as `cycle-limit` instead of draining without bound.
        scenario.max_cycles = horizon;
        let token = scenario.token();
        self.run_row(req, &token, &scenario, tr)
    }

    /// Runs (or fetches) one row. The cache key covers the token and the
    /// effective window width, so the same token with different telemetry
    /// shapes is two distinct rows.
    fn run_row(
        &self,
        req: &Request,
        token: &str,
        scenario: &Scenario,
        mut tr: Option<&mut RequestTrace>,
    ) -> Response {
        // `windows: 0` is valid JSON but would assert inside the window
        // observer; reject it here so no request can panic a worker.
        if req.windows == Some(0) {
            return Response::error(req.id, "`windows` must be at least 1 cycle");
        }
        let windows = req.windows.or(self.windows);
        let key = row_key(token, windows);
        if !req.force {
            let hit = self.cache.get_tiered(key);
            if let Some(tr) = tr.as_deref_mut() {
                let c1 = self.now_us();
                let cache =
                    tr.t.add(Some(tr.root), "cache", tr.last, c1, SpanUnit::Micros);
                let tier = hit.as_ref().map(|(_, t)| t.as_str()).unwrap_or("miss");
                tr.t.attr(cache, "tier", tier);
                tr.last = c1;
            }
            if let Some((row, _)) = hit {
                self.served.fetch_add(1, Ordering::Relaxed);
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.count_row_outcome(&row.outcome);
                return Response::row(req.id, true, row);
            }
        }
        let opts = ObsOptions {
            windows,
            // Always-on forensics: abnormal rows carry a post-mortem and
            // the artifact stays fetchable by digest.
            flight: Some(DEFAULT_FLIGHT_CAPACITY),
            // Phase timing feeds the run span's source/step/probe children
            // and is engine self-measurement — never serialized, so the
            // row itself stays byte-identical to an untraced run.
            profile_phases: tr.is_some(),
            ..ObsOptions::default()
        };
        match run_scenario_instrumented(scenario, &opts) {
            Ok((row, telemetry)) => {
                if let Some(pm) = telemetry.postmortem {
                    self.remember_postmortem(&row.digest, pm);
                }
                if let Some(profile) = &row.profile {
                    self.metrics.engine.observe(profile);
                }
                if let Some(tr) = tr {
                    let r1 = self.now_us();
                    let run =
                        tr.t.add(Some(tr.root), "run", tr.last, r1, SpanUnit::Micros);
                    tr.t.attr(run, "token", &row.token);
                    tr.t.attr(run, "digest", &row.digest);
                    push_engine_spans(
                        &mut tr.t,
                        run,
                        tr.last,
                        r1,
                        row.profile.as_ref().and_then(|p| p.phases.as_ref()),
                        row.stats.cycles,
                        row.reconfig.as_ref(),
                    );
                    tr.outcome = row.outcome.clone();
                    tr.last = r1;
                }
                self.cache.put(key, &row);
                self.served.fetch_add(1, Ordering::Relaxed);
                self.count_row_outcome(&row.outcome);
                Response::row(req.id, false, row)
            }
            Err(e) => Response::error(req.id, e.to_string()),
        }
    }

    fn remember_postmortem(&self, digest: &str, pm: PostmortemReport) {
        let mut store = self.postmortems.lock().expect("postmortem lock");
        let (map, order) = &mut *store;
        if map.insert(digest.to_string(), pm).is_none() {
            order.push(digest.to_string());
        }
        while order.len() > MAX_POSTMORTEMS {
            let old = order.remove(0);
            map.remove(&old);
        }
    }

    fn cmd_postmortem(&self, req: &Request) -> Response {
        let Some(digest) = &req.digest else {
            return Response::error(req.id, "postmortem needs a `digest`");
        };
        let store = self.postmortems.lock().expect("postmortem lock");
        match store.0.get(digest) {
            Some(pm) => Response::postmortem(req.id, pm.clone()),
            None => Response::error(req.id, format!("no post-mortem for digest {digest}")),
        }
    }

    /// Runs (or fetches) a cross-scheme tournament. The cache key is the
    /// *parsed* grid, so comment and whitespace variants of the same spec
    /// share one entry; `force` re-runs and refreshes it. Tournaments are
    /// deterministic, so a cached table is byte-identical to a re-run.
    fn cmd_tournament(&self, req: &Request) -> Response {
        let Some(text) = &req.spec else {
            return Response::error(req.id, "tournament needs a `spec` body");
        };
        let spec = match TournamentSpec::parse(text) {
            Ok(s) => s,
            Err(e) => return Response::error(req.id, e.to_string()),
        };
        let key = serde_json::to_string(&spec).expect("spec serializes");
        if !req.force {
            let store = self.tournaments.lock().expect("tournament lock");
            if let Some(table) = store.0.get(&key) {
                return Response::tournament(req.id, true, table.clone());
            }
        }
        let table = run_tournament(&spec);
        let mut store = self.tournaments.lock().expect("tournament lock");
        let (map, order) = &mut *store;
        if map.insert(key.clone(), table.clone()).is_none() {
            order.push(key);
        }
        while order.len() > MAX_TOURNAMENTS {
            let old = order.remove(0);
            map.remove(&old);
        }
        Response::tournament(req.id, false, table)
    }

    /// Current service counters.
    pub fn stats(&self) -> ServeStats {
        let (_, cache_misses) = self.cache.counters();
        ServeStats {
            served: self.served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses,
            cache_evictions: self.cache.eviction_count(),
            errors: self.errors.load(Ordering::Relaxed),
            cached_rows: self.cache.len(),
            postmortems: self.postmortems.lock().expect("postmortem lock").1.len(),
            workers: self.workers,
        }
    }
}

/// The span scaffolding of one in-flight traced request: the builder, its
/// root span, and the running boundary where the next child begins. Every
/// child starts at `last` and advances it, so the root is tiled exactly —
/// no gaps, no overlap — by construction.
struct RequestTrace {
    t: TraceBuilder,
    root: u64,
    last: u64,
    sampled: bool,
    outcome: String,
}

/// Salvages the client's `trace` tag from a line that failed to parse as
/// a [`Request`] (or panicked its handler): a lenient `Value` parse is
/// enough to echo the tag on the error response.
fn trace_of_line(line: &str) -> Option<String> {
    let v: Value = serde_json::from_str(line).ok()?;
    match v.as_map()?.iter().find(|(k, _)| k == "trace")? {
        (_, Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// A writer a worker can stream a response line to (one lock per
/// connection keeps lines atomic under concurrency).
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

type Job = (String, SharedWriter, Instant);

/// Releases one pending slot (and wakes [`Server::drain`]) on drop, so a
/// request that panics its worker can never leave the counter stuck and
/// wedge `drain()`/`shutdown()`.
struct PendingGuard<'a>(&'a (Mutex<usize>, Condvar));

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        let (count, cv) = self.0;
        let mut n = count.lock().unwrap_or_else(|e| e.into_inner());
        *n = n.saturating_sub(1);
        drop(n);
        cv.notify_all();
    }
}

/// A fixed pool of worker threads draining request lines from one queue.
pub struct Server {
    service: Arc<Service>,
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    pending: Arc<(Mutex<usize>, Condvar)>,
}

impl Server {
    /// Spawns `workers` threads over a shared service.
    pub fn new(service: Arc<Service>, workers: usize) -> Server {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let pending = Arc::new((Mutex::new(0usize), Condvar::new()));
        let workers = (0..workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let service = service.clone();
                let pending = pending.clone();
                std::thread::spawn(move || loop {
                    let job = rx.lock().expect("job queue lock").recv();
                    let Ok((line, out, queued_at)) = job else {
                        break;
                    };
                    // Released on every exit path, including a panic below.
                    let _guard = PendingGuard(&pending);
                    let metrics = service.metrics();
                    metrics
                        .queue_wait
                        .observe(queued_at.elapsed().as_secs_f64());
                    metrics.workers_busy.inc();
                    // A handler panic must not kill the worker or drop the
                    // response: the client still gets an error line with
                    // its correlation id (and trace tag), and the pool
                    // keeps its size.
                    let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        service.process_line(&line, queued_at)
                    }))
                    .unwrap_or_else(|_| {
                        metrics.error("panic");
                        let id = serde_json::from_str::<Request>(&line)
                            .ok()
                            .and_then(|r| r.id);
                        let resp = Response::error(id, "internal error: request handler panicked")
                            .with_trace(trace_of_line(&line));
                        serde_json::to_string(&resp).expect("response serializes")
                    });
                    let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
                    let _ = writeln!(w, "{body}");
                    let _ = w.flush();
                    drop(w);
                    metrics.workers_busy.dec();
                })
            })
            .collect();
        Server {
            service,
            tx: Some(tx),
            workers,
            pending,
        }
    }

    /// The shared service (for inline verbs like shutdown).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Queues one request line; its response will be written to `out` by
    /// whichever worker picks it up.
    pub fn submit(&self, line: String, out: SharedWriter) {
        let (count, _) = &*self.pending;
        *count.lock().expect("pending lock") += 1;
        self.tx
            .as_ref()
            .expect("server accepting")
            .send((line, out, Instant::now()))
            .expect("workers alive");
    }

    /// Blocks until every queued request has been answered.
    pub fn drain(&self) {
        let (count, cv) = &*self.pending;
        let mut n = count.lock().expect("pending lock");
        while *n > 0 {
            n = cv.wait(n).expect("pending lock");
        }
    }

    /// Drains, then joins the pool.
    pub fn shutdown(mut self) {
        self.drain();
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The optional metrics exporters a serving loop runs alongside itself:
/// the Prometheus HTTP endpoint and/or the periodic snapshot file, both
/// stopped (with a final file snapshot) when the loop ends.
struct MetricsExporter {
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl MetricsExporter {
    /// Starts whichever exporters `cfg` asks for, reading from `registry`.
    /// The bound endpoint address is announced on stderr so an operator
    /// (or a smoke script) using port 0 learns the real port.
    fn start(cfg: &ServeConfig, registry: &Registry) -> std::io::Result<MetricsExporter> {
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        if let Some(addr) = &cfg.metrics_addr {
            let listener = TcpListener::bind(addr)?;
            let (bound, handle) = spawn_metrics_listener(registry.clone(), listener, stop.clone())?;
            eprintln!("campaign serve: metrics on {bound}");
            threads.push(handle);
        }
        if let Some(path) = &cfg.metrics_file {
            threads.push(spawn_snapshot_writer(
                registry.clone(),
                path.clone(),
                Duration::from_secs(cfg.metrics_every_secs.max(1)),
                stop.clone(),
            ));
        }
        Ok(MetricsExporter { stop, threads })
    }

    fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// The periodic SLO evaluator a `--slo` serving loop runs alongside
/// itself: one thread ticking [`Service::evaluate_health`] every
/// `slo_every_secs`, so the burn-rate windows advance, the health gauges
/// stay fresh for scrapers, and alerts land in the log even when no
/// client is asking. Stopped (with a final evaluation) when the loop
/// ends.
struct HealthEvaluator {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl HealthEvaluator {
    /// Starts the evaluator when the service has an SLO spec loaded.
    fn start(service: &Arc<Service>, every: Duration) -> Option<HealthEvaluator> {
        if !service.has_slo() {
            return None;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let svc = service.clone();
        let flag = stop.clone();
        let thread = std::thread::spawn(move || {
            // Prime the gauges immediately: a scraper arriving before the
            // first interval still sees `mdx_health_status`.
            let _ = svc.evaluate_health();
            let mut last = Instant::now();
            while !flag.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(50));
                if last.elapsed() >= every {
                    let _ = svc.evaluate_health();
                    last = Instant::now();
                }
            }
            // Final tick so shutdown flushes the closing verdict.
            let _ = svc.evaluate_health();
        });
        Some(HealthEvaluator { stop, thread })
    }

    fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.thread.join();
    }
}

/// True when the line is a `shutdown` request (handled inline so the
/// serving loop can stop accepting).
fn is_shutdown(line: &str) -> bool {
    serde_json::from_str::<Request>(line)
        .map(|r| r.cmd == "shutdown")
        .unwrap_or(false)
}

/// Serves one request stream to completion: lines are dispatched to the
/// pool and responses stream to `out` as they finish. Returns on EOF or
/// after acknowledging a `shutdown` request; either way every submitted
/// request has been answered when this returns.
pub fn serve_stream<R: BufRead>(server: &Server, input: R, out: SharedWriter) -> usize {
    let mut submitted = 0usize;
    for line in input.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if is_shutdown(&line) {
            server.drain();
            let body = server.service().process_line(&line, Instant::now());
            let mut w = out.lock().expect("writer lock");
            let _ = writeln!(w, "{body}");
            let _ = w.flush();
            break;
        }
        server.submit(line, out.clone());
        submitted += 1;
    }
    server.drain();
    submitted
}

/// Serves stdin to stdout until EOF or `shutdown`. A metrics exporter
/// that fails to bind degrades to serving without one (announced on
/// stderr) — observability must not take the service down.
pub fn serve_stdio(cfg: &ServeConfig) -> usize {
    let service = Arc::new(Service::new(cfg));
    let exporter = match MetricsExporter::start(cfg, service.registry()) {
        Ok(e) => Some(e),
        Err(e) => {
            eprintln!("campaign serve: metrics exporter disabled: {e}");
            None
        }
    };
    let server = Server::new(service, cfg.workers);
    let health = HealthEvaluator::start(
        server.service(),
        Duration::from_secs(cfg.slo_every_secs.max(1)),
    );
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::stdout())));
    let n = serve_stream(&server, std::io::stdin().lock(), out);
    if let Some(health) = health {
        health.stop();
    }
    server.shutdown();
    if let Some(exporter) = exporter {
        exporter.stop();
    }
    n
}

/// Binds `addr` and serves TCP connections (one reader thread each; all
/// connections share the worker pool) until some connection sends
/// `shutdown`. Returns the number of connections served.
pub fn serve_tcp(cfg: &ServeConfig, addr: impl ToSocketAddrs) -> std::io::Result<usize> {
    let listener = TcpListener::bind(addr)?;
    serve_on(cfg, listener, |_| {})
}

/// [`serve_tcp`] with a hook observing the bound address before the
/// accept loop starts — lets a test (or an operator script) learn an
/// ephemeral port.
pub fn serve_on(
    cfg: &ServeConfig,
    listener: TcpListener,
    on_ready: impl FnOnce(std::net::SocketAddr),
) -> std::io::Result<usize> {
    listener.set_nonblocking(true)?;
    on_ready(listener.local_addr()?);
    let service = Arc::new(Service::new(cfg));
    let exporter = MetricsExporter::start(cfg, service.registry())?;
    let server = Arc::new(Server::new(service, cfg.workers));
    let health = HealthEvaluator::start(
        server.service(),
        Duration::from_secs(cfg.slo_every_secs.max(1)),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns = 0usize;
    let mut readers = Vec::new();
    // Live connections' sockets, so the stop path can unblock readers
    // parked in `lines()` on connections that stay open but idle. Each
    // reader prunes its own entry on exit — a departed client doesn't
    // leak a descriptor for the server's lifetime.
    let socks: Arc<Mutex<HashMap<usize, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((sock, _)) => {
                let conn_id = conns;
                conns += 1;
                sock.set_nonblocking(false)?;
                let reader = std::io::BufReader::new(sock.try_clone()?);
                socks
                    .lock()
                    .expect("socket table")
                    .insert(conn_id, sock.try_clone()?);
                let out: SharedWriter = Arc::new(Mutex::new(Box::new(sock)));
                let server = server.clone();
                let stop = stop.clone();
                let socks = socks.clone();
                readers.push(std::thread::spawn(move || {
                    let mut shutdown_line = None;
                    for line in reader.lines() {
                        let Ok(line) = line else { break };
                        if line.trim().is_empty() {
                            continue;
                        }
                        if is_shutdown(&line) {
                            shutdown_line = Some(line);
                            break;
                        }
                        server.submit(line, out.clone());
                    }
                    socks.lock().expect("socket table").remove(&conn_id);
                    server.drain();
                    if let Some(line) = shutdown_line {
                        // Acknowledge through the service so the client's
                        // correlation id is echoed, as the stdio path does.
                        let body = server.service().process_line(&line, Instant::now());
                        let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
                        let _ = writeln!(w, "{body}");
                        let _ = w.flush();
                        stop.store(true, Ordering::SeqCst);
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    // Close only the read halves: blocked readers see EOF and exit, while
    // responses still in flight can finish writing.
    for s in socks.lock().expect("socket table").values() {
        let _ = s.shutdown(Shutdown::Read);
    }
    for r in readers {
        let _ = r.join();
    }
    if let Some(health) = health {
        health.stop();
    }
    if let Ok(s) = Arc::try_unwrap(server) {
        s.shutdown();
    }
    exporter.stop();
    Ok(conns)
}
