//! # mdx-serve — the resident campaign service and `campaign` CLI
//!
//! Continuous-service mode for the SR2201 experiment stack: a
//! long-running process that accepts `MDX1.` scenario tokens and
//! streaming workload specs over a line-oriented JSON protocol
//! ([`protocol`]), simulates them on a worker pool ([`server`]), streams
//! result rows back as JSON lines, and answers repeat tokens from a
//! digest-keyed result cache ([`cache`]) — replays are free because every
//! row is deterministic per token.
//!
//! The protocol runs over stdio (`campaign serve`) or TCP
//! (`campaign serve --tcp ADDR`). Abnormal rows keep their
//! flight-recorder post-mortems fetchable by digest; `stats` exposes the
//! service counters; `metrics` returns the full registry snapshot as
//! JSON; `spans` returns the span collector's ledger; `shutdown` stops
//! the server after draining. With `--metrics-addr` the same registry is
//! scrapeable as Prometheus text over HTTP ([`metrics`]): per-verb
//! request latency, queue wait, cache hit/miss/eviction counters, and
//! the engine's self-profile (idle-tick fraction, cycles/sec, occupancy).
//! With `--span-log`/`--span-sample` every request is traced end to end
//! — queue wait, cache tier, engine run (with per-phase and
//! reconfig-epoch children), serialize — and the trace id is echoed on
//! the response line.
//!
//! With `--slo FILE` the server judges itself (`mdx-health`): a periodic
//! burn-rate evaluator scores declarative objectives against the live
//! registry, the `health` verb returns the full report, every response
//! carries the current `verdict`, status transitions append to a JSONL
//! alert log (`--alert-log`), and `campaign watch ADDR` renders a live
//! one-screen view ([`watch`]).
//!
//! The `tournament` verb runs a whole cross-scheme comparison grid
//! (`mdx-tournament`) in one request; finished tables are cached keyed by
//! the parsed spec, so a resident server answers repeat tournaments
//! without re-simulating — deterministic tables make the cached answer
//! byte-identical to a re-run.
//!
//! The crate also owns the `campaign` binary (run / replay / shrink /
//! diff / stream / tournament / serve / bench-serve), which sits above
//! `mdx-campaign`, `mdx-tournament`, and this service layer.
//!
//! ```
//! use mdx_serve::{Request, Response, ServeConfig, Service};
//! use mdx_campaign::{Scenario, Workload};
//!
//! let service = Service::new(&ServeConfig::default());
//! let scenario = Scenario::new(
//!     vec![4, 3],
//!     "sr2201",
//!     Workload::BroadcastStorm { sources: vec![0], flits: 4 },
//!     1,
//! );
//! let first = service.handle(&Request::run(&scenario.token()).with_id(1));
//! let again = service.handle(&Request::run(&scenario.token()).with_id(2));
//! assert_eq!(first.cached, Some(false));
//! assert_eq!(again.cached, Some(true));
//! assert_eq!(
//!     first.row.unwrap().digest,
//!     again.row.unwrap().digest,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod watch;

pub use cache::{fnv1a64, row_key, CacheMetrics, CacheTier, ResultCache, DEFAULT_CACHE_CAPACITY};
pub use metrics::{spawn_metrics_listener, spawn_snapshot_writer, ServeMetrics, VerbMeter};
pub use protocol::{Request, Response, ServeStats};
pub use server::{
    serve_on, serve_stdio, serve_stream, serve_tcp, ServeConfig, Server, Service, SharedWriter,
    DEFAULT_METRICS_EVERY_SECS, DEFAULT_SLO_EVERY_SECS, MAX_POSTMORTEMS, MAX_TOURNAMENTS,
};
pub use watch::{render_watch, WatchFrame};
