//! Digest-keyed result cache: completed campaign rows, keyed by the FNV-1a
//! digest of their scenario token (plus the telemetry options that shaped
//! the row), held in a bounded in-memory ring with an optional disk tier.
//!
//! The cache is exact, not approximate: every row is deterministic per
//! token (see `mdx-campaign`'s replay guarantee), so a hit returns the
//! byte-identical row a fresh simulation would produce. The in-memory tier
//! is capped (FIFO eviction) so a long-lived `campaign serve` process
//! stays bounded; the disk tier — used by `campaign replay` to skip
//! re-simulation across processes — holds one small JSON file per row and
//! is only bounded by the directory the operator points it at.

use mdx_campaign::ScenarioReport;
use mdx_metrics::{Counter, Registry};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// FNV-1a over bytes — the same digest `mdx-campaign` uses for replay
/// comparison, here keying cache entries by token.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache key for a row: token digest mixed with the options that
/// change the row's shape (window telemetry width). Two requests for the
/// same token with different windows are different rows.
pub fn row_key(token: &str, windows: Option<u64>) -> u64 {
    let mut h = fnv1a64(token.as_bytes());
    if let Some(w) = windows {
        h ^= fnv1a64(&w.to_le_bytes()).rotate_left(1);
    }
    h
}

/// Default in-memory capacity, in rows.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Which tier served a cache hit — the memory ring, or the disk tier (the
/// row is promoted into memory on the way out). Request spans record this
/// so a "cache hit" that actually paid a disk read is visible in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Served from the in-memory ring.
    Memory,
    /// Served from the disk tier (and promoted).
    Disk,
}

impl CacheTier {
    /// The tier's span-attribute spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheTier::Memory => "hit",
            CacheTier::Disk => "disk",
        }
    }
}

/// Registry handles a [`ResultCache`] feeds alongside its own atomic
/// counters, so a resident server's cache behaviour shows up on the
/// Prometheus endpoint without the cache depending on where it's embedded.
#[derive(Debug, Clone)]
pub struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    disk_hits: Counter,
    disk_writes: Counter,
}

impl CacheMetrics {
    /// Registers the cache metric family (`mdx_serve_cache_*`) on `reg`.
    pub fn register(reg: &Registry) -> CacheMetrics {
        CacheMetrics {
            hits: reg.counter(
                "mdx_serve_cache_hits_total",
                "Result-cache hits (memory or disk)",
            ),
            misses: reg.counter("mdx_serve_cache_misses_total", "Result-cache misses"),
            evictions: reg.counter(
                "mdx_serve_cache_evictions_total",
                "Rows evicted from the in-memory tier (FIFO cap)",
            ),
            disk_hits: reg.counter(
                "mdx_serve_cache_disk_hits_total",
                "Hits served from the disk tier (promoted into memory)",
            ),
            disk_writes: reg.counter(
                "mdx_serve_cache_disk_writes_total",
                "Rows written to the disk tier",
            ),
        }
    }
}

struct Mem {
    rows: HashMap<u64, ScenarioReport>,
    order: VecDeque<u64>,
    capacity: usize,
}

/// A bounded, thread-safe row cache with an optional disk tier.
pub struct ResultCache {
    mem: Mutex<Mem>,
    dir: Option<PathBuf>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    metrics: Option<CacheMetrics>,
}

impl ResultCache {
    /// An in-memory cache holding at most `capacity` rows (FIFO eviction).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            mem: Mutex::new(Mem {
                rows: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
            }),
            dir: None,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            metrics: None,
        }
    }

    /// Adds a disk tier under `dir` (created on first write). Disk entries
    /// survive the process and are consulted on memory misses.
    #[must_use]
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> ResultCache {
        self.dir = Some(dir.into());
        self
    }

    /// Mirrors the cache's counters into registry instruments (see
    /// [`CacheMetrics::register`]). Without this the cache costs nothing
    /// beyond its own atomics.
    #[must_use]
    pub fn with_metrics(mut self, metrics: CacheMetrics) -> ResultCache {
        self.metrics = Some(metrics);
        self
    }

    fn disk_path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("row-{key:016x}.json")))
    }

    /// Fetches the row for `key`, consulting memory then disk. A disk hit
    /// is promoted into memory.
    pub fn get(&self, key: u64) -> Option<ScenarioReport> {
        self.get_tiered(key).map(|(row, _)| row)
    }

    /// Like [`ResultCache::get`], but also reports which tier served the
    /// hit, for span attribution.
    pub fn get_tiered(&self, key: u64) -> Option<(ScenarioReport, CacheTier)> {
        if let Some(row) = self.mem.lock().expect("cache lock").rows.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.hits.inc();
            }
            return Some((row.clone(), CacheTier::Memory));
        }
        if let Some(path) = self.disk_path(key) {
            if let Ok(body) = std::fs::read_to_string(&path) {
                if let Ok(row) = serde_json::from_str::<ScenarioReport>(&body) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = &self.metrics {
                        m.hits.inc();
                        m.disk_hits.inc();
                    }
                    self.insert_mem(key, row.clone());
                    return Some((row, CacheTier::Disk));
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.misses.inc();
        }
        None
    }

    fn insert_mem(&self, key: u64, row: ScenarioReport) {
        let mut mem = self.mem.lock().expect("cache lock");
        if mem.rows.insert(key, row).is_none() {
            mem.order.push_back(key);
        }
        while mem.order.len() > mem.capacity {
            if let Some(old) = mem.order.pop_front() {
                mem.rows.remove(&old);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.evictions.inc();
                }
            }
        }
    }

    /// Stores a row under `key` in memory and, when configured, on disk.
    pub fn put(&self, key: u64, row: &ScenarioReport) {
        if let Some(path) = self.disk_path(key) {
            // Disk failures degrade to memory-only caching; the row itself
            // is already computed and correct.
            let wrote = path
                .parent()
                .map(std::fs::create_dir_all)
                .transpose()
                .and_then(|_| {
                    std::fs::write(&path, serde_json::to_string(row).expect("row serializes"))
                });
            if wrote.is_ok() {
                if let Some(m) = &self.metrics {
                    m.disk_writes.inc();
                }
            }
        }
        self.insert_mem(key, row.clone());
    }

    /// Rows currently resident in memory.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache lock").rows.len()
    }

    /// True when the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime (hits, misses) counters.
    pub fn counters(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Rows evicted from the in-memory tier over the cache's lifetime.
    pub fn eviction_count(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The disk tier's directory, when one is configured.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_campaign::{run_scenario, Scenario, Workload};

    fn tiny_row(seed: u64) -> ScenarioReport {
        let s = Scenario::new(
            vec![4, 3],
            "sr2201",
            Workload::BroadcastStorm {
                sources: vec![0],
                flits: 4,
            },
            seed,
        );
        run_scenario(&s).expect("tiny scenario runs")
    }

    #[test]
    fn capacity_evicts_oldest_but_serves_hits() {
        let cache = ResultCache::new(2);
        let rows: Vec<_> = (0..3).map(tiny_row).collect();
        for (i, r) in rows.iter().enumerate() {
            cache.put(row_key(&r.token, None), r);
            assert!(cache.len() <= 2, "cap exceeded at {i}");
        }
        // Oldest evicted, newest two resident.
        assert!(cache.get(row_key(&rows[0].token, None)).is_none());
        assert_eq!(
            cache.get(row_key(&rows[2].token, None)).unwrap().digest,
            rows[2].digest
        );
        let (hits, misses) = cache.counters();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn disk_tier_survives_a_fresh_cache() {
        let dir = std::env::temp_dir().join(format!(
            "mdx-serve-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let row = tiny_row(9);
        let key = row_key(&row.token, Some(64));

        let cache = ResultCache::new(4).with_dir(&dir);
        cache.put(key, &row);

        let fresh = ResultCache::new(4).with_dir(&dir);
        let (got, tier) = fresh.get_tiered(key).expect("disk hit");
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(got.digest, row.digest);
        // Promoted: the second lookup is a memory hit.
        assert_eq!(
            fresh.get_tiered(key).expect("promoted").1,
            CacheTier::Memory
        );
        assert_eq!(
            serde_json::to_string(&got).unwrap(),
            serde_json::to_string(&row).unwrap()
        );
        // Window width is part of the key.
        assert!(fresh.get(row_key(&row.token, Some(128))).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
