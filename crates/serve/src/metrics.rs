//! Serve-layer telemetry: per-verb request instruments, queue/pool
//! gauges, and the Prometheus exposition endpoint (`--metrics-addr`)
//! plus the periodic snapshot-to-file writer (`--metrics-file`).
//!
//! Everything here reads from the one [`Registry`] the [`crate::Service`]
//! owns — the `metrics` protocol verb, the HTTP endpoint, and the file
//! writer are three views of the same atomics, so a scrape mid-session
//! agrees with the JSON snapshot a pipelined client requests.

use mdx_campaign::EngineMeter;
use mdx_metrics::{Counter, Gauge, Histogram, Registry, DEFAULT_LATENCY_BUCKETS_S};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Protocol verbs with pre-registered per-verb series; unknown verbs land
/// on the `other` series so a typo can't mint unbounded label values.
const VERBS: [&str; 8] = [
    "run",
    "spec",
    "postmortem",
    "stats",
    "metrics",
    "spans",
    "shutdown",
    "other",
];

/// Error classes for `mdx_serve_errors_total{class=...}`, pre-registered
/// for the same cardinality reason as [`VERBS`].
const ERROR_CLASSES: [&str; 4] = ["parse", "unknown_verb", "request", "panic"];

/// The per-verb instrument pair: a request counter and a service-latency
/// histogram (time inside the handler, queue wait excluded).
#[derive(Debug, Clone)]
pub struct VerbMeter {
    /// Requests dispatched with this verb.
    pub requests: Counter,
    /// Wall-clock seconds spent inside the handler.
    pub latency: Histogram,
}

/// Registry instruments for the resident server (`mdx_serve_*`), plus the
/// engine self-profile family fed from each simulated row.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    verbs: Vec<(&'static str, VerbMeter)>,
    errors: Vec<(&'static str, Counter)>,
    /// Seconds a request line waited in the queue before a worker took it.
    pub queue_wait: Histogram,
    /// Requests currently inside a handler.
    pub inflight: Gauge,
    /// Worker threads currently executing a job.
    pub workers_busy: Gauge,
    /// Engine self-profile instruments, fed per simulated (non-cached) row.
    pub engine: EngineMeter,
}

impl ServeMetrics {
    /// Registers the serve metric family on `reg`.
    pub fn register(reg: &Registry) -> ServeMetrics {
        ServeMetrics {
            verbs: VERBS
                .iter()
                .map(|&v| {
                    (
                        v,
                        VerbMeter {
                            requests: reg.counter_with(
                                "mdx_serve_requests_total",
                                "Requests dispatched, by protocol verb",
                                &[("verb", v)],
                            ),
                            latency: reg.histogram_with(
                                "mdx_serve_request_seconds",
                                "Request service time (handler only, queue wait excluded)",
                                DEFAULT_LATENCY_BUCKETS_S,
                                &[("verb", v)],
                            ),
                        },
                    )
                })
                .collect(),
            errors: ERROR_CLASSES
                .iter()
                .map(|&c| {
                    (
                        c,
                        reg.counter_with(
                            "mdx_serve_errors_total",
                            "Error responses, by failure class",
                            &[("class", c)],
                        ),
                    )
                })
                .collect(),
            queue_wait: reg.histogram(
                "mdx_serve_queue_wait_seconds",
                "Seconds a request waited in the worker queue",
                DEFAULT_LATENCY_BUCKETS_S,
            ),
            inflight: reg.gauge(
                "mdx_serve_inflight_requests",
                "Requests currently inside a handler",
            ),
            workers_busy: reg.gauge(
                "mdx_serve_workers_busy",
                "Worker threads currently executing a job",
            ),
            engine: EngineMeter::register(reg),
        }
    }

    /// The instrument pair for `cmd`, falling back to the `other` series.
    pub fn verb(&self, cmd: &str) -> &VerbMeter {
        self.verbs
            .iter()
            .find(|(v, _)| *v == cmd)
            .or_else(|| self.verbs.iter().find(|(v, _)| *v == "other"))
            .map(|(_, m)| m)
            .expect("`other` verb series is always registered")
    }

    /// Counts one error of `class`, falling back to `request` for an
    /// unregistered class.
    pub fn error(&self, class: &str) {
        self.errors
            .iter()
            .find(|(c, _)| *c == class)
            .or_else(|| self.errors.iter().find(|(c, _)| *c == "request"))
            .map(|(_, counter)| counter.inc())
            .expect("`request` error series is always registered");
    }
}

/// Serves Prometheus text exposition over HTTP on `listener` until `stop`
/// flips: any `GET` gets a `200 text/plain; version=0.0.4` body rendered
/// from a fresh registry snapshot. One request per connection
/// (`Connection: close`) — a scraper's steady 5–15 s cadence doesn't
/// justify keep-alive plumbing. Returns the bound address and the
/// listener thread's handle.
pub fn spawn_metrics_listener(
    registry: Registry,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> std::io::Result<(std::net::SocketAddr, std::thread::JoinHandle<()>)> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((mut sock, _)) => {
                    let _ = sock.set_nonblocking(false);
                    let _ = sock.set_read_timeout(Some(Duration::from_millis(500)));
                    // Drain the request head; the path is irrelevant —
                    // every GET is a scrape.
                    let mut head = [0u8; 1024];
                    let _ = sock.read(&mut head);
                    let body = registry.snapshot().render_prometheus();
                    let _ = write!(
                        sock,
                        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len(),
                    );
                    let _ = sock.flush();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(_) => break,
            }
        }
    });
    Ok((addr, handle))
}

/// Writes a Prometheus-text snapshot of `registry` to `path` every
/// `every`, plus a final snapshot when `stop` flips — so a crashed or
/// long-gone scraper still leaves the operator a recent on-disk view.
pub fn spawn_snapshot_writer(
    registry: Registry,
    path: PathBuf,
    every: Duration,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let write_snapshot = |registry: &Registry| {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(&path, registry.snapshot().render_prometheus());
        };
        let mut last = Instant::now();
        write_snapshot(&registry);
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
            if last.elapsed() >= every {
                write_snapshot(&registry);
                last = Instant::now();
            }
        }
        write_snapshot(&registry);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_lookup_falls_back_to_other() {
        let reg = Registry::new();
        let m = ServeMetrics::register(&reg);
        m.verb("run").requests.inc();
        m.verb("no-such-verb").requests.inc();
        m.error("parse");
        m.error("no-such-class");
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("mdx_serve_requests_total{verb=\"run\"} 1"));
        assert!(text.contains("mdx_serve_requests_total{verb=\"other\"} 1"));
        assert!(text.contains("mdx_serve_errors_total{class=\"parse\"} 1"));
        assert!(text.contains("mdx_serve_errors_total{class=\"request\"} 1"));
    }

    #[test]
    fn listener_answers_http_get_with_exposition() {
        let reg = Registry::new();
        reg.counter("mdx_test_hits_total", "test counter").add(3);
        let stop = Arc::new(AtomicBool::new(false));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (addr, handle) = spawn_metrics_listener(reg.clone(), listener, stop.clone()).unwrap();

        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        write!(sock, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        sock.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
        assert!(resp.contains("mdx_test_hits_total 3"), "{resp}");

        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn snapshot_writer_leaves_a_final_file() {
        let reg = Registry::new();
        reg.gauge("mdx_test_level", "test gauge").set(2.5);
        let dir = std::env::temp_dir().join(format!(
            "mdx-serve-metrics-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("metrics.prom");
        let stop = Arc::new(AtomicBool::new(false));
        let handle = spawn_snapshot_writer(
            reg.clone(),
            path.clone(),
            Duration::from_secs(3600),
            stop.clone(),
        );
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("mdx_test_level 2.5"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
