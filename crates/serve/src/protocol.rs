//! The line-oriented JSON protocol a resident `campaign serve` process
//! speaks, over stdio or TCP.
//!
//! One request per line, one response per line. Every request may carry a
//! client-chosen `id`, echoed verbatim on its response so a client
//! pipelining requests across the worker pool can match answers arriving
//! out of order.
//!
//! Requests (`cmd` selects the verb; unused fields are omitted):
//!
//! ```text
//! {"cmd":"run","token":"MDX1...","id":1}            run or fetch a scenario
//! {"cmd":"run","token":"MDX1...","force":true}      bypass the result cache
//! {"cmd":"spec","spec":"phase 0..100 ...","shape":[4,4],"scheme":"sr2201","seed":7}
//! {"cmd":"postmortem","digest":"<row digest>"}      fetch forensics
//! {"cmd":"tournament","spec":"scheme all\nseeds 1"} run a scheme tournament
//! {"cmd":"stats"}                                   service counters
//! {"cmd":"metrics"}                                 full registry snapshot
//! {"cmd":"spans"}                                   span-collector ledger
//! {"cmd":"health"}                                  SLO verdict + firing alerts
//! {"cmd":"shutdown"}                                stop the server
//! ```
//!
//! Responses carry `kind`: `row` (with the full campaign row JSON and a
//! `cached` flag), `error` (with a message), `stats`, `metrics` (a JSON
//! rendering of the server's metric registry — the same data the
//! `--metrics-addr` Prometheus endpoint exposes as text), `spans` (the
//! span collector's ledger and resident-trace summaries), `postmortem`,
//! `tournament` (the finished cross-scheme table, with a `cached` flag —
//! resident servers answer repeat tournaments from a spec-keyed cache),
//! `health` (the SLO engine's current [`mdx_health::HealthReport`] as
//! JSON, for servers started with `--slo`), or `ok` (shutdown
//! acknowledgment).
//!
//! When the server is evaluating SLOs, *every* response line — rows,
//! stats, even parse-error salvage — additionally carries a compact
//! `verdict` field (`pass` / `warn` / `breach`), the overall status as of
//! the latest evaluation, so a client never has to issue a second request
//! to learn whether the service it is talking to is healthy.
//!
//! Every request may also carry a client-chosen `trace` string. It is
//! echoed on the response line — *including* error responses, so span
//! logs join to client logs even for requests that failed to parse — and,
//! when span collection is on, becomes the request's trace id. A traced
//! request without a client `trace` gets a server-minted id, also echoed,
//! so the client can fetch the trace later.
//!
//! Serialization is hand-written so absent optional fields are *omitted*
//! rather than `null`-padded: request lines stay human-writable and
//! response lines stay schema-stable as fields are added.

use mdx_campaign::ScenarioReport;
use mdx_obs::PostmortemReport;
use mdx_tournament::TournamentResult;
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// One protocol request line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Request {
    /// The verb: `run`, `spec`, `postmortem`, `tournament`, `stats`,
    /// `metrics`, `spans`, `health`, or `shutdown`.
    pub cmd: String,
    /// Client correlation tag, echoed on the response.
    pub id: Option<u64>,
    /// `MDX1.` scenario token (`run`).
    pub token: Option<String>,
    /// Spec text: a workload stream for `spec` requests (see
    /// [`mdx_workloads::StreamSpec`]) or a tournament grid for
    /// `tournament` requests (see [`mdx_tournament::TournamentSpec`]).
    pub spec: Option<String>,
    /// Topology extents for `spec` requests (default `[4, 4]`).
    pub shape: Option<Vec<u16>>,
    /// Routing scheme id for `spec` requests (default `sr2201`).
    pub scheme: Option<String>,
    /// Scenario seed for `spec` requests (default 0).
    pub seed: Option<u64>,
    /// Window width in cycles for this row's open-loop telemetry,
    /// overriding the server default.
    pub windows: Option<u64>,
    /// Skip the cache lookup and re-simulate (the fresh row still
    /// refreshes the cache).
    pub force: bool,
    /// Row digest (`postmortem`).
    pub digest: Option<String>,
    /// Client-chosen trace id, echoed on the response and adopted as the
    /// request's span trace id when collection is on.
    pub trace: Option<String>,
}

impl Request {
    /// A `run` request for one token.
    pub fn run(token: &str) -> Request {
        Request {
            cmd: "run".to_string(),
            token: Some(token.to_string()),
            ..Request::default()
        }
    }

    /// Tags the request with a client correlation id (builder style).
    #[must_use]
    pub fn with_id(mut self, id: u64) -> Request {
        self.id = Some(id);
        self
    }

    /// Tags the request with a client trace id (builder style).
    #[must_use]
    pub fn with_trace(mut self, trace: impl Into<String>) -> Request {
        self.trace = Some(trace.into());
        self
    }
}

fn push_opt<T: Serialize>(m: &mut Vec<(String, Value)>, name: &str, v: &Option<T>) {
    if let Some(v) = v {
        m.push((name.to_string(), v.to_value()));
    }
}

fn opt_field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
) -> Result<Option<T>, serde::de::Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, Value::Null)) | None => Ok(None),
        Some((_, v)) => T::from_value(v).map(Some),
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        let mut m = vec![("cmd".to_string(), self.cmd.to_value())];
        push_opt(&mut m, "id", &self.id);
        push_opt(&mut m, "token", &self.token);
        push_opt(&mut m, "spec", &self.spec);
        push_opt(&mut m, "shape", &self.shape);
        push_opt(&mut m, "scheme", &self.scheme);
        push_opt(&mut m, "seed", &self.seed);
        push_opt(&mut m, "windows", &self.windows);
        if self.force {
            m.push(("force".to_string(), true.to_value()));
        }
        push_opt(&mut m, "digest", &self.digest);
        push_opt(&mut m, "trace", &self.trace);
        Value::Map(m)
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Request, serde::de::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::de::Error::expected("a request object"))?;
        Ok(Request {
            cmd: Deserialize::from_value(serde::de::field(entries, "cmd")?)?,
            id: opt_field(entries, "id")?,
            token: opt_field(entries, "token")?,
            spec: opt_field(entries, "spec")?,
            shape: opt_field(entries, "shape")?,
            scheme: opt_field(entries, "scheme")?,
            seed: opt_field(entries, "seed")?,
            windows: opt_field(entries, "windows")?,
            force: opt_field(entries, "force")?.unwrap_or(false),
            digest: opt_field(entries, "digest")?,
            trace: opt_field(entries, "trace")?,
        })
    }
}

/// Service counters, returned by the `stats` verb.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Rows served (cache hits included).
    pub served: usize,
    /// Rows answered straight from the result cache.
    pub cache_hits: usize,
    /// Cache lookups that missed and fell through to simulation.
    pub cache_misses: usize,
    /// Rows evicted from the in-memory cache tier (FIFO cap).
    pub cache_evictions: usize,
    /// Requests that returned an error.
    pub errors: usize,
    /// Rows currently resident in the in-memory cache.
    pub cached_rows: usize,
    /// Post-mortem artifacts held for `postmortem` requests.
    pub postmortems: usize,
    /// Worker threads in the pool.
    pub workers: usize,
}

/// One protocol response line.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The response kind: `row`, `error`, `stats`, `metrics`, `spans`,
    /// `postmortem`, `tournament`, or `ok`.
    pub kind: String,
    /// The request's correlation id, echoed back.
    pub id: Option<u64>,
    /// Whether a `row` (or `tournament`) came from its cache.
    pub cached: Option<bool>,
    /// The campaign row (`row`).
    pub row: Option<ScenarioReport>,
    /// What went wrong (`error`).
    pub error: Option<String>,
    /// Service counters (`stats`).
    pub stats: Option<ServeStats>,
    /// Metric-registry snapshot as JSON (`metrics`).
    pub metrics: Option<Value>,
    /// Span-collector ledger as JSON (`spans`).
    pub spans: Option<Value>,
    /// Forensic report (`postmortem`).
    pub postmortem: Option<PostmortemReport>,
    /// The finished cross-scheme table (`tournament`).
    pub tournament: Option<TournamentResult>,
    /// The SLO engine's full report as JSON (`health`).
    pub health: Option<Value>,
    /// Overall SLO status (`pass` / `warn` / `breach`), stamped on every
    /// response line when the server evaluates SLOs.
    pub verdict: Option<String>,
    /// The request's trace id: the client's `trace` echoed back, or the
    /// server-minted id when span collection traced an untagged request.
    pub trace: Option<String>,
}

impl Response {
    fn empty(kind: &str, id: Option<u64>) -> Response {
        Response {
            kind: kind.to_string(),
            id,
            cached: None,
            row: None,
            error: None,
            stats: None,
            metrics: None,
            spans: None,
            postmortem: None,
            tournament: None,
            health: None,
            verdict: None,
            trace: None,
        }
    }

    /// A `row` response.
    pub fn row(id: Option<u64>, cached: bool, row: ScenarioReport) -> Response {
        Response {
            cached: Some(cached),
            row: Some(row),
            ..Response::empty("row", id)
        }
    }

    /// An `error` response.
    pub fn error(id: Option<u64>, msg: impl Into<String>) -> Response {
        Response {
            error: Some(msg.into()),
            ..Response::empty("error", id)
        }
    }

    /// A `stats` response.
    pub fn stats(id: Option<u64>, stats: ServeStats) -> Response {
        Response {
            stats: Some(stats),
            ..Response::empty("stats", id)
        }
    }

    /// A `metrics` response carrying a registry snapshot as JSON.
    pub fn metrics(id: Option<u64>, snapshot: Value) -> Response {
        Response {
            metrics: Some(snapshot),
            ..Response::empty("metrics", id)
        }
    }

    /// A `spans` response carrying the collector's ledger as JSON.
    pub fn spans(id: Option<u64>, ledger: Value) -> Response {
        Response {
            spans: Some(ledger),
            ..Response::empty("spans", id)
        }
    }

    /// A `postmortem` response.
    pub fn postmortem(id: Option<u64>, pm: PostmortemReport) -> Response {
        Response {
            postmortem: Some(pm),
            ..Response::empty("postmortem", id)
        }
    }

    /// A `tournament` response carrying the finished comparison table.
    pub fn tournament(id: Option<u64>, cached: bool, table: TournamentResult) -> Response {
        Response {
            cached: Some(cached),
            tournament: Some(table),
            ..Response::empty("tournament", id)
        }
    }

    /// A `health` response carrying the SLO engine's report as JSON.
    pub fn health(id: Option<u64>, report: Value) -> Response {
        Response {
            health: Some(report),
            ..Response::empty("health", id)
        }
    }

    /// An `ok` acknowledgment (shutdown).
    pub fn ok(id: Option<u64>) -> Response {
        Response::empty("ok", id)
    }

    /// Tags the response with the request's trace id (builder style).
    #[must_use]
    pub fn with_trace(mut self, trace: Option<String>) -> Response {
        self.trace = trace;
        self
    }

    /// Stamps the overall SLO verdict (builder style).
    #[must_use]
    pub fn with_verdict(mut self, verdict: Option<String>) -> Response {
        self.verdict = verdict;
        self
    }

    /// Whether this is an error response.
    pub fn is_error(&self) -> bool {
        self.kind == "error"
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        let mut m = vec![("kind".to_string(), self.kind.to_value())];
        push_opt(&mut m, "id", &self.id);
        push_opt(&mut m, "cached", &self.cached);
        push_opt(&mut m, "row", &self.row);
        push_opt(&mut m, "error", &self.error);
        push_opt(&mut m, "stats", &self.stats);
        push_opt(&mut m, "metrics", &self.metrics);
        push_opt(&mut m, "spans", &self.spans);
        push_opt(&mut m, "postmortem", &self.postmortem);
        push_opt(&mut m, "tournament", &self.tournament);
        push_opt(&mut m, "health", &self.health);
        push_opt(&mut m, "verdict", &self.verdict);
        push_opt(&mut m, "trace", &self.trace);
        Value::Map(m)
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Response, serde::de::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::de::Error::expected("a response object"))?;
        Ok(Response {
            kind: Deserialize::from_value(serde::de::field(entries, "kind")?)?,
            id: opt_field(entries, "id")?,
            cached: opt_field(entries, "cached")?,
            row: opt_field(entries, "row")?,
            error: opt_field(entries, "error")?,
            stats: opt_field(entries, "stats")?,
            metrics: opt_field(entries, "metrics")?,
            spans: opt_field(entries, "spans")?,
            postmortem: opt_field(entries, "postmortem")?,
            tournament: opt_field(entries, "tournament")?,
            health: opt_field(entries, "health")?,
            verdict: opt_field(entries, "verdict")?,
            trace: opt_field(entries, "trace")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_omits_absent_fields() {
        let req = Request::run("MDX1.abc").with_id(7);
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"cmd\":\"run\""));
        assert!(!json.contains("spec"), "{json}");
        assert!(!json.contains("force"), "{json}");
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn hand_written_requests_parse_with_defaults() {
        let req: Request = serde_json::from_str(r#"{"cmd":"stats"}"#).unwrap();
        assert_eq!(req.cmd, "stats");
        assert_eq!(req.id, None);
        assert!(!req.force);
    }

    #[test]
    fn error_response_roundtrip() {
        let resp = Response::error(Some(3), "bad token");
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert!(back.is_error());
        assert_eq!(back.id, Some(3));
        assert_eq!(back.error.as_deref(), Some("bad token"));
    }

    #[test]
    fn tournament_response_roundtrips() {
        let spec = mdx_tournament::TournamentSpec::parse(
            "scheme sr2201\ntopology mdx:3x3\nfaults none\nseeds 1\n",
        )
        .unwrap();
        let table = mdx_tournament::run_tournament(&spec);
        let resp = Response::tournament(Some(9), false, table.clone());
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"kind\":\"tournament\""));
        assert!(json.contains("\"cached\":false"));
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, Some(9));
        assert_eq!(back.tournament.as_ref(), Some(&table));

        // Non-tournament lines stay free of the field.
        let json = serde_json::to_string(&Response::ok(None)).unwrap();
        assert!(!json.contains("tournament"), "{json}");
    }

    #[test]
    fn trace_field_roundtrips_and_is_omitted_when_absent() {
        let req = Request::run("MDX1.abc").with_trace("cli-42");
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"trace\":\"cli-42\""));
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trace.as_deref(), Some("cli-42"));

        let resp = Response::ok(None).with_trace(Some("cli-42".to_string()));
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"trace\":\"cli-42\""));
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trace.as_deref(), Some("cli-42"));

        // Untraced lines stay trace-free rather than null-padded.
        let json = serde_json::to_string(&Response::ok(None)).unwrap();
        assert!(!json.contains("trace"), "{json}");
    }

    #[test]
    fn health_and_verdict_roundtrip_and_are_omitted_when_absent() {
        let report = Value::Map(vec![(
            "status".to_string(),
            Value::Str("breach".to_string()),
        )]);
        let resp = Response::health(Some(4), report).with_verdict(Some("breach".to_string()));
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"kind\":\"health\""), "{json}");
        assert!(json.contains("\"verdict\":\"breach\""), "{json}");
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, Some(4));
        assert_eq!(back.verdict.as_deref(), Some("breach"));
        assert!(back.health.is_some());

        // A verdict can ride on any kind, error lines included.
        let err = Response::error(None, "bad line").with_verdict(Some("pass".to_string()));
        let json = serde_json::to_string(&err).unwrap();
        assert!(json.contains("\"kind\":\"error\""), "{json}");
        assert!(json.contains("\"verdict\":\"pass\""), "{json}");

        // Servers without --slo emit byte-identical, verdict-free lines.
        let json = serde_json::to_string(&Response::ok(None)).unwrap();
        assert!(!json.contains("health"), "{json}");
        assert!(!json.contains("verdict"), "{json}");
    }
}
