//! `campaign watch`: a one-screen health/top view over a live server.
//!
//! The CLI polls a `campaign serve --tcp` endpoint with the `health` and
//! `stats` protocol verbs, decodes the responses into a [`WatchFrame`],
//! and renders it with [`render_watch`] — objective table (current value,
//! fast/slow burn rates, remaining error budget, per-objective status),
//! the most recent alert, and the service counters. Rendering is a pure
//! function of the frame, so the screen a client shows for a given pair
//! of responses is deterministic and unit-testable without a socket.

use crate::protocol::ServeStats;
use mdx_health::{HealthReport, Status};

/// One poll's worth of decoded responses.
#[derive(Debug, Clone, Default)]
pub struct WatchFrame {
    /// The decoded `health` report, when the server evaluates SLOs.
    pub health: Option<HealthReport>,
    /// The server's `error` text when the `health` verb failed (most
    /// commonly: serve started without `--slo`).
    pub health_error: Option<String>,
    /// The decoded `stats` counters.
    pub stats: Option<ServeStats>,
}

fn fmt_value(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.4}"),
        None => "-".to_string(),
    }
}

/// Renders one frame as the one-screen view.
pub fn render_watch(frame: &WatchFrame) -> String {
    let mut out = String::new();
    match (&frame.health, &frame.health_error) {
        (Some(report), _) => {
            let banner = match report.status {
                Status::Pass => "PASS",
                Status::Warn => "WARN",
                Status::Breach => "BREACH",
            };
            out.push_str(&format!("health: {banner} (tick {})\n", report.tick));
            out.push_str(&format!(
                "  {:<20} {:<28} {:>10} {:>7} {:>7} {:>7}  status\n",
                "objective", "signal", "value", "fast", "slow", "budget"
            ));
            for o in &report.objectives {
                out.push_str(&format!(
                    "  {:<20} {:<28} {:>10} {:>7.2} {:>7.2} {:>7.2}  {}\n",
                    o.id,
                    o.signal,
                    fmt_value(o.value),
                    o.fast_burn,
                    o.slow_burn,
                    o.budget_remaining,
                    o.status.as_str()
                ));
            }
            if let Some(a) = report.alerts.last() {
                out.push_str(&format!(
                    "  last alert: {} {} -> {} (tick {}, value {})\n",
                    a.objective,
                    a.from.as_str(),
                    a.to.as_str(),
                    a.tick,
                    fmt_value(a.value)
                ));
            }
        }
        (None, Some(e)) => out.push_str(&format!("health: unavailable ({e})\n")),
        (None, None) => out.push_str("health: no response\n"),
    }
    match &frame.stats {
        Some(s) => out.push_str(&format!(
            "serve:  served {}  errors {}  cache {}/{} hit/miss ({} resident)  workers {}\n",
            s.served, s.errors, s.cache_hits, s.cache_misses, s.cached_rows, s.workers
        )),
        None => out.push_str("serve:  no stats response\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_health::{HealthEngine, SignalFrame, SloSpec};

    fn breached_report() -> HealthReport {
        let spec = SloSpec::parse(
            "window fast=2 slow=4\nburn fast=1.5 slow=1.0\n\
             objective dl deadlock_rate ceiling 0.0 budget=0.5\n\
             objective lat latency_p99 ceiling 100 budget=0.5\n",
        )
        .unwrap();
        let mut engine = HealthEngine::new(spec);
        let mut f = SignalFrame::new(0);
        f.set("deadlock_rate", 1.0).set("latency_p99", 12.0);
        // One hot sample saturates both windows past their burn gates, so
        // the very first report carries the pass -> breach alert.
        engine.observe(&f)
    }

    #[test]
    fn render_shows_objectives_statuses_and_counters() {
        let frame = WatchFrame {
            health: Some(breached_report()),
            health_error: None,
            stats: Some(ServeStats {
                served: 12,
                cache_hits: 3,
                cache_misses: 9,
                errors: 1,
                workers: 2,
                ..ServeStats::default()
            }),
        };
        let s = render_watch(&frame);
        assert!(s.contains("health: BREACH"), "{s}");
        assert!(s.contains("dl"), "{s}");
        assert!(s.contains("deadlock_rate"), "{s}");
        assert!(s.contains("breach"), "{s}");
        // The healthy objective renders as pass with its current value.
        assert!(s.contains("12.0000"), "{s}");
        assert!(s.contains("last alert: dl"), "{s}");
        assert!(s.contains("served 12"), "{s}");
        assert!(s.contains("workers 2"), "{s}");
    }

    #[test]
    fn render_degrades_without_health_or_stats() {
        let s = render_watch(&WatchFrame::default());
        assert!(s.contains("health: no response"), "{s}");
        assert!(s.contains("no stats response"), "{s}");
        let s = render_watch(&WatchFrame {
            health_error: Some("slo evaluation disabled".to_string()),
            ..WatchFrame::default()
        });
        assert!(s.contains("unavailable (slo evaluation disabled)"), "{s}");
    }
}
