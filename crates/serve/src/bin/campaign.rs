//! The `campaign` CLI: run, replay, and shrink routing experiments.
//!
//! ```text
//! campaign run [--scheme all|id,..] [--shape 4x3] [--max-faults N]
//!              [--fault-samples N] [--seeds N]
//!              [--workloads mixed,storm,detour,fault-storm]
//!              [--timeline CYCLE] [--recovery drop|reinject|reroute]
//!              [--max-cycles N] [--jsonl PATH] [--quiet] [--metrics]
//!              [--fail-on-deadlock] [--fail-on-loss]
//!              [--flight-recorder] [--postmortem-dir DIR] [--prom PATH]
//! campaign replay <token> [--metrics] [--trace-out PATH] [--stall-probe N]
//!                 [--flight-recorder] [--postmortem-dir DIR] [--attribution]
//!                 [--cache-dir DIR] [--no-cache] [--force]
//! campaign shrink <token>
//! campaign diff <a.jsonl> <b.jsonl> [--threshold PP] [--fail-on-shift] [--json]
//! campaign stream <spec-file> [--shape 4x4] [--scheme ID] [--seed N]
//!                 [--windows W] [--max-cycles N] [--jsonl PATH] [--quiet]
//! campaign serve [--tcp ADDR] [--workers N] [--windows W]
//!                [--cache-dir DIR] [--cache-cap N]
//!                [--metrics-addr ADDR] [--metrics-file PATH]
//!                [--metrics-every SECS]
//!                [--span-log PATH] [--span-sample RATE]
//!                [--slo FILE] [--alert-log PATH] [--slo-every SECS]
//! campaign watch <ADDR> [--interval SECS] [--count N] [--once] [--no-clear]
//! campaign spans <spans.jsonl> [--top N] [--perfetto PATH]
//! campaign bench-serve [--tokens N] [--workers N] [--hits N]
//! ```
//!
//! `--timeline CYCLE` turns the fault dimension *live*: instead of wearing
//! its fault set from cycle 0, every scenario starts fault-free and injects
//! the faults at the given cycle through the SR2201-style epoch protocol
//! (quiesce, drain, reprogram, resume — see `mdx-reconfig`). `--recovery`
//! picks what happens to packets wounded by the activation (default
//! `reinject`). Live rows carry a `reconfig` report with per-phase cycle
//! counts and the transition-safety verdict; `--fail-on-loss` exits
//! nonzero unless every live row recovered every victim and crossed the
//! transition with no mixed-epoch wait cycle.
//!
//! Every row a campaign emits carries an `MDX1.` token; `replay` reruns one
//! bit-identically and `shrink` minimizes a deadlocking one. `--metrics`
//! attaches the telemetry observers (`mdx-obs`): under `run` it adds
//! per-row S-XB/D-XB utilization summaries to the JSONL rows, under
//! `replay` it prints the channel/crossbar heatmap. `--trace-out` writes a
//! Chrome `trace_event` JSON file (open at <https://ui.perfetto.dev>), and
//! `--stall-probe N` samples the wait graph every N cycles and prints the
//! stall timeline.
//!
//! `--flight-recorder` attaches the always-on flight recorder: every run
//! that ends abnormally (deadlock, stall, cycle limit) gets a forensic
//! post-mortem — the cyclic wait annotated with each packet's RC state,
//! recent hops, and a Fig. 5/Fig. 9 signature classification. Under `run`,
//! each failed scenario auto-dumps `postmortem-<digest>.json` and `.txt`
//! into `--postmortem-dir` (default `.`); under `replay`, the report is
//! printed (and dumped too when `--postmortem-dir` is given). `shrink`
//! always attaches the recorder to the minimized witness and prints its
//! report.
//!
//! `--attribution` attaches the cycle-exact latency profiler (`mdx-obs`
//! `AttributionObserver`): every delivered packet's latency is decomposed
//! into disjoint conserving phases, and each JSONL row gains an
//! `attribution` section (phase totals, top blame channels, critical-path
//! shape). Under `replay` the full report — phase table, blame profile,
//! critical path — is printed. `campaign diff` then compares two such
//! JSONL files phase-by-phase as shares of total latency, flagging shifts
//! beyond `--threshold` percentage points (default 1.0); `--fail-on-shift`
//! exits nonzero when anything is flagged, `--json` prints the machine
//! form instead of the table.
//!
//! `campaign stream` runs a declarative open-loop workload spec (phases,
//! bursts, mid-stream fault storms — see `mdx-workloads`' spec grammar)
//! once, with windowed telemetry, and prints the row plus the per-window
//! table and saturation verdict. `campaign serve` turns the process into
//! a resident service speaking the line-oriented JSON protocol
//! (`mdx-serve`) over stdio or TCP: tokens and specs in, JSONL rows out,
//! with a digest-keyed result cache answering repeat tokens without
//! re-simulating. `campaign bench-serve` measures that service in-process
//! (tokens/sec cold, cache-hit latency hot). Plain `campaign replay`
//! consults the same disk cache (default `.mdx-cache`; `--force`
//! re-simulates, `--no-cache` opts out entirely).
//!
//! Production telemetry: `campaign serve --metrics-addr ADDR` exposes the
//! server's metric registry as Prometheus text over HTTP (per-verb
//! request latency, queue wait, cache hit/miss/eviction counters, and the
//! engine self-profile — idle-tick fraction, cycles/sec, occupancy);
//! `--metrics-file PATH` additionally snapshots the same exposition to a
//! file every `--metrics-every SECS` (default 10) and once at shutdown.
//! The `metrics` protocol verb returns the snapshot as JSON in-band.
//! `campaign run --prom PATH` writes a one-shot exposition of the sweep's
//! campaign/engine instruments (rows/sec, per-row run and serialize
//! latency, worker saturation) when the sweep completes.
//!
//! Request tracing: `campaign serve --span-log PATH` appends every kept
//! trace's spans to a JSONL log (and `--span-sample RATE` head-samples at
//! `RATE` in `[0,1]` — error/deadlock/cycle-limit traces are kept
//! regardless). Each request's root span is tiled by `queue`, `cache`
//! (hit/miss/disk tier), `run` (with the engine's source/step/probe phase
//! children and, on fault-timeline rows, one span per reconfig epoch
//! phase on the cycle timeline), and `serialize`; responses echo the
//! trace id, and the `spans` verb returns the collector's ledger in-band.
//! `campaign spans FILE` summarizes such a log — per-name critical-path
//! breakdown plus the top-k slowest traces with their replay tokens — and
//! `--perfetto PATH` re-exports it as Chrome `trace_event` JSON.
//!
//! Health & SLOs (`mdx-health`): `campaign serve --slo FILE` loads a
//! declarative objective spec and evaluates it periodically against the
//! live metric registry with multi-window burn rates; the `health` verb
//! returns the current report, every response line is stamped with a
//! `verdict` (pass/warn/breach), `--alert-log PATH` appends status
//! transitions as JSONL, and the Prometheus exposition gains
//! `mdx_health_status` / `mdx_slo_burn_rate` / `mdx_slo_budget_remaining`
//! gauges. `campaign run --slo FILE` and `campaign tournament --slo FILE`
//! evaluate the same objectives instantaneously per row/cell and append a
//! `health` section to each JSONL line (output without the flag is
//! byte-identical to earlier releases). `campaign watch ADDR` polls a
//! serving endpoint's `health` + `stats` verbs and renders a one-screen
//! live view.

use mdx_campaign::{
    diff_attribution, enumerate_scenarios, run_campaign_metered, run_scenario_instrumented, shrink,
    CampaignConfig, CampaignMeter, ObsOptions, Scenario, ScenarioReport, Workload, WorkloadKind,
    CAMPAIGN_SCHEMES, DEFAULT_DIFF_THRESHOLD,
};
use mdx_health::{evaluate_frame, verdict_value, SignalFrame, SloSpec, Status};
use mdx_obs::{PostmortemReport, DEFAULT_FLIGHT_CAPACITY};
use mdx_serve::{
    render_watch, row_key, serve_on, serve_stdio, Request, Response, ResultCache, ServeConfig,
    Server, Service, SharedWriter, WatchFrame,
};
use mdx_tournament::{run_tournament, TournamentCell, TournamentSpec};
use mdx_workloads::StreamSpec;
use serde_json::Value;
use std::path::Path;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         campaign run [--scheme all|id,..] [--shape WxH[xD..]] [--max-faults N]\n    \
         [--fault-samples N] [--seeds N] [--workloads mixed,storm,detour,fault-storm]\n    \
         [--timeline CYCLE] [--recovery drop|reinject|reroute]\n    \
         [--max-cycles N] [--jsonl PATH] [--quiet] [--fail-on-deadlock] [--fail-on-loss]\n    \
         [--metrics] [--attribution] [--slo FILE]\n    \
         [--flight-recorder] [--postmortem-dir DIR] [--prom PATH]\n  \
         campaign replay <token> [--metrics] [--trace-out PATH] [--stall-probe N]\n    \
         [--flight-recorder] [--postmortem-dir DIR] [--attribution]\n    \
         [--cache-dir DIR] [--no-cache] [--force]\n  \
         campaign shrink <token>\n  \
         campaign diff <a.jsonl> <b.jsonl> [--threshold PP] [--fail-on-shift] [--json]\n  \
         campaign stream <spec-file> [--shape WxH[xD..]] [--scheme ID] [--seed N]\n    \
         [--windows W] [--max-cycles N] [--jsonl PATH] [--quiet]\n  \
         campaign tournament <spec-file|-> [--jsonl PATH] [--quiet] [--slo FILE]\n  \
         campaign serve [--tcp ADDR] [--workers N] [--windows W]\n    \
         [--cache-dir DIR] [--cache-cap N]\n    \
         [--metrics-addr ADDR] [--metrics-file PATH] [--metrics-every SECS]\n    \
         [--span-log PATH] [--span-sample RATE]\n    \
         [--slo FILE] [--alert-log PATH] [--slo-every SECS]\n  \
         campaign watch <ADDR> [--interval SECS] [--count N] [--once] [--no-clear]\n  \
         campaign spans <spans.jsonl> [--top N] [--perfetto PATH]\n  \
         campaign bench-serve [--tokens N] [--workers N] [--hits N]"
    );
    std::process::exit(2);
}

/// Writes `postmortem-<digest>.json` and `.txt` into `dir`; returns the
/// JSON path for logging.
fn dump_postmortem(dir: &str, digest: &str, pm: &PostmortemReport) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let json_path = Path::new(dir).join(format!("postmortem-{digest}.json"));
    let txt_path = Path::new(dir).join(format!("postmortem-{digest}.txt"));
    std::fs::write(&json_path, pm.to_json())?;
    std::fs::write(&txt_path, pm.render())?;
    Ok(json_path.display().to_string())
}

fn parse_shape(s: &str) -> Vec<u16> {
    let dims: Option<Vec<u16>> = s.split('x').map(|p| p.parse().ok()).collect();
    match dims {
        Some(d) if !d.is_empty() => d,
        _ => {
            eprintln!("error: bad --shape `{s}` (expected e.g. 4x3)");
            std::process::exit(2);
        }
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    match v.and_then(|s| s.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("error: {flag} needs a numeric argument");
            std::process::exit(2);
        }
    }
}

/// Loads and validates an SLO spec file; parse errors are usage errors.
fn load_slo(path: &str) -> SloSpec {
    match SloSpec::load(Path::new(path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Flattens one campaign row into the instantaneous signal frame the
/// per-row SLO verdict evaluates (same signal names the serve loop uses).
fn report_frame(r: &ScenarioReport) -> SignalFrame {
    let mut f = SignalFrame::new(0);
    f.set(
        "deadlock_rate",
        if r.outcome == "deadlock" { 1.0 } else { 0.0 },
    );
    f.set(
        "completed_rate",
        if r.outcome == "completed" { 1.0 } else { 0.0 },
    );
    let delivery = if r.offered == 0 {
        1.0
    } else {
        r.stats.delivered as f64 / r.offered as f64
    };
    f.set("delivery_ratio", delivery);
    f.set("mean_latency", r.stats.mean_latency()); // NaN dropped
    f.set("latency_max", r.stats.latency_max as f64);
    f.set("cycles", r.stats.cycles as f64);
    for (name, v) in [
        ("latency_p50", r.latency_p50),
        ("latency_p95", r.latency_p95),
        ("latency_p99", r.latency_p99),
    ] {
        if let Some(v) = v {
            f.set(name, v as f64);
        }
    }
    if let Some(s) = &r.stream {
        f.set(
            "saturated",
            if s.saturated_at.is_some() { 1.0 } else { 0.0 },
        );
        f.set("peak_backlog", s.peak_backlog as f64);
    }
    f
}

/// Flattens one tournament cell the same way.
fn cell_frame(c: &TournamentCell) -> SignalFrame {
    let mut f = SignalFrame::new(0);
    f.set("deadlock_rate", c.deadlock_rate);
    let delivery = if c.offered == 0 {
        1.0
    } else {
        c.delivered as f64 / c.offered as f64
    };
    f.set("delivery_ratio", delivery);
    f.set("throughput", c.throughput);
    f.set("cycles", c.cycles as f64);
    f.set("runs", c.runs as f64);
    for (name, v) in [
        ("latency_p50", c.p50),
        ("latency_p95", c.p95),
        ("latency_p99", c.p99),
    ] {
        if let Some(v) = v {
            f.set(name, v as f64);
        }
    }
    f
}

/// Appends a `health` verdict section to one serialized JSONL row.
/// Injection happens at the output layer — the row structs themselves
/// never change, so `--slo`-free output stays byte-identical.
fn stamp_health(line: &str, spec: &SloSpec, frame: &SignalFrame) -> String {
    let mut v: Value = serde_json::from_str(line).expect("row round-trips");
    if let Value::Map(entries) = &mut v {
        entries.push(("health".to_string(), verdict_value(spec, frame)));
    }
    serde_json::to_string(&v).expect("row serializes")
}

/// Counts pass/warn/breach over a set of frames and renders the one-line
/// summary (breached objective ids included, deduplicated).
fn health_summary(spec: &SloSpec, frames: impl Iterator<Item = SignalFrame>) -> (String, usize) {
    let (mut pass, mut warn, mut breach) = (0usize, 0usize, 0usize);
    let mut violated: Vec<String> = Vec::new();
    for frame in frames {
        let (status, objectives) = evaluate_frame(spec, &frame);
        match status {
            Status::Pass => pass += 1,
            Status::Warn => warn += 1,
            Status::Breach => breach += 1,
        }
        for o in objectives.iter().filter(|o| o.status == Status::Breach) {
            if !violated.contains(&o.id) {
                violated.push(o.id.clone());
            }
        }
    }
    let mut line = format!("health: {pass} pass, {warn} warn, {breach} breach");
    if !violated.is_empty() {
        line.push_str(&format!(" (violated: {})", violated.join(", ")));
    }
    line.push('\n');
    (line, breach)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut cfg = CampaignConfig {
        seeds: 8,
        ..CampaignConfig::default()
    };
    let mut jsonl: Option<String> = None;
    let mut quiet = false;
    let mut fail_on_deadlock = false;
    let mut fail_on_loss = false;
    let mut obs = ObsOptions::default();
    let mut postmortem_dir = ".".to_string();
    let mut prom: Option<String> = None;
    let mut slo: Option<SloSpec> = None;

    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheme" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.schemes = if v == "all" {
                    CAMPAIGN_SCHEMES.iter().map(|s| s.to_string()).collect()
                } else {
                    v.split(',')
                        .map(|s| {
                            if !mdx_core::registry::SCHEME_IDS.contains(&s) {
                                eprintln!(
                                    "error: unknown scheme `{s}` (known: {})",
                                    mdx_core::registry::SCHEME_IDS.join(", ")
                                );
                                std::process::exit(2);
                            }
                            s.to_string()
                        })
                        .collect()
                };
            }
            "--shape" => cfg.shape = parse_shape(&it.next().unwrap_or_else(|| usage())),
            "--max-faults" => cfg.max_faults = parse_num("--max-faults", it.next()),
            "--fault-samples" => cfg.fault_samples = parse_num("--fault-samples", it.next()),
            "--seeds" => cfg.seeds = parse_num("--seeds", it.next()),
            "--max-cycles" => cfg.max_cycles = parse_num("--max-cycles", it.next()),
            "--timeline" => cfg.timeline_at = Some(parse_num("--timeline", it.next())),
            "--recovery" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.timeline_policy =
                    mdx_reconfig::RecoveryPolicy::parse(&v).unwrap_or_else(|| {
                        eprintln!(
                            "error: unknown recovery policy `{v}` (known: drop, reinject, reroute)"
                        );
                        std::process::exit(2);
                    });
            }
            "--workloads" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.workloads = v
                    .split(',')
                    .map(|w| {
                        WorkloadKind::parse(w).unwrap_or_else(|| {
                            eprintln!("error: unknown workload `{w}`");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--jsonl" => jsonl = Some(it.next().unwrap_or_else(|| usage())),
            "--quiet" => quiet = true,
            "--fail-on-deadlock" => fail_on_deadlock = true,
            "--fail-on-loss" => fail_on_loss = true,
            "--metrics" => obs.metrics = true,
            "--attribution" => obs.attribution = true,
            "--flight-recorder" => obs.flight = Some(DEFAULT_FLIGHT_CAPACITY),
            "--postmortem-dir" => postmortem_dir = it.next().unwrap_or_else(|| usage()),
            "--prom" => prom = Some(it.next().unwrap_or_else(|| usage())),
            "--slo" => slo = Some(load_slo(&it.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }

    let scenarios = match enumerate_scenarios(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if !quiet {
        println!(
            "running {} scenarios ({} scheme(s), shape {:?}, max {} fault(s), {} seed(s))...",
            scenarios.len(),
            cfg.schemes.len(),
            cfg.shape,
            cfg.max_faults,
            cfg.seeds
        );
    }
    // With `--prom` the sweep runs metered: rows/sec, per-row run and
    // serialize latency, and worker saturation land in a registry whose
    // exposition is written once at the end.
    let registry = prom.as_ref().map(|_| mdx_metrics::Registry::new());
    let meter = registry.as_ref().map(CampaignMeter::register);
    let result = run_campaign_metered(scenarios, &obs, meter.as_ref());

    if let (Some(path), Some(registry)) = (&prom, &registry) {
        if let Err(e) = std::fs::write(path, registry.snapshot().render_prometheus()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        if !quiet {
            println!("wrote campaign metrics to {path}");
        }
    }

    if let Some(path) = jsonl {
        // With `--slo` every row line gains a `health` verdict section;
        // without it the payload is exactly `to_jsonl()`, byte for byte.
        let payload = match &slo {
            None => result.to_jsonl(),
            Some(spec) => {
                let mut out = String::new();
                for r in &result.reports {
                    let line = serde_json::to_string(r).expect("report serializes");
                    out.push_str(&stamp_health(&line, spec, &report_frame(r)));
                    out.push('\n');
                }
                out
            }
        };
        if let Err(e) = std::fs::write(&path, payload) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        if !quiet {
            println!("wrote {} rows to {path}", result.reports.len());
        }
    }

    print!("{}", result.summary());
    if let Some(spec) = &slo {
        let (line, _) = health_summary(spec, result.reports.iter().map(report_frame));
        print!("{line}");
    }

    // With the flight recorder attached, every failed row auto-dumps its
    // forensic report.
    if obs.flight.is_some() {
        let mut dumped = 0usize;
        for r in result.reports.iter().filter(|r| r.outcome != "completed") {
            let Some(pm) = &r.postmortem else { continue };
            match dump_postmortem(&postmortem_dir, &r.digest, pm) {
                Ok(path) => {
                    dumped += 1;
                    if !quiet {
                        println!("post-mortem [{}]: {path}", pm.classification);
                    }
                }
                Err(e) => {
                    eprintln!("error: cannot write post-mortem for {}: {e}", r.token);
                    return ExitCode::from(1);
                }
            }
        }
        if !quiet && dumped > 0 {
            println!("{dumped} post-mortem(s) written to {postmortem_dir}");
        }
    }

    let deadlocks: Vec<_> = result.deadlocks().collect();
    if !deadlocks.is_empty() && !quiet {
        println!("\ndeadlock witnesses (up to 5, shrink with `campaign shrink <token>`):");
        for r in deadlocks.iter().take(5) {
            println!("  {}  {}", r.scenario, r.token);
        }
    }
    if fail_on_deadlock && !deadlocks.is_empty() {
        eprintln!("error: {} deadlock(s) found", deadlocks.len());
        return ExitCode::from(1);
    }

    // Timeline campaigns: aggregate the epoch-protocol evidence.
    if cfg.timeline_at.is_some() {
        let live: Vec<_> = result
            .reports
            .iter()
            .filter_map(|r| r.reconfig.as_ref())
            .collect();
        let victims: usize = live.iter().map(|rc| rc.victims_total).sum();
        let recovered: usize = live.iter().map(|rc| rc.recovered).sum();
        let lost: usize = live.iter().map(|rc| rc.lost).sum();
        let violations = live.iter().filter(|rc| !rc.transition_safe()).count();
        if !quiet {
            println!(
                "reconfig: {} live row(s), victims {victims} (recovered {recovered}, \
                 lost {lost}), {violations} transition violation(s)",
                live.len()
            );
        }
        if fail_on_loss && (live.is_empty() || lost > 0 || violations > 0) {
            eprintln!(
                "error: reconfig gate failed ({} live rows, {lost} lost, {violations} violations)",
                live.len()
            );
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

fn decode(token: &str) -> Scenario {
    match Scenario::from_token(token) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn cmd_replay(token: &str, args: &[String]) -> ExitCode {
    let scenario = decode(token);
    let mut obs = ObsOptions::default();
    let mut trace_out: Option<String> = None;
    let mut postmortem_dir: Option<String> = None;
    let mut cache_dir = ".mdx-cache".to_string();
    let mut no_cache = false;
    let mut force = false;
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics" => obs.metrics = true,
            "--attribution" => obs.attribution = true,
            "--stall-probe" => obs.stall_probe = Some(parse_num("--stall-probe", it.next())),
            "--trace-out" => {
                trace_out = Some(it.next().unwrap_or_else(|| usage()));
                obs.trace = true;
            }
            "--flight-recorder" => obs.flight = Some(DEFAULT_FLIGHT_CAPACITY),
            "--postmortem-dir" => {
                postmortem_dir = Some(it.next().unwrap_or_else(|| usage()));
                obs.flight.get_or_insert(DEFAULT_FLIGHT_CAPACITY);
            }
            "--cache-dir" => cache_dir = it.next().unwrap_or_else(|| usage()),
            "--no-cache" => no_cache = true,
            "--force" => force = true,
            _ => usage(),
        }
    }
    // Plain replays go through the disk result cache: rows are
    // deterministic per token, so a hit is byte-identical to a re-run.
    // Instrumented replays (any observer flag) always re-simulate — the
    // cache stores only the row, not the full telemetry.
    let cache = (obs.is_none() && !no_cache).then(|| ResultCache::new(1).with_dir(&cache_dir));
    let key = row_key(token, None);
    if let (Some(cache), false) = (&cache, force) {
        if let Some(row) = cache.get(key) {
            let json = serde_json::to_string_pretty(&row).expect("row serializes");
            println!("{json}");
            eprintln!("(cached row from {cache_dir}; --force re-simulates)");
            return ExitCode::SUCCESS;
        }
    }
    match run_scenario_instrumented(&scenario, &obs) {
        Ok((report, telemetry)) => {
            if let Some(cache) = &cache {
                cache.put(key, &report);
            }
            let json = serde_json::to_string_pretty(&report).expect("report serializes");
            println!("{json}");
            if let Some(m) = &telemetry.metrics {
                println!();
                print!(
                    "{}",
                    m.heatmap(telemetry.sxb_name.as_deref(), telemetry.dxb_name.as_deref())
                );
            }
            if let Some(s) = &telemetry.stall {
                println!();
                print!("{}", s.timeline());
            }
            if let Some(att) = &telemetry.attribution {
                println!();
                print!("{}", att.render());
            }
            if let Some(pm) = &telemetry.postmortem {
                println!();
                print!("{}", pm.render());
                if let Some(dir) = &postmortem_dir {
                    match dump_postmortem(dir, &report.digest, pm) {
                        Ok(path) => println!("wrote post-mortem to {path}"),
                        Err(e) => {
                            eprintln!("error: cannot write post-mortem: {e}");
                            return ExitCode::from(1);
                        }
                    }
                }
            } else if obs.flight.is_some() {
                println!("\n(run completed; no post-mortem to report)");
            }
            if let (Some(path), Some(doc)) = (trace_out, &telemetry.trace) {
                if let Err(e) = std::fs::write(&path, doc) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::from(1);
                }
                println!("\nwrote trace to {path} (open at https://ui.perfetto.dev)");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_shrink(token: &str) -> ExitCode {
    let scenario = decode(token);
    match shrink(&scenario) {
        Ok(report) => {
            println!("scenario: {}", report.minimized);
            println!(
                "packets {} -> {}, flits {} -> {}, faults {} -> {}, PEs {} -> {} ({} runs)",
                report.packets.0,
                report.packets.1,
                report.flits.0,
                report.flits.1,
                report.faults.0,
                report.faults.1,
                report.pes.0,
                report.pes.1,
                report.runs
            );
            for step in &report.steps {
                println!("  - {step}");
            }
            println!("cyclic wait at cycle {}:", report.deadlock.detected_at);
            for edge in &report.deadlock.cycle {
                println!(
                    "  {} waits for {} held by {}",
                    edge.waiter, edge.channel, edge.holder
                );
            }
            if let Some(pm) = &report.postmortem {
                println!();
                print!("{}", pm.render());
            }
            println!("minimized token:\n{}", report.token);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = DEFAULT_DIFF_THRESHOLD;
    let mut fail_on_shift = false;
    let mut json = false;
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                // The flag speaks percentage points (like the table).
                let pp: f64 = parse_num("--threshold", it.next());
                threshold = pp / 100.0;
            }
            "--fail-on-shift" => fail_on_shift = true,
            "--json" => json = true,
            _ if !arg.starts_with("--") => paths.push(arg),
            _ => usage(),
        }
    }
    if paths.len() != 2 {
        usage();
    }
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let (a, b) = (read(&paths[0]), read(&paths[1]));
    match diff_attribution(&a, &b, threshold) {
        Ok(d) => {
            if json {
                println!("{}", d.to_json());
            } else {
                print!("{}", d.render());
            }
            if fail_on_shift && !d.is_clean() {
                eprintln!("error: {} phase shift(s) beyond threshold", d.flagged);
                return ExitCode::from(1);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_stream(path: &str, args: &[String]) -> ExitCode {
    let mut shape = vec![4u16, 4];
    let mut scheme = "sr2201".to_string();
    let mut seed = 0u64;
    let mut windows = 100u64;
    let mut max_cycles: Option<u64> = None;
    let mut jsonl: Option<String> = None;
    let mut quiet = false;
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shape" => shape = parse_shape(&it.next().unwrap_or_else(|| usage())),
            "--scheme" => scheme = it.next().unwrap_or_else(|| usage()),
            "--seed" => seed = parse_num("--seed", it.next()),
            "--windows" => windows = parse_num("--windows", it.next()),
            "--max-cycles" => max_cycles = Some(parse_num("--max-cycles", it.next())),
            "--jsonl" => jsonl = Some(it.next().unwrap_or_else(|| usage())),
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }
    if !mdx_core::registry::SCHEME_IDS.contains(&scheme.as_str()) {
        eprintln!(
            "error: unknown scheme `{scheme}` (known: {})",
            mdx_core::registry::SCHEME_IDS.join(", ")
        );
        return ExitCode::from(2);
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let spec = match StreamSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let horizon = spec.horizon;
    let mut scenario = Scenario::new(shape, &scheme, Workload::Stream { spec }, seed);
    // The horizon is the stream's cycle budget: a saturated run ends there
    // as `cycle-limit` instead of draining without bound.
    scenario.max_cycles = max_cycles.unwrap_or(horizon);
    let obs = ObsOptions {
        windows: Some(windows.max(1)),
        ..ObsOptions::default()
    };
    match run_scenario_instrumented(&scenario, &obs) {
        Ok((report, telemetry)) => {
            if let Some(p) = &jsonl {
                let line = serde_json::to_string(&report).expect("report serializes");
                if let Err(e) = std::fs::write(p, format!("{line}\n")) {
                    eprintln!("error: cannot write {p}: {e}");
                    return ExitCode::from(1);
                }
            }
            if quiet {
                println!("{}", report.token);
                return ExitCode::SUCCESS;
            }
            println!("token: {}", report.token);
            println!(
                "outcome: {} ({} offered, {} delivered, {} cycles, mean latency {:.1})",
                report.outcome,
                report.offered,
                report.stats.delivered,
                report.stats.cycles,
                report.stats.mean_latency()
            );
            if let Some(rc) = &report.reconfig {
                println!(
                    "reconfig: {} epoch(s), victims {} (recovered {}, lost {}), transition {}",
                    rc.epochs.len(),
                    rc.victims_total,
                    rc.recovered,
                    rc.lost,
                    if rc.transition_safe() {
                        "safe"
                    } else {
                        "VIOLATED"
                    }
                );
            }
            if let Some(w) = &telemetry.windows {
                println!();
                print!("{}", w.render());
            }
            if let Some(s) = &report.stream {
                match s.saturated_at {
                    Some(at) => println!(
                        "saturation: onset at cycle {at} (delivery ratio {:.3}, peak backlog {})",
                        s.delivery_ratio, s.peak_backlog
                    ),
                    None => println!("saturation: none (delivery ratio {:.3})", s.delivery_ratio),
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_tournament(path: &str, args: &[String]) -> ExitCode {
    let mut jsonl: Option<String> = None;
    let mut quiet = false;
    let mut slo: Option<SloSpec> = None;
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jsonl" => jsonl = Some(it.next().unwrap_or_else(|| usage())),
            "--quiet" => quiet = true,
            "--slo" => slo = Some(load_slo(&it.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }
    // `-` reads the spec from stdin; an empty spec is the default grid.
    let text = if path == "-" {
        use std::io::Read;
        let mut t = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut t) {
            eprintln!("error: cannot read stdin: {e}");
            return ExitCode::from(1);
        }
        t
    } else {
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(1);
            }
        }
    };
    let spec = match TournamentSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let table = run_tournament(&spec);
    if let Some(p) = &jsonl {
        // Executed cells gain a `health` verdict section under `--slo`;
        // skipped cells never ran, so they carry none. Without the flag
        // the payload is exactly `to_jsonl()`.
        let payload = match &slo {
            None => table.to_jsonl(),
            Some(spec) => {
                let mut out = String::new();
                for c in &table.cells {
                    let line = serde_json::to_string(c).expect("cell serializes");
                    if c.status == "ok" {
                        out.push_str(&stamp_health(&line, spec, &cell_frame(c)));
                    } else {
                        out.push_str(&line);
                    }
                    out.push('\n');
                }
                out
            }
        };
        if let Err(e) = std::fs::write(p, payload) {
            eprintln!("error: cannot write {p}: {e}");
            return ExitCode::from(1);
        }
    }
    if quiet {
        let skips = table.cells.iter().filter(|c| c.status != "ok").count();
        println!(
            "{} cells ({} run, {} skipped)",
            table.cells.len(),
            table.cells.len() - skips,
            skips
        );
    } else {
        print!("{}", table.render());
    }
    if let Some(spec) = &slo {
        let (line, _) = health_summary(
            spec,
            table
                .cells
                .iter()
                .filter(|c| c.status == "ok")
                .map(cell_frame),
        );
        print!("{line}");
    }
    ExitCode::SUCCESS
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut cfg = ServeConfig::default();
    let mut tcp: Option<String> = None;
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => tcp = Some(it.next().unwrap_or_else(|| usage())),
            "--workers" => cfg.workers = parse_num("--workers", it.next()),
            "--windows" => cfg.windows = Some(parse_num("--windows", it.next())),
            "--cache-dir" => {
                cfg.cache_dir = Some(it.next().unwrap_or_else(|| usage()).into());
            }
            "--cache-cap" => cfg.cache_capacity = parse_num("--cache-cap", it.next()),
            "--metrics-addr" => {
                cfg.metrics_addr = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--metrics-file" => {
                cfg.metrics_file = Some(it.next().unwrap_or_else(|| usage()).into());
            }
            "--metrics-every" => {
                cfg.metrics_every_secs = parse_num("--metrics-every", it.next());
            }
            "--span-log" => {
                cfg.span_log = Some(it.next().unwrap_or_else(|| usage()).into());
            }
            "--span-sample" => {
                cfg.span_sample = Some(parse_num("--span-sample", it.next()));
            }
            "--slo" => {
                cfg.slo = Some(load_slo(&it.next().unwrap_or_else(|| usage())));
            }
            "--alert-log" => {
                cfg.alert_log = Some(it.next().unwrap_or_else(|| usage()).into());
            }
            "--slo-every" => {
                cfg.slo_every_secs = parse_num("--slo-every", it.next());
            }
            _ => usage(),
        }
    }
    if cfg.alert_log.is_some() && cfg.slo.is_none() {
        eprintln!("error: --alert-log needs --slo FILE");
        return ExitCode::from(2);
    }
    match tcp {
        Some(addr) => {
            let listener = match std::net::TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("error: cannot bind {addr}: {e}");
                    return ExitCode::from(1);
                }
            };
            let workers = cfg.workers;
            match serve_on(&cfg, listener, |a| {
                eprintln!("campaign serve: listening on {a} ({workers} workers)");
            }) {
                Ok(conns) => {
                    eprintln!("campaign serve: stopped after {conns} connection(s)");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(1)
                }
            }
        }
        None => {
            eprintln!("campaign serve: reading stdin ({} workers)", cfg.workers);
            let n = serve_stdio(&cfg);
            eprintln!("campaign serve: answered {n} request(s)");
            ExitCode::SUCCESS
        }
    }
}

/// One watch poll: connect, issue `health` + `stats`, decode both lines.
fn poll_watch(addr: &str) -> std::io::Result<WatchFrame> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    for cmd in ["health", "stats"] {
        let req = Request {
            cmd: cmd.to_string(),
            id: Some(if cmd == "health" { 1 } else { 2 }),
            ..Request::default()
        };
        writeln!(
            writer,
            "{}",
            serde_json::to_string(&req).expect("request serializes")
        )?;
    }
    writer.flush()?;
    let mut frame = WatchFrame::default();
    for _ in 0..2 {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let Ok(resp) = serde_json::from_str::<Response>(line.trim()) else {
            continue;
        };
        match resp.id {
            Some(1) => match resp.health {
                // The report travels as JSON; round-trip it back into the
                // typed form the renderer takes.
                Some(h) => {
                    let text = serde_json::to_string(&h).expect("health serializes");
                    frame.health = serde_json::from_str(&text).ok();
                }
                None => frame.health_error = resp.error,
            },
            Some(2) => frame.stats = resp.stats,
            _ => {}
        }
    }
    Ok(frame)
}

fn cmd_watch(addr: &str, args: &[String]) -> ExitCode {
    let mut interval = 2.0f64;
    let mut count: Option<u64> = None;
    let mut once = false;
    let mut clear = true;
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval" => interval = parse_num("--interval", it.next()),
            "--count" => count = Some(parse_num("--count", it.next())),
            "--once" => once = true,
            "--no-clear" => clear = false,
            _ => usage(),
        }
    }
    if once {
        count = Some(1);
    }
    let mut polled = 0u64;
    loop {
        match poll_watch(addr) {
            Ok(frame) => {
                if clear && count != Some(1) {
                    // Home + clear-to-end keeps a flicker-free live view.
                    print!("\x1b[H\x1b[2J");
                }
                print!("{}", render_watch(&frame));
                use std::io::Write;
                std::io::stdout().flush().ok();
            }
            Err(e) => {
                eprintln!("error: cannot poll {addr}: {e}");
                return ExitCode::from(1);
            }
        }
        polled += 1;
        if let Some(c) = count {
            if polled >= c {
                return ExitCode::SUCCESS;
            }
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval.max(0.1)));
    }
}

fn cmd_spans(path: &str, args: &[String]) -> ExitCode {
    let mut top = 5usize;
    let mut perfetto: Option<String> = None;
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => top = parse_num("--top", it.next()),
            "--perfetto" => perfetto = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let spans = match mdx_obs::parse_span_log(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(1);
        }
    };
    if spans.is_empty() {
        println!("no spans in {path}");
        return ExitCode::SUCCESS;
    }
    print!("{}", mdx_obs::summarize_spans(&spans, top).render());
    if let Some(out) = perfetto {
        let traces = mdx_obs::group_traces(spans);
        let doc = mdx_obs::spans_to_perfetto(&traces);
        if let Err(e) = std::fs::write(&out, doc) {
            eprintln!("error: cannot write {out}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote Perfetto trace to {out} (open at https://ui.perfetto.dev)");
    }
    ExitCode::SUCCESS
}

fn cmd_bench_serve(args: &[String]) -> ExitCode {
    let mut tokens = 100usize;
    let mut hits: Option<usize> = None;
    let mut cfg = ServeConfig::default();
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tokens" => tokens = parse_num("--tokens", it.next()),
            "--hits" => hits = Some(parse_num("--hits", it.next())),
            "--workers" => cfg.workers = parse_num("--workers", it.next()),
            _ => usage(),
        }
    }
    let tokens = tokens.max(1);
    let hits = hits.unwrap_or(tokens);

    let service = Arc::new(Service::new(&cfg));
    let server = Server::new(service.clone(), cfg.workers);
    let sink: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::sink())));
    // Distinct small scenarios: same workload family, distinct seeds, so
    // every token is a genuine simulation on the cold pass.
    let lines: Vec<String> = (0..tokens)
        .map(|i| {
            let s = Scenario::new(
                vec![4, 3],
                "sr2201",
                Workload::BroadcastStorm {
                    sources: vec![i % 12],
                    flits: 4,
                },
                i as u64,
            );
            serde_json::to_string(&Request::run(&s.token()).with_id(i as u64))
                .expect("request serializes")
        })
        .collect();

    let cold_start = Instant::now();
    for line in &lines {
        server.submit(line.clone(), sink.clone());
    }
    server.drain();
    let cold = cold_start.elapsed();

    let hot_start = Instant::now();
    for line in lines.iter().cycle().take(hits) {
        server.submit(line.clone(), sink.clone());
    }
    server.drain();
    let hot = hot_start.elapsed();

    let stats = service.stats();
    server.shutdown();

    println!(
        "bench-serve: {tokens} token(s), {} worker(s)",
        stats.workers
    );
    println!(
        "cold: {:.3}s total, {:.1} tokens/s",
        cold.as_secs_f64(),
        tokens as f64 / cold.as_secs_f64().max(1e-9)
    );
    println!(
        "hot:  {:.3}s total, {:.1} us/hit ({} cache hit(s))",
        hot.as_secs_f64(),
        hot.as_secs_f64() * 1e6 / hits.max(1) as f64,
        stats.cache_hits
    );
    if stats.cache_hits < hits {
        eprintln!(
            "error: expected >= {hits} cache hit(s), saw {} (served {}, errors {})",
            stats.cache_hits, stats.served, stats.errors
        );
        return ExitCode::from(1);
    }
    if stats.errors > 0 {
        eprintln!("error: {} request(s) failed", stats.errors);
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => match args.get(1) {
            Some(t) => cmd_replay(t, &args[2..]),
            None => usage(),
        },
        Some("shrink") => match args.get(1) {
            Some(t) => cmd_shrink(t),
            None => usage(),
        },
        Some("diff") => cmd_diff(&args[1..]),
        Some("stream") => match args.get(1) {
            Some(p) if !p.starts_with("--") => cmd_stream(p, &args[2..]),
            _ => usage(),
        },
        Some("tournament") => match args.get(1) {
            Some(p) if !p.starts_with("--") => cmd_tournament(p, &args[2..]),
            _ => usage(),
        },
        Some("serve") => cmd_serve(&args[1..]),
        Some("watch") => match args.get(1) {
            Some(a) if !a.starts_with("--") => cmd_watch(a, &args[2..]),
            _ => usage(),
        },
        Some("spans") => match args.get(1) {
            Some(p) if !p.starts_with("--") => cmd_spans(p, &args[2..]),
            _ => usage(),
        },
        Some("bench-serve") => cmd_bench_serve(&args[1..]),
        _ => usage(),
    }
}
