//! Service throughput: cold tokens/sec (full simulation per request) and
//! hot cache-hit latency (repeat token answered from the result cache).
//!
//! Both benches drive [`mdx_serve::Service::handle`] directly — no worker
//! threads — so the numbers isolate the per-request dispatch + simulate +
//! cache path from pool scheduling noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdx_campaign::{Scenario, Workload};
use mdx_serve::{Request, ServeConfig, Service};

fn token(seed: u64) -> String {
    Scenario::new(
        vec![4, 3],
        "sr2201",
        Workload::BroadcastStorm {
            sources: vec![(seed as usize) % 12],
            flits: 4,
        },
        seed,
    )
    .token()
}

/// Cold path: every request carries `force`, so each one re-simulates even
/// though the cache fills up — steady-state tokens/sec of the simulate +
/// store pipeline.
fn bench_cold_tokens(c: &mut Criterion) {
    let service = Service::new(&ServeConfig::default());
    let mut group = c.benchmark_group("serve");
    group.throughput(Throughput::Elements(1));
    let mut seed = 0u64;
    group.bench_function("cold_token", |b| {
        b.iter(|| {
            seed += 1;
            let mut req = Request::run(&token(seed));
            req.force = true;
            let resp = service.handle(&req);
            assert!(!resp.is_error());
            resp
        })
    });
    group.finish();
}

/// Hot path: the same token over and over — after the first request every
/// answer is a cache hit, so this is the hit latency a duplicate-token
/// client sees.
fn bench_cache_hit(c: &mut Criterion) {
    let service = Service::new(&ServeConfig::default());
    let req = Request::run(&token(1));
    // Prime the cache so the timed loop is hits only.
    assert!(!service.handle(&req).is_error());
    let mut group = c.benchmark_group("serve");
    group.throughput(Throughput::Elements(1));
    group.bench_with_input(BenchmarkId::new("cache_hit", "warm"), &req, |b, req| {
        b.iter(|| {
            let resp = service.handle(req);
            assert_eq!(resp.cached, Some(true));
            resp
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cold_tokens, bench_cache_hit);
criterion_main!(benches);
