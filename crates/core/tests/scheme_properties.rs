//! Property tests over the whole scheme zoo: for any fixed (header,
//! switch, fault set), a scheme's decision is deterministic — across
//! repeated calls *and* across independently built instances — and every
//! forwarded branch stays below the scheme's declared lane count.
//!
//! These are the two contracts the campaign machinery leans on without
//! checking per call: replay determinism (tokens re-run bit-for-bit) and
//! the engine's `ports = channels x max_vcs` sizing.

use mdx_core::registry::{build_scheme_for, required_topology, SCHEME_IDS};
use mdx_core::{Action, Header, RouteChange};
use mdx_fault::{FaultSet, FaultSite};
use mdx_topology::{Network, Node, NodeId, Shape};
use proptest::prelude::*;

/// The shape each pinned topology uses in this suite (small enough that
/// proptest sweeps cover a meaningful fraction of all cases).
fn shape_for(topology: &str) -> Shape {
    match topology {
        "hypercube" => Shape::new(&[2, 2, 2]).unwrap(),
        "fullmesh" => Shape::new(&[6]).unwrap(),
        _ => Shape::new(&[3, 3]).unwrap(),
    }
}

/// The fault set a case index selects: none, or one router fault.
fn faults_for(shape: &Shape, pick: usize) -> FaultSet {
    match pick % (shape.num_pes() + 1) {
        0 => FaultSet::none(),
        r => FaultSet::single(FaultSite::Router(r - 1)),
    }
}

proptest! {
    #[test]
    fn decisions_are_deterministic_and_lanes_in_range(
        scheme_pick in 0usize..SCHEME_IDS.len(),
        fault_pick in 0usize..64,
        src in 0usize..64,
        dst in 0usize..64,
        rc_bits in 0u8..4,
        node_pick in 0usize..256,
        from_pick in 0usize..8,
    ) {
        let id = SCHEME_IDS[scheme_pick];
        let topology = required_topology(id).unwrap();
        let shape = shape_for(topology);
        let net = Network::build(topology, shape.clone()).unwrap();
        let faults = faults_for(&shape, fault_pick);
        // Schemes needing a valid config can reject a fault set; that is a
        // registry outcome, not a decision, so just skip those cases.
        let Ok(scheme) = build_scheme_for(id, &net, &faults) else {
            return Ok(());
        };
        let twin = build_scheme_for(id, &net, &faults).expect("same inputs build again");

        let n = shape.num_pes();
        let header = Header {
            rc: RouteChange::from_bits(rc_bits).unwrap(),
            src: shape.coord_of(src % n),
            dest: shape.coord_of(dst % n),
        };
        let g = net.graph();
        let at_id = NodeId((node_pick % g.num_nodes()) as u32);
        let at = g.node(at_id);
        // `came_from`: injection (None) or any upstream graph neighbor.
        let incoming = g.incoming(at_id);
        let came_from = if from_pick == 0 || incoming.is_empty() {
            None
        } else {
            let ch = incoming[from_pick % incoming.len()];
            Some(g.node(g.channel(ch).src))
        };

        let a = scheme.decide(at, came_from, &header);
        // Determinism: repeated calls and an independently built twin.
        prop_assert_eq!(&a, &scheme.decide(at, came_from, &header));
        prop_assert_eq!(&a, &twin.decide(at, came_from, &header));

        // Lane bound: every branch of every forward fits the engine's
        // `channels x max_vcs` port array.
        let max_vcs = scheme.max_vcs().max(1);
        if let Action::Forward(branches) = &a {
            for b in branches {
                prop_assert!(
                    b.vc < max_vcs,
                    "{id}: lane {} >= max_vcs {max_vcs}",
                    b.vc
                );
            }
        }
    }
}
