//! The unserialized broadcast of paper Fig. 5 — the strawman the S-XB
//! mechanism exists to fix.
//!
//! *"In broadcast communication, packets are first transmitted to all output
//! ports of one of the XBs in the X dimension at the same time, and then
//! transmitted to all output ports of all XBs in the Y dimension at the same
//! time."* Two such broadcasts started concurrently each acquire some of the
//! Y-dimension crossbars and wait for the rest — cyclic waiting, deadlock.
//!
//! Point-to-point packets route exactly as in [`crate::Sr2201Routing`]'s normal
//! mode (dimension order); there is no fault tolerance here.

use crate::packet::{Header, RouteChange};
use crate::scheme::{Action, Branch, DropReason, Scheme};
use mdx_topology::{Coord, MdCrossbar, Node, XbarRef};
use std::sync::Arc;

/// Dimension-order routing with direct (deadlock-prone) broadcast fan-out.
#[derive(Debug, Clone)]
pub struct NaiveBroadcast {
    net: Arc<MdCrossbar>,
}

impl NaiveBroadcast {
    /// Builds the scheme (fault-free only; this strawman predates the
    /// detour facility).
    pub fn new(net: Arc<MdCrossbar>) -> NaiveBroadcast {
        NaiveBroadcast { net }
    }

    /// The network this scheme routes on.
    pub fn network(&self) -> &MdCrossbar {
        &self.net
    }

    fn coord_of(&self, pe: usize) -> Coord {
        self.net.shape().coord_of(pe)
    }

    fn unicast_router(&self, r: usize, header: &Header) -> Action {
        let c = self.coord_of(r);
        let d = self.net.shape().d();
        match (0..d).find(|&dim| c.get(dim) != header.dest.get(dim)) {
            None => Action::Forward(vec![Branch {
                to: Node::Pe(r),
                header: *header,
                vc: 0,
            }]),
            Some(dim) => Action::Forward(vec![Branch {
                to: Node::Xbar(self.net.xbar_through(c, dim)),
                header: *header,
                vc: 0,
            }]),
        }
    }

    fn broadcast_router(&self, r: usize, came_from: Option<Node>, header: &Header) -> Action {
        let c = self.coord_of(r);
        let d = self.net.shape().d();
        match came_from {
            // Injection: blast into the first-dimension crossbar.
            None | Some(Node::Pe(_)) => Action::Forward(vec![Branch {
                to: Node::Xbar(self.net.xbar_through(c, 0)),
                header: *header,
                vc: 0,
            }]),
            Some(Node::Xbar(xb)) => {
                // Deliver locally, fan out to every later dimension.
                let k = xb.dim as usize;
                let mut branches = vec![Branch {
                    to: Node::Pe(r),
                    header: *header,
                    vc: 0,
                }];
                for dim in k + 1..d {
                    branches.push(Branch {
                        to: Node::Xbar(self.net.xbar_through(c, dim)),
                        header: *header,
                        vc: 0,
                    });
                }
                Action::Forward(branches)
            }
            Some(Node::Router(_)) => Action::Drop(DropReason::ProtocolViolation),
        }
    }

    fn xbar(&self, xb: XbarRef, came_from: Option<Node>, header: &Header) -> Action {
        let in_coord = match came_from {
            Some(Node::Router(rin)) => self.coord_of(rin),
            _ => return Action::Drop(DropReason::ProtocolViolation),
        };
        let dim = xb.dim as usize;
        match header.rc {
            RouteChange::Normal => Action::Forward(vec![Branch {
                to: Node::Router(
                    self.net
                        .shape()
                        .index_of(in_coord.with(dim, header.dest.get(dim))),
                ),
                header: *header,
                vc: 0,
            }]),
            RouteChange::Broadcast => {
                // All output ports at the same time — including back to the
                // entry router when this is the source's own first-dimension
                // crossbar (dim 0), so the source row is fully covered.
                let extent = self.net.shape().extent(dim);
                let entry = in_coord.get(dim);
                let branches: Vec<Branch> = (0..extent)
                    .filter(|&p| dim == 0 || p != entry)
                    .map(|p| Branch {
                        to: Node::Router(self.net.shape().index_of(in_coord.with(dim, p))),
                        header: *header,
                        vc: 0,
                    })
                    .collect();
                Action::Forward(branches)
            }
            _ => Action::Drop(DropReason::ProtocolViolation),
        }
    }
}

impl Scheme for NaiveBroadcast {
    fn name(&self) -> String {
        "naive broadcast (fig5)".to_string()
    }

    fn decide(&self, at: Node, came_from: Option<Node>, header: &Header) -> Action {
        match at {
            Node::Pe(p) => match came_from {
                None => Action::Forward(vec![Branch {
                    to: Node::Router(p),
                    header: *header,
                    vc: 0,
                }]),
                Some(Node::Router(_)) => Action::Deliver,
                Some(_) => Action::Drop(DropReason::ProtocolViolation),
            },
            Node::Router(r) => match header.rc {
                RouteChange::Normal => self.unicast_router(r, header),
                RouteChange::Broadcast => self.broadcast_router(r, came_from, header),
                _ => Action::Drop(DropReason::ProtocolViolation),
            },
            Node::Xbar(xb) => self.xbar(xb, came_from, header),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_topology::Shape;

    fn scheme() -> NaiveBroadcast {
        NaiveBroadcast::new(Arc::new(MdCrossbar::build(Shape::fig2())))
    }

    fn bc_header(src: Coord) -> Header {
        Header {
            rc: RouteChange::Broadcast,
            dest: src,
            src,
        }
    }

    #[test]
    fn broadcast_starts_in_own_row() {
        let s = scheme();
        let src = Coord::new(&[2, 1]);
        let r = Shape::fig2().index_of(src);
        let h = bc_header(src);
        match s.decide(Node::Router(r), Some(Node::Pe(r)), &h) {
            Action::Forward(b) => {
                assert_eq!(b.len(), 1);
                assert_eq!(b[0].to, Node::Xbar(XbarRef { dim: 0, line: 1 }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn x_xbar_fans_to_all_ports() {
        // "transmitted to all output ports ... at the same time" — 4 ports
        // on a row crossbar, entry included.
        let s = scheme();
        let src = Coord::new(&[2, 1]);
        let r = Shape::fig2().index_of(src);
        let h = bc_header(src);
        match s.decide(
            Node::Xbar(XbarRef { dim: 0, line: 1 }),
            Some(Node::Router(r)),
            &h,
        ) {
            Action::Forward(b) => assert_eq!(b.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn y_xbar_excludes_entry() {
        let s = scheme();
        let src = Coord::new(&[2, 1]);
        let h = bc_header(src);
        let entry = Shape::fig2().index_of(Coord::new(&[0, 1]));
        match s.decide(
            Node::Xbar(XbarRef { dim: 1, line: 0 }),
            Some(Node::Router(entry)),
            &h,
        ) {
            Action::Forward(b) => {
                assert_eq!(b.len(), 2); // 3 rows minus the entry
                for br in b {
                    assert_ne!(br.to, Node::Router(entry));
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unicast_still_dimension_order() {
        let s = scheme();
        let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[3, 2]));
        match s.decide(Node::Router(0), Some(Node::Pe(0)), &h) {
            Action::Forward(b) => {
                assert_eq!(b[0].to, Node::Xbar(XbarRef { dim: 0, line: 0 }))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn no_serializing_node() {
        assert_eq!(scheme().serializing_node(), None);
        assert!(scheme().emission(&bc_header(Coord::ORIGIN)).is_empty());
    }
}
