//! The per-switch routing decision interface.
//!
//! A routing scheme is *distributed*: the simulator asks it, switch by
//! switch, what a header arriving on a given input should do. The scheme may
//! consult only what the hardware has — the header, the identity of the
//! switch and input port, the global routing configuration (set up by the
//! service processor), and the switch's own neighbor fault registers.

use crate::packet::Header;
use mdx_topology::Node;
use serde::{Deserialize, Serialize};

/// One output branch of a forwarding decision: the neighbor node the packet
/// goes to, with the (possibly rewritten) header it carries from here on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Branch {
    /// Neighbor switch to forward to (must be adjacent in the graph).
    pub to: Node,
    /// Header after this switch's rewrite (RC-bit changes happen here).
    pub header: Header,
    /// Virtual channel lane on the physical link (0 unless the scheme uses
    /// virtual channels; must be < [`Scheme::max_vcs`]). The SR2201 schemes
    /// use a single lane — the paper's whole point is that the crossbar
    /// topology plus serialization needs no VCs; the torus baseline uses
    /// two (the classic dateline scheme).
    pub vc: u8,
}

impl Branch {
    /// A branch on virtual channel 0.
    pub fn new(to: Node, header: Header) -> Branch {
        Branch { to, header, vc: 0 }
    }

    /// A branch on a specific virtual channel lane.
    pub fn on_vc(to: Node, header: Header, vc: u8) -> Branch {
        Branch { to, header, vc }
    }
}

/// Why a scheme refused to forward a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The destination PE (or its router) is out of service.
    DestinationFaulty,
    /// No non-faulty neighbor exists to carry the packet onward.
    NoUsablePath,
    /// The scheme was asked to route from a switch it can never visit
    /// (internal error surfaced for diagnosis rather than panicking mid-sim).
    ProtocolViolation,
    /// The packet was in flight when a component on its path failed
    /// mid-run, and the active recovery policy chose not to replay it
    /// (or replay was impossible, e.g. the source PE died with it).
    FaultVictim,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DropReason::DestinationFaulty => write!(f, "destination out of service"),
            DropReason::NoUsablePath => write!(f, "no usable path"),
            DropReason::ProtocolViolation => write!(f, "routing protocol violation"),
            DropReason::FaultVictim => write!(f, "in flight at fault activation"),
        }
    }
}

/// The decision a switch makes for an arriving header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Sink the packet at this PE.
    Deliver,
    /// Forward along one or more branches. Point-to-point packets always
    /// produce exactly one branch; broadcast packets may fan out to several
    /// (a local delivery is a branch to the switch's own PE node), and under
    /// cut-through the packet streams only once *all* branch channels are
    /// acquired (which is what makes Fig. 5 deadlock).
    Forward(Vec<Branch>),
    /// This switch is the serializing crossbar and the packet is a broadcast
    /// request: absorb it into the serialization queue. The simulator will
    /// later re-emit it via [`Scheme::emission`].
    Gather,
    /// The packet cannot be routed.
    Drop(DropReason),
}

/// A distributed routing scheme over the multi-dimensional crossbar.
pub trait Scheme: Send + Sync {
    /// Short human-readable name for reports.
    fn name(&self) -> String;

    /// Number of virtual channel lanes the scheme uses per physical link.
    /// The simulator shares each physical link's bandwidth (one flit per
    /// cycle) among its lanes and gives each lane its own buffer and port
    /// arbitration.
    fn max_vcs(&self) -> u8 {
        1
    }

    /// The decision for `header` arriving at switch `at` from neighbor
    /// `came_from` (`None` when the packet is being injected at its source
    /// PE).
    fn decide(&self, at: Node, came_from: Option<Node>, header: &Header) -> Action;

    /// The node (if any) that gathers and serializes broadcast requests —
    /// the S-XB. The simulator runs the serialization queue for this node.
    fn serializing_node(&self) -> Option<Node> {
        None
    }

    /// The crossbar (if any) where detoured packets (RC=3) reset to normal
    /// routing — the D-XB. Purely informational: telemetry uses it to label
    /// per-crossbar utilization; the engine never consults it.
    fn detour_node(&self) -> Option<Node> {
        None
    }

    /// The branches on which the serializing crossbar re-emits a gathered
    /// broadcast request (paper Fig. 6, step 2: *"the S-XB changes the RC
    /// bit from 'broadcast request' to 'broadcast', then transmits the
    /// packets one-by-one in order of arrival to all PEs connected to the
    /// S-XB"*).
    fn emission(&self, header: &Header) -> Vec<Branch> {
        let _ = header;
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_reason_display() {
        assert_eq!(
            DropReason::DestinationFaulty.to_string(),
            "destination out of service"
        );
        assert_eq!(DropReason::NoUsablePath.to_string(), "no usable path");
    }
}
