//! Contention-free route walkers.
//!
//! These execute a scheme's per-switch decisions over the network graph
//! without modeling time or channel occupancy — they answer *where a packet
//! goes*, not *when*. Every hop is validated against the channel graph, so a
//! scheme that tries to forward between non-adjacent switches is caught
//! immediately. The cycle-level behavior (blocking, deadlock) lives in
//! `mdx-sim`.

use crate::packet::{Header, RouteChange};
use crate::scheme::{Action, DropReason, Scheme};
use mdx_topology::{NetworkGraph, Node};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One hop of a traced route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// The switch the packet arrived at.
    pub node: Node,
    /// The RC field of the header as it arrived there.
    pub rc: RouteChange,
}

/// Why a trace could not complete.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceError {
    /// The scheme dropped the packet.
    Dropped(DropReason),
    /// A branch pointed at a switch that is not a graph neighbor (scheme
    /// bug).
    NotAdjacent {
        /// Switch the decision was made at.
        from: String,
        /// Requested (non-adjacent) target.
        to: String,
    },
    /// A unicast decision produced zero or several branches.
    NotUnicast(usize),
    /// The walk exceeded the hop budget — a routing livelock.
    Livelock,
    /// A `Gather` occurred somewhere other than the scheme's serializing
    /// node, or during a unicast trace.
    UnexpectedGather,
    /// `Deliver` fired away from a PE node.
    BadDeliver,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Dropped(r) => write!(f, "dropped: {r}"),
            TraceError::NotAdjacent { from, to } => {
                write!(f, "scheme forwarded from {from} to non-neighbor {to}")
            }
            TraceError::NotUnicast(n) => write!(f, "unicast produced {n} branches"),
            TraceError::Livelock => write!(f, "hop budget exceeded (livelock)"),
            TraceError::UnexpectedGather => write!(f, "unexpected gather"),
            TraceError::BadDeliver => write!(f, "deliver away from a PE"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A completed point-to-point route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnicastTrace {
    /// Every switch visited, source PE first, destination PE last.
    pub steps: Vec<TraceStep>,
}

impl UnicastTrace {
    /// Number of shared-crossbar traversals (the paper counts distance in
    /// crossbar hops).
    pub fn xbar_hops(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.node, Node::Xbar(_)))
            .count()
    }

    /// Whether the route ever entered detour mode.
    pub fn used_detour(&self) -> bool {
        self.steps.iter().any(|s| s.rc == RouteChange::Detour)
    }

    /// The visited nodes.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        self.steps.iter().map(|s| s.node)
    }

    /// Renders the route like the paper's step lists
    /// (`PE1 -> R1 -> X0-XB -> ...`).
    pub fn pretty(&self) -> String {
        self.steps
            .iter()
            .map(|s| match s.rc {
                RouteChange::Normal => s.node.to_string(),
                rc => format!("{}[{}]", s.node, rc),
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Budget generous enough for any legal route (normal <= 3d+3 hops, detour
/// adds at most one full extra traversal) while catching livelocks fast.
fn hop_budget(g: &NetworkGraph) -> usize {
    64 + 4 * g.num_nodes().min(4096)
}

/// Walks a point-to-point packet from `src_pe` under `scheme`.
pub fn trace_unicast(
    scheme: &dyn Scheme,
    g: &NetworkGraph,
    header: Header,
    src_pe: usize,
) -> Result<UnicastTrace, TraceError> {
    let mut at = Node::Pe(src_pe);
    let mut came_from: Option<Node> = None;
    let mut h = header;
    let mut steps = vec![TraceStep { node: at, rc: h.rc }];
    let budget = hop_budget(g);
    for _ in 0..budget {
        match scheme.decide(at, came_from, &h) {
            Action::Deliver => {
                if matches!(at, Node::Pe(_)) {
                    return Ok(UnicastTrace { steps });
                }
                return Err(TraceError::BadDeliver);
            }
            Action::Forward(branches) => {
                if branches.len() != 1 {
                    return Err(TraceError::NotUnicast(branches.len()));
                }
                let b = branches[0];
                check_adjacent(g, at, b.to)?;
                came_from = Some(at);
                at = b.to;
                h = b.header;
                steps.push(TraceStep { node: at, rc: h.rc });
            }
            Action::Gather => return Err(TraceError::UnexpectedGather),
            Action::Drop(r) => return Err(TraceError::Dropped(r)),
        }
    }
    Err(TraceError::Livelock)
}

fn check_adjacent(g: &NetworkGraph, from: Node, to: Node) -> Result<(), TraceError> {
    let (Some(a), Some(b)) = (g.id_of(from), g.id_of(to)) else {
        return Err(TraceError::NotAdjacent {
            from: from.to_string(),
            to: to.to_string(),
        });
    };
    if g.channel_between(a, b).is_none() {
        return Err(TraceError::NotAdjacent {
            from: from.to_string(),
            to: to.to_string(),
        });
    }
    Ok(())
}

/// A completed broadcast fan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastTrace {
    /// PEs that received the packet, in visit order.
    pub delivered: Vec<usize>,
    /// Every (from, to) switch edge the broadcast crossed.
    pub edges: Vec<(Node, Node)>,
    /// Whether the packet passed through the serializing crossbar.
    pub gathered: bool,
    /// PEs delivered more than once (always empty for a correct scheme).
    pub duplicates: Vec<usize>,
}

/// Walks a broadcast from `src_pe`: injects an RC=1 request for schemes with
/// a serializing node (following the gather/emission protocol), or an RC=2
/// packet for direct schemes like [`crate::NaiveBroadcast`].
pub fn trace_broadcast(
    scheme: &dyn Scheme,
    g: &NetworkGraph,
    src_pe: usize,
    src_coord: mdx_topology::Coord,
) -> Result<BroadcastTrace, TraceError> {
    let header = if scheme.serializing_node().is_some() {
        Header::broadcast_request(src_coord)
    } else {
        Header {
            rc: RouteChange::Broadcast,
            dest: src_coord,
            src: src_coord,
        }
    };
    let mut delivered = Vec::new();
    let mut duplicates = Vec::new();
    let mut seen_pe = std::collections::HashSet::new();
    let mut edges = Vec::new();
    let mut gathered = false;
    let mut queue: VecDeque<(Node, Option<Node>, Header)> = VecDeque::new();
    queue.push_back((Node::Pe(src_pe), None, header));
    let budget = 8 * g.num_channels() + 64;
    let mut visits = 0usize;
    while let Some((at, came_from, h)) = queue.pop_front() {
        visits += 1;
        if visits > budget {
            return Err(TraceError::Livelock);
        }
        match scheme.decide(at, came_from, &h) {
            Action::Deliver => match at {
                Node::Pe(p) => {
                    if seen_pe.insert(p) {
                        delivered.push(p);
                    } else {
                        duplicates.push(p);
                    }
                }
                _ => return Err(TraceError::BadDeliver),
            },
            Action::Forward(branches) => {
                for b in branches {
                    check_adjacent(g, at, b.to)?;
                    edges.push((at, b.to));
                    queue.push_back((b.to, Some(at), b.header));
                }
            }
            Action::Gather => {
                if Some(at) != scheme.serializing_node() || gathered {
                    return Err(TraceError::UnexpectedGather);
                }
                gathered = true;
                for b in scheme.emission(&h) {
                    check_adjacent(g, at, b.to)?;
                    edges.push((at, b.to));
                    queue.push_back((b.to, Some(at), b.header));
                }
            }
            // A leaf with a faulty PE is a silent non-delivery, not an
            // error.
            Action::Drop(DropReason::DestinationFaulty) => {}
            Action::Drop(r) => return Err(TraceError::Dropped(r)),
        }
    }
    Ok(BroadcastTrace {
        delivered,
        edges,
        gathered,
        duplicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NaiveBroadcast, Sr2201Routing};
    use mdx_fault::{enumerate_single_faults, FaultSet, FaultSite};
    use mdx_topology::{Coord, MdCrossbar, Shape};
    use std::sync::Arc;

    fn net() -> Arc<MdCrossbar> {
        Arc::new(MdCrossbar::build(Shape::fig2()))
    }

    fn sr2201(faults: &FaultSet) -> Sr2201Routing {
        Sr2201Routing::new(net(), faults).unwrap()
    }

    #[test]
    fn fault_free_unicast_all_pairs() {
        let s = sr2201(&FaultSet::none());
        let shape = Shape::fig2();
        for src in 0..12 {
            for dst in 0..12 {
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                let t = trace_unicast(&s, s.network().graph(), h, src).unwrap();
                assert_eq!(t.steps.last().unwrap().node, Node::Pe(dst));
                assert_eq!(
                    t.xbar_hops(),
                    shape.xbar_hops(shape.coord_of(src), shape.coord_of(dst))
                );
                assert!(!t.used_detour());
            }
        }
    }

    #[test]
    fn fig8_detour_route_matches_paper() {
        // Fig. 8 (0-indexed): source (0,0), destination (1,1), faulty router
        // (1,0). Steps: source row crossbar detects the faulty exit, detours
        // to (2,0), crosses its Y crossbar to the D-row, passes the D-XB
        // (which resets RC), then X-Y routes to the destination.
        let shape = Shape::fig2();
        let faulty = shape.index_of(Coord::new(&[1, 0]));
        let s = sr2201(&FaultSet::single(FaultSite::Router(faulty)));
        let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 1]));
        let t = trace_unicast(&s, s.network().graph(), h, 0).unwrap();
        assert!(t.used_detour(), "route: {}", t.pretty());
        assert_eq!(
            t.steps.last().unwrap().node,
            Node::Pe(shape.index_of(Coord::new(&[1, 1])))
        );
        // The D-XB (= S-XB) must appear on the route.
        let dxb = Node::Xbar(s.config().dxb());
        assert!(t.nodes().any(|n| n == dxb), "route: {}", t.pretty());
        // After the D-XB the RC field is back to normal.
        let pos = t.steps.iter().position(|st| st.node == dxb).unwrap();
        assert_eq!(t.steps[pos].rc, RouteChange::Detour);
        for st in &t.steps[pos + 1..] {
            assert_eq!(st.rc, RouteChange::Normal, "route: {}", t.pretty());
        }
    }

    #[test]
    fn all_single_faults_all_pairs_delivered() {
        // The facility's core guarantee: under any single fault, every
        // usable pair is still delivered (matching graph reachability).
        let network = net();
        let shape = network.shape().clone();
        for site in enumerate_single_faults(&network) {
            let faults = FaultSet::single(site);
            let s = Sr2201Routing::new(network.clone(), &faults).unwrap();
            for src in 0..12 {
                for dst in 0..12 {
                    if src == dst || !faults.pe_usable(src) || !faults.pe_usable(dst) {
                        continue;
                    }
                    let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                    let t = trace_unicast(&s, network.graph(), h, src)
                        .unwrap_or_else(|e| panic!("{site}: {src}->{dst}: {e}"));
                    assert_eq!(t.steps.last().unwrap().node, Node::Pe(dst));
                }
            }
        }
    }

    #[test]
    fn detour_routes_pass_the_dxb() {
        // Whenever a route detours, it must pass the D-XB — the serialization
        // property the deadlock-freedom argument rests on.
        let network = net();
        let shape = network.shape().clone();
        for site in enumerate_single_faults(&network) {
            let faults = FaultSet::single(site);
            let s = Sr2201Routing::new(network.clone(), &faults).unwrap();
            let dxb = Node::Xbar(s.config().dxb());
            for src in 0..12 {
                for dst in 0..12 {
                    if src == dst || !faults.pe_usable(src) || !faults.pe_usable(dst) {
                        continue;
                    }
                    let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                    let t = trace_unicast(&s, network.graph(), h, src).unwrap();
                    if t.used_detour() {
                        assert!(t.nodes().any(|n| n == dxb), "{site}: {}", t.pretty());
                    }
                }
            }
        }
    }

    #[test]
    fn sxb_broadcast_delivers_everywhere_once() {
        let s = sr2201(&FaultSet::none());
        let shape = Shape::fig2();
        for src in 0..12 {
            let t = trace_broadcast(&s, s.network().graph(), src, shape.coord_of(src)).unwrap();
            assert!(t.gathered);
            assert_eq!(t.delivered.len(), 12, "src {src}");
            assert!(t.duplicates.is_empty(), "src {src}: {:?}", t.duplicates);
        }
    }

    #[test]
    fn naive_broadcast_delivers_everywhere_once() {
        // Contention-free, the naive fan-out also covers everyone — its
        // problem is deadlock under concurrency, not coverage.
        let n = NaiveBroadcast::new(net());
        let shape = Shape::fig2();
        for src in 0..12 {
            let t = trace_broadcast(&n, n.network().graph(), src, shape.coord_of(src)).unwrap();
            assert!(!t.gathered);
            assert_eq!(t.delivered.len(), 12);
            assert!(t.duplicates.is_empty());
        }
    }

    #[test]
    fn broadcast_under_any_single_fault_covers_survivors() {
        let network = net();
        let shape = network.shape().clone();
        for site in enumerate_single_faults(&network) {
            let faults = FaultSet::single(site);
            let s = Sr2201Routing::new(network.clone(), &faults).unwrap();
            for src in 0..12 {
                if !faults.pe_usable(src) {
                    continue;
                }
                let t = trace_broadcast(&s, network.graph(), src, shape.coord_of(src))
                    .unwrap_or_else(|e| panic!("{site}, src {src}: {e}"));
                let expect: Vec<usize> = (0..12).filter(|&p| faults.pe_usable(p)).collect();
                let mut got = t.delivered.clone();
                got.sort_unstable();
                assert_eq!(got, expect, "{site}, src {src}");
                assert!(t.duplicates.is_empty(), "{site}, src {src}");
            }
        }
    }

    #[test]
    fn broadcast_request_is_y_then_x_fanout() {
        // The paper's Y-X-Y shape: a request from (2,2) must not use any
        // X-dimension crossbar other than the S-XB.
        let s = sr2201(&FaultSet::none());
        let shape = Shape::fig2();
        let src = shape.index_of(Coord::new(&[2, 2]));
        let t = trace_broadcast(&s, s.network().graph(), src, Coord::new(&[2, 2])).unwrap();
        let sxb = s.config().sxb();
        for (a, b) in &t.edges {
            for n in [a, b] {
                if let Node::Xbar(x) = n {
                    if x.dim == 0 {
                        assert_eq!(*x, sxb, "unexpected X crossbar {x} in broadcast");
                    }
                }
            }
        }
    }

    #[test]
    fn three_dimensional_broadcast_and_unicast() {
        let network = Arc::new(MdCrossbar::build(Shape::new(&[4, 3, 2]).unwrap()));
        let shape = network.shape().clone();
        let s = Sr2201Routing::new(network.clone(), &FaultSet::none()).unwrap();
        // Unicast across all three dimensions.
        let h = Header::unicast(shape.coord_of(0), shape.coord_of(23));
        let t = trace_unicast(&s, network.graph(), h, 0).unwrap();
        assert_eq!(t.xbar_hops(), 3);
        // Broadcast covers all 24 PEs exactly once.
        let t = trace_broadcast(&s, network.graph(), 5, shape.coord_of(5)).unwrap();
        assert_eq!(t.delivered.len(), 24);
        assert!(t.duplicates.is_empty());
    }

    #[test]
    fn three_dimensional_single_faults_delivered() {
        let network = Arc::new(MdCrossbar::build(Shape::new(&[3, 3, 2]).unwrap()));
        let shape = network.shape().clone();
        let n = shape.num_pes();
        for site in enumerate_single_faults(&network) {
            let faults = FaultSet::single(site);
            let s = Sr2201Routing::new(network.clone(), &faults).unwrap();
            for src in 0..n {
                if !faults.pe_usable(src) {
                    continue;
                }
                // Broadcast coverage.
                let t = trace_broadcast(&s, network.graph(), src, shape.coord_of(src))
                    .unwrap_or_else(|e| panic!("{site}, bc src {src}: {e}"));
                assert_eq!(
                    t.delivered.len(),
                    (0..n).filter(|&p| faults.pe_usable(p)).count(),
                    "{site}, src {src}"
                );
                // Unicast delivery.
                for dst in 0..n {
                    if src == dst || !faults.pe_usable(dst) {
                        continue;
                    }
                    let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                    let t = trace_unicast(&s, network.graph(), h, src)
                        .unwrap_or_else(|e| panic!("{site}: {src}->{dst}: {e}"));
                    assert_eq!(t.steps.last().unwrap().node, Node::Pe(dst));
                }
            }
        }
    }

    #[test]
    fn four_and_five_dimensional_networks_route_and_broadcast() {
        // The schemes are d-generic; exercise d=4 and d=5 (hypercube-like
        // extents) end to end.
        for dims in [&[2u16, 2, 2, 2][..], &[2, 2, 2, 2, 2]] {
            let network = Arc::new(MdCrossbar::build(Shape::new(dims).unwrap()));
            let shape = network.shape().clone();
            let n = shape.num_pes();
            let s = Sr2201Routing::new(network.clone(), &FaultSet::none()).unwrap();
            // Farthest pair crosses every dimension.
            let h = Header::unicast(shape.coord_of(0), shape.coord_of(n - 1));
            let t = trace_unicast(&s, network.graph(), h, 0).unwrap();
            assert_eq!(t.xbar_hops(), dims.len());
            // Broadcast covers all PEs once.
            let bt = trace_broadcast(&s, network.graph(), 1, shape.coord_of(1)).unwrap();
            assert_eq!(bt.delivered.len(), n);
            assert!(bt.duplicates.is_empty());
            // Fault tolerance still holds with a mid-lattice router fault.
            let faults = FaultSet::single(FaultSite::Router(n / 2));
            let s = Sr2201Routing::new(network.clone(), &faults).unwrap();
            for src in 0..n {
                if !faults.pe_usable(src) {
                    continue;
                }
                for dst in 0..n {
                    if src == dst || !faults.pe_usable(dst) {
                        continue;
                    }
                    let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                    let t = trace_unicast(&s, network.graph(), h, src)
                        .unwrap_or_else(|e| panic!("{dims:?} {src}->{dst}: {e}"));
                    assert_eq!(t.steps.last().unwrap().node, Node::Pe(dst));
                }
            }
        }
    }

    #[test]
    fn dropped_packets_report_reason() {
        let shape = Shape::fig2();
        let faulty = shape.index_of(Coord::new(&[1, 1]));
        let s = sr2201(&FaultSet::single(FaultSite::Router(faulty)));
        let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 1]));
        match trace_unicast(&s, s.network().graph(), h, 0) {
            Err(TraceError::Dropped(DropReason::DestinationFaulty)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
