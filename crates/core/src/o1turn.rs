//! Extension: O1TURN-style two-order routing on the MD crossbar.
//!
//! The load-latency experiments record an honest negative for pure
//! dimension-order routing: a transpose permutation funnels every packet of
//! row *y* through the single router *(y, y)*. The classic remedy (Seo et
//! al., *Near-Optimal Worst-Case Throughput Routing for Two-Dimensional
//! Mesh Networks*, ISCA'05 — the "O1TURN" scheme) applies directly to the
//! MD crossbar: each packet picks one of the two dimension orders (X-Y or
//! Y-X) pseudo-randomly at injection, and each order runs on its own
//! virtual lane, so both sub-networks remain dimension-ordered and the
//! union stays deadlock-free.
//!
//! This is *not* in the paper — it is the kind of facility its Sec. 6
//! ("improve this facility") invites — so it lives in its own module,
//! supports point-to-point traffic only, and is exercised by the
//! `ext-adaptive-order` experiment.

use crate::packet::{Header, RouteChange};
use crate::scheme::{Action, Branch, DropReason, Scheme};
use mdx_topology::{Coord, MdCrossbar, Node, XbarRef};
use std::sync::Arc;

/// Two-order (X-Y / Y-X) routing with one virtual lane per order.
#[derive(Debug, Clone)]
pub struct O1TurnRouting {
    net: Arc<MdCrossbar>,
    seed: u64,
}

impl O1TurnRouting {
    /// Builds the scheme; `seed` diversifies the per-packet order choice.
    pub fn new(net: Arc<MdCrossbar>, seed: u64) -> O1TurnRouting {
        O1TurnRouting { net, seed }
    }

    /// The network this scheme routes on.
    pub fn network(&self) -> &MdCrossbar {
        &self.net
    }

    /// The dimension order a packet uses, derived deterministically from
    /// its header (the hardware would carry one spare header bit; deriving
    /// it keeps [`Header`] at the paper's format). Order 0 is ascending
    /// dimensions (X-Y-...), order 1 descending (...-Y-X).
    pub fn order_of(&self, header: &Header) -> usize {
        let mut x = self.seed;
        for dim in 0..self.net.shape().d() {
            x ^= (header.src.get(dim) as u64) << (8 * dim);
            x ^= (header.dest.get(dim) as u64) << (8 * dim + 32);
        }
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((x >> 32) & 1) as usize
    }

    fn dims(&self, order: usize) -> Vec<usize> {
        let d = self.net.shape().d();
        if order == 0 {
            (0..d).collect()
        } else {
            (0..d).rev().collect()
        }
    }

    fn route_router(&self, r: usize, header: &Header) -> Action {
        let shape = self.net.shape();
        let c = shape.coord_of(r);
        let order = self.order_of(header);
        match c.first_diff(&header.dest, &self.dims(order)) {
            None => Action::Forward(vec![Branch::new(Node::Pe(r), *header)]),
            Some(dim) => Action::Forward(vec![Branch::on_vc(
                Node::Xbar(self.net.xbar_through(c, dim)),
                *header,
                order as u8,
            )]),
        }
    }

    fn route_xbar(&self, xb: XbarRef, in_coord: Coord, header: &Header) -> Action {
        let dim = xb.dim as usize;
        let exit = in_coord.with(dim, header.dest.get(dim));
        Action::Forward(vec![Branch::on_vc(
            Node::Router(self.net.shape().index_of(exit)),
            *header,
            self.order_of(header) as u8,
        )])
    }
}

impl Scheme for O1TurnRouting {
    fn name(&self) -> String {
        "o1turn two-order (extension)".to_string()
    }

    fn max_vcs(&self) -> u8 {
        2
    }

    fn decide(&self, at: Node, came_from: Option<Node>, header: &Header) -> Action {
        if header.rc != RouteChange::Normal {
            // Broadcast/detour interplay with two orders would reintroduce
            // exactly the multi-turn hazards the paper removes; out of
            // scope for this extension.
            return Action::Drop(DropReason::ProtocolViolation);
        }
        match at {
            Node::Pe(p) => match came_from {
                None => Action::Forward(vec![Branch::new(Node::Router(p), *header)]),
                Some(Node::Router(_)) => Action::Deliver,
                Some(_) => Action::Drop(DropReason::ProtocolViolation),
            },
            Node::Router(r) => self.route_router(r, header),
            Node::Xbar(xb) => match came_from {
                Some(Node::Router(rin)) => {
                    self.route_xbar(xb, self.net.shape().coord_of(rin), header)
                }
                _ => Action::Drop(DropReason::ProtocolViolation),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_unicast;
    use mdx_topology::Shape;

    fn scheme() -> O1TurnRouting {
        O1TurnRouting::new(Arc::new(MdCrossbar::build(Shape::new(&[4, 4]).unwrap())), 7)
    }

    #[test]
    fn all_pairs_delivered_minimally() {
        let s = scheme();
        let shape = s.network().shape().clone();
        for src in 0..16 {
            for dst in 0..16 {
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                let t = trace_unicast(&s, s.network().graph(), h, src).unwrap();
                assert_eq!(t.steps.last().unwrap().node, Node::Pe(dst));
                assert_eq!(
                    t.xbar_hops(),
                    shape.xbar_hops(shape.coord_of(src), shape.coord_of(dst))
                );
            }
        }
    }

    #[test]
    fn both_orders_occur() {
        let s = scheme();
        let shape = s.network().shape().clone();
        let mut orders = [0usize; 2];
        for src in 0..16 {
            for dst in 0..16 {
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                orders[s.order_of(&h)] += 1;
            }
        }
        assert!(orders[0] > 40 && orders[1] > 40, "{orders:?}");
    }

    #[test]
    fn order_choice_is_per_packet_consistent() {
        // Every switch must agree on a packet's order: the derivation only
        // reads immutable header fields.
        let s = scheme();
        let h = Header::unicast(Coord::new(&[0, 1]), Coord::new(&[3, 2]));
        let o = s.order_of(&h);
        for _ in 0..10 {
            assert_eq!(s.order_of(&h), o);
        }
    }

    #[test]
    fn lane_matches_order() {
        let s = scheme();
        let shape = s.network().shape().clone();
        for src in 0..16 {
            for dst in 0..16 {
                if src == dst {
                    continue;
                }
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                let order = s.order_of(&h) as u8;
                match s.decide(Node::Router(src), Some(Node::Pe(src)), &h) {
                    Action::Forward(b) => {
                        if matches!(b[0].to, Node::Xbar(_)) {
                            assert_eq!(b[0].vc, order);
                        }
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn broadcast_rejected() {
        let s = scheme();
        let h = Header::broadcast_request(Coord::new(&[0, 0]));
        assert_eq!(
            s.decide(Node::Pe(0), None, &h),
            Action::Drop(DropReason::ProtocolViolation)
        );
    }
}
