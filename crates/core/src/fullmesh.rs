//! Comparator: VC-free shortest-path routing on the full mesh.
//!
//! The full-mesh comparator (arXiv 2510.14730) makes the opposite bet from
//! the paper: instead of buying deadlock freedom with central serialization
//! (SR2201) or extra lanes (DF-DIM), it exploits an *acyclic ordering of
//! the physical links*. Classify every direct router link `i -> j` as "up"
//! when `j > i` and "down" when `j < i`. A packet takes either the single
//! direct hop, or a two-hop path through an intermediate router `m` with
//! `m > max(src, dst)` — an up hop followed by a down hop. Every route
//! acquires channels in a globally increasing order (all up channels
//! precede all down channels precede delivery), so the channel wait graph
//! is acyclic and no virtual channels are needed: [`Scheme::max_vcs`] is 1.
//!
//! The two-hop alternative exists for load spreading (and is the up*/down*
//! structure of the cited scheme); a deterministic header hash picks
//! between direct and two-hop so the choice replays bit-for-bit. Fault
//! tolerance is what the clique gives for free: a dead intermediate is
//! simply skipped, and only a dead destination (or source) endpoint is
//! fatal.
//!
//! Unicast-only: non-`Normal` RC values are protocol violations.

use crate::packet::{Header, RouteChange};
use crate::scheme::{Action, Branch, DropReason, Scheme};
use mdx_fault::{FaultSet, FaultSite};
use mdx_topology::{HyperX, Node};
use std::sync::Arc;

/// VC-free up*/down*-ordered routing over the full mesh.
#[derive(Debug, Clone)]
pub struct FullMeshVcFree {
    net: Arc<HyperX>,
    faults: FaultSet,
    seed: u64,
}

impl FullMeshVcFree {
    /// Builds the scheme; `seed` diversifies the direct-vs-two-hop choice.
    pub fn new(net: Arc<HyperX>, faults: &FaultSet, seed: u64) -> FullMeshVcFree {
        FullMeshVcFree {
            net,
            faults: faults.clone(),
            seed,
        }
    }

    /// The network this scheme routes on.
    pub fn network(&self) -> &HyperX {
        &self.net
    }

    fn router_faulty(&self, idx: usize) -> bool {
        self.faults.contains(FaultSite::Router(idx))
    }

    /// Deterministic per-packet hash (same construction as the O1TURN
    /// order derivation): every switch recomputes the identical value from
    /// immutable header fields.
    fn packet_hash(&self, header: &Header) -> u64 {
        let mut x = self.seed;
        for dim in 0..self.net.shape().d() {
            x ^= (header.src.get(dim) as u64) << (8 * dim);
            x ^= (header.dest.get(dim) as u64) << (8 * dim + 32);
        }
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^ (x >> 29)
    }

    /// The intermediate router this packet bounces through, if it takes
    /// the two-hop path: a live router above `max(src, dst)`, picked by the
    /// packet hash. `None` means the direct hop.
    pub fn intermediate_of(&self, header: &Header, src_idx: usize) -> Option<usize> {
        let shape = self.net.shape();
        let dst_idx = shape.index_of(header.dest);
        let h = self.packet_hash(header);
        // Half the packets go direct; the rest spread across the "up"
        // intermediates, skipping dead ones.
        if h & 1 == 0 {
            return None;
        }
        let lo = src_idx.max(dst_idx) + 1;
        let candidates: Vec<usize> = (lo..shape.num_pes())
            .filter(|&m| !self.router_faulty(m))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        Some(candidates[(h >> 1) as usize % candidates.len()])
    }

    fn route_router(&self, r: usize, came_from: Option<Node>, header: &Header) -> Action {
        let shape = self.net.shape();
        let dst_idx = shape.index_of(header.dest);
        if r == dst_idx {
            if self.faults.contains(FaultSite::Pe(r)) {
                return Action::Drop(DropReason::DestinationFaulty);
            }
            return Action::Forward(vec![Branch::new(Node::Pe(r), *header)]);
        }
        if self.router_faulty(dst_idx) || self.faults.contains(FaultSite::Pe(dst_idx)) {
            return Action::Drop(DropReason::DestinationFaulty);
        }
        // An intermediate router (reached router-to-router) always finishes
        // with the down hop; only the source router consults the hash.
        let next = match came_from {
            Some(Node::Router(_)) => dst_idx,
            _ => self.intermediate_of(header, r).unwrap_or(dst_idx),
        };
        if self.router_faulty(next) {
            return Action::Drop(DropReason::NoUsablePath);
        }
        Action::Forward(vec![Branch::new(Node::Router(next), *header)])
    }
}

impl Scheme for FullMeshVcFree {
    fn name(&self) -> String {
        "full-mesh vc-free up/down (comparator)".to_string()
    }

    fn decide(&self, at: Node, came_from: Option<Node>, header: &Header) -> Action {
        if header.rc != RouteChange::Normal {
            return Action::Drop(DropReason::ProtocolViolation);
        }
        match at {
            Node::Pe(p) => match came_from {
                None => Action::Forward(vec![Branch::new(Node::Router(p), *header)]),
                Some(Node::Router(_)) => Action::Deliver,
                Some(_) => Action::Drop(DropReason::ProtocolViolation),
            },
            Node::Router(r) => self.route_router(r, came_from, header),
            Node::Xbar(_) => Action::Drop(DropReason::ProtocolViolation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_unicast;
    use mdx_topology::{Coord, Shape};

    fn net() -> Arc<HyperX> {
        Arc::new(HyperX::full_mesh(Shape::new(&[8]).unwrap()))
    }

    #[test]
    fn all_pairs_delivered_within_two_hops() {
        let s = FullMeshVcFree::new(net(), &FaultSet::none(), 11);
        let shape = s.network().shape().clone();
        for src in 0..8 {
            for dst in 0..8 {
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                let t = trace_unicast(&s, s.network().graph(), h, src).unwrap();
                assert_eq!(t.steps.last().unwrap().node, Node::Pe(dst));
                // PE -> router -> [intermediate ->] router -> PE.
                assert!(t.steps.len() <= 5, "route too long: {:?}", t.steps);
            }
        }
    }

    #[test]
    fn both_route_shapes_occur() {
        let s = FullMeshVcFree::new(net(), &FaultSet::none(), 11);
        let shape = s.network().shape().clone();
        let (mut direct, mut bounced) = (0usize, 0usize);
        for src in 0..8 {
            for dst in 0..8 {
                if src == dst {
                    continue;
                }
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                match s.intermediate_of(&h, src) {
                    Some(m) => {
                        assert!(m > src.max(dst), "up*/down* ordering violated");
                        bounced += 1;
                    }
                    None => direct += 1,
                }
            }
        }
        assert!(
            direct > 5 && bounced > 5,
            "direct={direct} bounced={bounced}"
        );
    }

    #[test]
    fn routes_respect_up_down_channel_order() {
        // Every hop sequence must be (up)* then (down)*: once the index
        // decreases it never increases again.
        let s = FullMeshVcFree::new(net(), &FaultSet::none(), 11);
        let shape = s.network().shape().clone();
        for src in 0..8 {
            for dst in 0..8 {
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                let t = trace_unicast(&s, s.network().graph(), h, src).unwrap();
                let routers: Vec<usize> = t
                    .steps
                    .iter()
                    .filter_map(|step| match step.node {
                        Node::Router(r) => Some(r),
                        _ => None,
                    })
                    .collect();
                let mut gone_down = false;
                for w in routers.windows(2) {
                    if w[1] < w[0] {
                        gone_down = true;
                    } else {
                        assert!(!gone_down, "up hop after a down hop: {routers:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn dead_intermediate_is_skipped() {
        let shape = Shape::new(&[8]).unwrap();
        // Kill every router above 2: src=0, dst=2 can only go direct.
        let faults: FaultSet = (3..8).map(FaultSite::Router).collect();
        let s = FullMeshVcFree::new(Arc::new(HyperX::full_mesh(shape.clone())), &faults, 11);
        for seed_probe in 0..16u16 {
            let h = Header::unicast(Coord::new(&[seed_probe % 2]), Coord::new(&[2]));
            let src = (seed_probe % 2) as usize;
            assert!(s.intermediate_of(&h, src).is_none());
            let t = trace_unicast(&s, s.network().graph(), h, src).unwrap();
            assert_eq!(t.steps.last().unwrap().node, Node::Pe(2));
        }
    }

    #[test]
    fn dead_destination_is_reported() {
        let shape = Shape::new(&[8]).unwrap();
        let faults = FaultSet::single(FaultSite::Router(5));
        let s = FullMeshVcFree::new(Arc::new(HyperX::full_mesh(shape)), &faults, 11);
        let h = Header::unicast(Coord::new(&[0]), Coord::new(&[5]));
        assert_eq!(
            s.decide(Node::Router(0), Some(Node::Pe(0)), &h),
            Action::Drop(DropReason::DestinationFaulty)
        );
    }

    #[test]
    fn single_lane_only() {
        let s = FullMeshVcFree::new(net(), &FaultSet::none(), 11);
        assert_eq!(s.max_vcs(), 1);
        let h = Header::broadcast_request(Coord::new(&[0]));
        assert_eq!(
            s.decide(Node::Pe(0), None, &h),
            Action::Drop(DropReason::ProtocolViolation)
        );
    }
}
