//! # mdx-core
//!
//! The routing schemes of the Hitachi SR2201 multi-dimensional crossbar
//! network — the primary contribution of *"Deadlock-free Fault-tolerant
//! Routing in the Multi-dimensional Crossbar Network and Its Implementation
//! for the Hitachi SR2201"* (Yasuda et al., IPPS 1997).
//!
//! ## The protocol
//!
//! Every packet header carries a receiving address (one coordinate per
//! dimension) and a 2-bit **route change (RC)** field (paper Figs. 3, 4):
//!
//! | RC | meaning |
//! |----|---------------------------|
//! | 0  | normal routing            |
//! | 1  | broadcast request routing |
//! | 2  | broadcast routing         |
//! | 3  | detour routing            |
//!
//! Point-to-point packets travel in dimension order (X then Y). Broadcasts
//! are serialized through a designated crossbar, the **S-XB**: an RC=1
//! request is routed to the S-XB, queued there, and re-emitted with RC=2 to
//! every attached router, which fan it out across the remaining dimensions
//! (Y-X-Y routing, Fig. 6). When a switch is faulty, its neighbors' fault
//! registers steer affected packets with RC=3 to a designated **detour
//! crossbar (D-XB)** where RC is reset to 0 and dimension-order routing
//! resumes (Figs. 7, 8).
//!
//! The paper's deadlock-freedom result: broadcast (Y-X-Y) and detour
//! (X-Y-X-Y) each introduce one non-dimension-order turn; if the D-XB and
//! the S-XB are *different* crossbars the two turns can close a cyclic wait
//! (Fig. 9); making **D-XB = S-XB** serializes every non-dimension-order
//! turn at a single crossbar and eliminates deadlock (Fig. 10).
//!
//! ```
//! use mdx_core::{trace_unicast, Header, Sr2201Routing};
//! use mdx_fault::{FaultSet, FaultSite};
//! use mdx_topology::{Coord, MdCrossbar, Shape};
//! use std::sync::Arc;
//!
//! // Fig. 8: faulty router at (1,0); the packet detours via the D-XB.
//! let net = Arc::new(MdCrossbar::build(Shape::fig2()));
//! let faulty = net.shape().index_of(Coord::new(&[1, 0]));
//! let scheme = Sr2201Routing::new(net.clone(), &FaultSet::single(FaultSite::Router(faulty))).unwrap();
//! assert!(scheme.config().deadlock_free()); // D-XB = S-XB
//!
//! let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 1]));
//! let route = trace_unicast(&scheme, net.graph(), h, 0).unwrap();
//! assert!(route.used_detour());
//! ```
//!
//! ## Crate layout
//!
//! * [`packet`] — header and RC-bit encoding (Figs. 3, 4);
//! * [`scheme`] — the per-switch decision interface all schemes implement;
//! * [`config`] — S-XB / D-XB / dimension-order selection per fault set;
//! * [`sr2201`] — the full deadlock-free fault-tolerant scheme (and the
//!   Fig. 9 deadlock-prone D-XB ≠ S-XB variant, for the reproduction);
//! * [`naive`] — the unserialized broadcast that deadlocks (Fig. 5);
//! * [`trace`] — contention-free route walkers used by tests and analyses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod conformance;
pub mod fullmesh;
pub mod hypercube_avoid;
pub mod hyperx_ft;
pub mod naive;
pub mod o1turn;
pub mod packet;
pub mod registry;
pub mod scheme;
pub mod sr2201;
pub mod trace;

pub use config::RoutingConfig;
pub use conformance::{check_scheme, ConformanceFamily, ConformanceReport};
pub use fullmesh::FullMeshVcFree;
pub use hypercube_avoid::HypercubeAvoid;
pub use hyperx_ft::HyperXFtRouting;
pub use naive::NaiveBroadcast;
pub use o1turn::O1TurnRouting;
pub use packet::{Header, Packet, RouteChange};
pub use registry::{build_scheme, build_scheme_for, required_topology, RegistryError, SCHEME_IDS};
pub use scheme::{Action, Branch, DropReason, Scheme};
pub use sr2201::Sr2201Routing;
pub use trace::{trace_broadcast, trace_unicast, BroadcastTrace, TraceError, UnicastTrace};
