//! Comparator: fault-avoiding adaptive bit-fixing on the binary hypercube.
//!
//! The hypercube comparator (deadlock-avoidance lineage of arXiv
//! 1905.03086): e-cube routing — fix the lowest differing address bit
//! first — made fault-tolerant by *adaptive bit reordering*. When the
//! lowest differing bit's neighbor router is down, the packet fixes the
//! next fixable bit instead and returns to the skipped bit later from a
//! different lattice position, where the neighbor along that bit is a
//! different physical router.
//!
//! Deliberately **VC-free**: unlike [`crate::hyperx_ft`], out-of-order
//! hops share the single lane with in-order traffic, so the acyclicity
//! argument of pure e-cube no longer holds once faults force reordering.
//! The scheme is the zoo's honest negative on the "adaptivity without
//! lanes or serialization" corner — the tournament measures whether (and
//! how often) that corner actually deadlocks, rather than assuming it.
//!
//! Unicast-only: non-`Normal` RC values are protocol violations.

use crate::packet::{Header, RouteChange};
use crate::scheme::{Action, Branch, DropReason, Scheme};
use mdx_fault::{FaultSet, FaultSite};
use mdx_topology::mesh::DirectNetwork;
use mdx_topology::Node;
use std::sync::Arc;

/// Fault-avoiding adaptive bit-fixing over the binary hypercube.
#[derive(Debug, Clone)]
pub struct HypercubeAvoid {
    net: Arc<DirectNetwork>,
    faults: FaultSet,
}

impl HypercubeAvoid {
    /// Builds the scheme with the given fault registers.
    ///
    /// The network must be a binary hypercube (every extent 2) so each
    /// dimension hop is a single link.
    pub fn new(net: Arc<DirectNetwork>, faults: &FaultSet) -> HypercubeAvoid {
        assert!(
            net.shape().extents().iter().all(|&e| e == 2),
            "HypercubeAvoid requires a binary hypercube shape"
        );
        HypercubeAvoid {
            net,
            faults: faults.clone(),
        }
    }

    /// The network this scheme routes on.
    pub fn network(&self) -> &DirectNetwork {
        &self.net
    }

    fn router_faulty(&self, idx: usize) -> bool {
        self.faults.contains(FaultSite::Router(idx))
    }

    fn route_router(&self, r: usize, header: &Header) -> Action {
        let shape = self.net.shape();
        let c = shape.coord_of(r);
        let dest = header.dest;
        if c == dest {
            if self.faults.contains(FaultSite::Pe(r)) {
                return Action::Drop(DropReason::DestinationFaulty);
            }
            return Action::Forward(vec![Branch::new(Node::Pe(r), *header)]);
        }
        let dest_idx = shape.index_of(dest);
        if self.router_faulty(dest_idx) || self.faults.contains(FaultSite::Pe(dest_idx)) {
            return Action::Drop(DropReason::DestinationFaulty);
        }
        // e-cube order with fault avoidance: lowest differing bit whose
        // neighbor is alive (the dead neighbor cannot be the destination —
        // that was checked above).
        for d in 0..shape.d() {
            if c.get(d) == dest.get(d) {
                continue;
            }
            let idx = shape.index_of(c.with(d, dest.get(d)));
            if !self.router_faulty(idx) {
                return Action::Forward(vec![Branch::new(Node::Router(idx), *header)]);
            }
        }
        Action::Drop(DropReason::NoUsablePath)
    }
}

impl Scheme for HypercubeAvoid {
    fn name(&self) -> String {
        "hypercube fault-avoiding bit-fixing (comparator)".to_string()
    }

    fn decide(&self, at: Node, came_from: Option<Node>, header: &Header) -> Action {
        if header.rc != RouteChange::Normal {
            return Action::Drop(DropReason::ProtocolViolation);
        }
        match at {
            Node::Pe(p) => match came_from {
                None => Action::Forward(vec![Branch::new(Node::Router(p), *header)]),
                Some(Node::Router(_)) => Action::Deliver,
                Some(_) => Action::Drop(DropReason::ProtocolViolation),
            },
            Node::Router(r) => self.route_router(r, header),
            Node::Xbar(_) => Action::Drop(DropReason::ProtocolViolation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_unicast;
    use mdx_topology::{Coord, Shape};

    fn cube3() -> Arc<DirectNetwork> {
        Arc::new(DirectNetwork::hypercube(8).unwrap())
    }

    #[test]
    fn all_pairs_delivered_minimally_fault_free() {
        let s = HypercubeAvoid::new(cube3(), &FaultSet::none());
        let shape = s.network().shape().clone();
        for src in 0..8 {
            for dst in 0..8 {
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                let t = trace_unicast(&s, s.network().graph(), h, src).unwrap();
                assert_eq!(t.steps.last().unwrap().node, Node::Pe(dst));
                // Router hops = Hamming distance (pure e-cube is minimal).
                let routers = t
                    .steps
                    .iter()
                    .filter(|step| matches!(step.node, Node::Router(_)))
                    .count();
                assert_eq!(
                    routers,
                    1 + shape.coord_of(src).hamming(&shape.coord_of(dst))
                );
            }
        }
    }

    #[test]
    fn fault_forces_bit_reordering() {
        let shape = Shape::new(&[2, 2, 2]).unwrap();
        // 000 -> 111 normally goes via 100 (fix bit 0 first). Kill 100.
        let blocked = shape.index_of(Coord::new(&[1, 0, 0]));
        let faults = FaultSet::single(FaultSite::Router(blocked));
        let s = HypercubeAvoid::new(cube3(), &faults);
        let h = Header::unicast(Coord::new(&[0, 0, 0]), Coord::new(&[1, 1, 1]));
        match s.decide(Node::Router(0), Some(Node::Pe(0)), &h) {
            Action::Forward(b) => {
                let expect = shape.index_of(Coord::new(&[0, 1, 0]));
                assert_eq!(b[0].to, Node::Router(expect), "bit 1 fixed first");
            }
            other => panic!("unexpected {other:?}"),
        }
        let t = trace_unicast(&s, s.network().graph(), h, 0).unwrap();
        assert_eq!(t.steps.last().unwrap().node, Node::Pe(7));
        assert!(t
            .steps
            .iter()
            .all(|step| step.node != Node::Router(blocked)));
    }

    #[test]
    fn dead_destination_is_reported() {
        let faults = FaultSet::single(FaultSite::Router(7));
        let s = HypercubeAvoid::new(cube3(), &faults);
        let h = Header::unicast(Coord::new(&[0, 0, 0]), Coord::new(&[1, 1, 1]));
        assert_eq!(
            s.decide(Node::Router(0), Some(Node::Pe(0)), &h),
            Action::Drop(DropReason::DestinationFaulty)
        );
    }

    #[test]
    fn isolated_source_has_no_usable_path() {
        // Kill all three neighbors of 000: nothing can leave router 0.
        let shape = Shape::new(&[2, 2, 2]).unwrap();
        let faults: FaultSet = [[1u16, 0, 0], [0, 1, 0], [0, 0, 1]]
            .iter()
            .map(|bits| FaultSite::Router(shape.index_of(Coord::new(bits))))
            .collect();
        let s = HypercubeAvoid::new(cube3(), &faults);
        let h = Header::unicast(Coord::new(&[0, 0, 0]), Coord::new(&[1, 1, 0]));
        assert_eq!(
            s.decide(Node::Router(0), Some(Node::Pe(0)), &h),
            Action::Drop(DropReason::NoUsablePath)
        );
    }

    #[test]
    fn single_lane_and_unicast_only() {
        let s = HypercubeAvoid::new(cube3(), &FaultSet::none());
        assert_eq!(s.max_vcs(), 1);
        let h = Header::broadcast_request(Coord::new(&[0, 0, 0]));
        assert_eq!(
            s.decide(Node::Pe(0), None, &h),
            Action::Drop(DropReason::ProtocolViolation)
        );
    }
}
