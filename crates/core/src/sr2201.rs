//! The SR2201's deadlock-free fault-tolerant routing scheme (paper Secs. 3-5).
//!
//! One [`Sr2201Routing`] value implements all four RC-bit behaviors as
//! distributed per-switch decisions:
//!
//! * **RC=0 normal** — dimension-order routing. A router entering a faulty
//!   crossbar's dimension, or a crossbar whose required exit router is
//!   faulty, rewrites RC to 3 and steers the packet off its dimension-order
//!   path (detour initiation, Fig. 8 step 2).
//! * **RC=1 broadcast request** — routed across the non-first dimensions to
//!   the S-XB's line, then into the S-XB, which *gathers* it (Fig. 6
//!   step 1).
//! * **RC=2 broadcast** — emitted by the S-XB to all its routers; each
//!   router delivers locally and fans out to every dimension *later* in the
//!   dimension order than the one it received from (Fig. 6 steps 2-4;
//!   binomial fan-out generalizes the paper's 2D X-then-Y description).
//! * **RC=3 detour** — routed across the non-first dimensions to the D-XB's
//!   line, then into the D-XB, which rewrites RC back to 0; dimension-order
//!   routing resumes (Fig. 8 steps 3-5). *"The packet leaves no trace of the
//!   detour routing behind."*
//!
//! The scheme consults only per-switch fault registers ([`FaultRegisters`])
//! plus the global [`RoutingConfig`] — exactly the information the paper
//! allows the hardware.
//!
//! With `cfg.deadlock_free()` (D-XB = S-XB) this is the paper's proposed
//! scheme (Fig. 10); with [`RoutingConfig::with_separate_dxb`] it is the
//! deadlock-prone strawman of Fig. 9.

use crate::config::{ConfigError, RoutingConfig};
use crate::packet::{Header, RouteChange};
use crate::scheme::{Action, Branch, DropReason, Scheme};
use mdx_fault::{FaultRegisters, FaultSet};
use mdx_topology::{Coord, MdCrossbar, Node, XbarRef};
use std::sync::Arc;

/// The full SR2201 routing scheme.
#[derive(Debug, Clone)]
pub struct Sr2201Routing {
    net: Arc<MdCrossbar>,
    cfg: RoutingConfig,
    regs: FaultRegisters,
}

impl Sr2201Routing {
    /// Builds the scheme for a fault set, selecting the routing
    /// configuration with [`RoutingConfig::for_faults`].
    pub fn new(net: Arc<MdCrossbar>, faults: &FaultSet) -> Result<Sr2201Routing, ConfigError> {
        let cfg = RoutingConfig::for_faults(net.shape(), faults)?;
        Ok(Sr2201Routing::with_config(net, cfg, faults))
    }

    /// Builds the scheme with an explicit configuration (used by the
    /// experiments to force the Fig. 9 D-XB ≠ S-XB variant or a particular
    /// S-XB placement).
    pub fn with_config(
        net: Arc<MdCrossbar>,
        cfg: RoutingConfig,
        faults: &FaultSet,
    ) -> Sr2201Routing {
        let regs = FaultRegisters::derive(&net, faults);
        Sr2201Routing { net, cfg, regs }
    }

    /// The active routing configuration.
    pub fn config(&self) -> &RoutingConfig {
        &self.cfg
    }

    /// The network this scheme routes on.
    pub fn network(&self) -> &MdCrossbar {
        &self.net
    }

    fn coord_of(&self, pe: usize) -> Coord {
        self.net.shape().coord_of(pe)
    }

    fn router_node(&self, c: Coord) -> Node {
        Node::Router(self.net.shape().index_of(c))
    }

    fn xbar_through(&self, c: Coord, dim: usize) -> Node {
        Node::Xbar(self.net.xbar_through(c, dim))
    }

    /// The first dimension, in config order, where `c` differs from `dest`.
    fn first_mismatch(&self, c: Coord, dest: Coord) -> Option<usize> {
        self.cfg
            .order()
            .iter()
            .copied()
            .find(|&d| c.get(d) != dest.get(d))
    }

    /// Router decision for an RC=0 packet at coordinate `c`.
    fn router_normal(&self, r: usize, c: Coord, header: &Header) -> Action {
        match self.first_mismatch(c, header.dest) {
            None => {
                if self.regs.router_sees_pe_fault(r) {
                    Action::Drop(DropReason::DestinationFaulty)
                } else {
                    Action::Forward(vec![Branch {
                        to: Node::Pe(r),
                        header: *header,
                        vc: 0,
                    }])
                }
            }
            Some(dim) => {
                if self.regs.router_sees_xbar_fault(r, dim) {
                    // Detour initiation: the crossbar this packet needs is
                    // faulty. Head for the D-XB across the other dimensions.
                    self.router_detour_step(r, c, &header.with_rc(RouteChange::Detour), None)
                } else {
                    Action::Forward(vec![Branch {
                        to: self.xbar_through(c, dim),
                        header: *header,
                        vc: 0,
                    }])
                }
            }
        }
    }

    /// Router decision for an RC=3 packet: progress toward the D-XB line,
    /// avoiding an immediate bounce back into the dimension we arrived from
    /// (which would re-encounter the same faulty exit forever).
    fn router_detour_step(
        &self,
        r: usize,
        c: Coord,
        header: &Header,
        arrived_dim: Option<usize>,
    ) -> Action {
        let detour = self.cfg.detour_line();
        let mismatches: Vec<usize> = self.cfg.order()[1..]
            .iter()
            .copied()
            .filter(|&d| c.get(d) != detour.get(d))
            .collect();
        // Prefer a mismatching dimension other than the arrival one whose
        // crossbar is locally known-good.
        let candidate = mismatches
            .iter()
            .copied()
            .find(|&d| Some(d) != arrived_dim && !self.regs.router_sees_xbar_fault(r, d))
            .or_else(|| {
                mismatches
                    .iter()
                    .copied()
                    .find(|&d| !self.regs.router_sees_xbar_fault(r, d))
            });
        match candidate {
            Some(dim) => Action::Forward(vec![Branch {
                to: self.xbar_through(c, dim),
                header: *header,
                vc: 0,
            }]),
            None if mismatches.is_empty() => {
                // On the D-XB line: enter the D-XB itself.
                let first = self.cfg.order()[0];
                if self.regs.router_sees_xbar_fault(r, first) {
                    Action::Drop(DropReason::NoUsablePath)
                } else {
                    Action::Forward(vec![Branch {
                        to: self.xbar_through(c, first),
                        header: *header,
                        vc: 0,
                    }])
                }
            }
            None => Action::Drop(DropReason::NoUsablePath),
        }
    }

    /// Router decision for an RC=1 packet: progress toward the S-XB line,
    /// then into the S-XB.
    fn router_request(&self, r: usize, c: Coord, header: &Header) -> Action {
        let special = self.cfg.special_line();
        let next = self.cfg.order()[1..]
            .iter()
            .copied()
            .find(|&d| c.get(d) != special.get(d));
        let dim = match next {
            Some(d) => d,
            None => self.cfg.order()[0], // on the S-line: enter the S-XB
        };
        if self.regs.router_sees_xbar_fault(r, dim) {
            // A broadcast request has no detour protocol; configuration
            // guarantees this never happens under a single fault.
            return Action::Drop(DropReason::NoUsablePath);
        }
        Action::Forward(vec![Branch {
            to: self.xbar_through(c, dim),
            header: *header,
            vc: 0,
        }])
    }

    /// Router decision for an RC=2 packet arriving from the crossbar of
    /// `arrived_dim`: deliver locally and fan out to every later dimension.
    fn router_broadcast(&self, r: usize, c: Coord, header: &Header, arrived_dim: usize) -> Action {
        let ord = self.cfg.order();
        let k = ord
            .iter()
            .position(|&d| d == arrived_dim)
            .expect("arrival dimension is in the order");
        let mut branches = Vec::new();
        if !self.regs.router_sees_pe_fault(r) {
            branches.push(Branch {
                to: Node::Pe(r),
                header: *header,
                vc: 0,
            });
        }
        for &dim in &ord[k + 1..] {
            if !self.regs.router_sees_xbar_fault(r, dim) {
                branches.push(Branch {
                    to: self.xbar_through(c, dim),
                    header: *header,
                    vc: 0,
                });
            }
        }
        if branches.is_empty() {
            // Nothing to do (lone faulty PE leaf): drop silently.
            Action::Drop(DropReason::DestinationFaulty)
        } else {
            Action::Forward(branches)
        }
    }

    /// Crossbar decision for an RC=0 packet entering from the router at line
    /// position `in_pos`.
    fn xbar_normal(&self, xb: XbarRef, in_coord: Coord, header: &Header) -> Action {
        let dim = xb.dim as usize;
        let p = header.dest.get(dim);
        let exit = in_coord.with(dim, p);
        if !self.regs.xbar_sees_router_fault(xb, p) {
            return Action::Forward(vec![Branch {
                to: self.router_node(exit),
                header: *header,
                vc: 0,
            }]);
        }
        if exit == header.dest {
            return Action::Drop(DropReason::DestinationFaulty);
        }
        // Detour initiation at the crossbar (Fig. 8 step 2): exit at a
        // deterministic non-faulty detour router instead.
        match self.pick_detour_exit(xb, in_coord.get(dim), p) {
            Some(q) => Action::Forward(vec![Branch {
                to: self.router_node(in_coord.with(dim, q)),
                header: header.with_rc(RouteChange::Detour),
                vc: 0,
            }]),
            None => Action::Drop(DropReason::NoUsablePath),
        }
    }

    /// The deterministic detour exit: the first non-faulty position after
    /// the blocked one (cyclically), preferring not to bounce straight back
    /// to the entry router.
    fn pick_detour_exit(&self, xb: XbarRef, entry: u16, blocked: u16) -> Option<u16> {
        let extent = self.net.shape().extent(xb.dim as usize);
        let mut fallback = None;
        for step in 1..extent {
            let q = (blocked + step) % extent;
            if self.regs.xbar_sees_router_fault(xb, q) {
                continue;
            }
            if q == entry {
                fallback.get_or_insert(q);
                continue;
            }
            return Some(q);
        }
        fallback
    }

    /// Crossbar decision for an RC=1 packet.
    fn xbar_request(&self, xb: XbarRef, in_coord: Coord, header: &Header) -> Action {
        if xb == self.cfg.sxb() {
            return Action::Gather;
        }
        // En route to the S-line: exit toward the special-line coordinate.
        let dim = xb.dim as usize;
        let p = self.cfg.special_line().get(dim);
        if self.regs.xbar_sees_router_fault(xb, p) {
            return Action::Drop(DropReason::NoUsablePath);
        }
        Action::Forward(vec![Branch {
            to: self.router_node(in_coord.with(dim, p)),
            header: *header,
            vc: 0,
        }])
    }

    /// Crossbar decision for an RC=2 packet entering from position `entry`:
    /// fan out to every other attached router (skipping faulty ones — the
    /// hardware *"stops transmission of packets to the faulty PE"*).
    fn xbar_broadcast(&self, xb: XbarRef, in_coord: Coord, header: &Header) -> Action {
        let dim = xb.dim as usize;
        let entry = in_coord.get(dim);
        let extent = self.net.shape().extent(dim);
        let mut branches = Vec::new();
        for p in 0..extent {
            if p == entry || self.regs.xbar_sees_router_fault(xb, p) {
                continue;
            }
            branches.push(Branch {
                to: self.router_node(in_coord.with(dim, p)),
                header: *header,
                vc: 0,
            });
        }
        if branches.is_empty() {
            // Every other router on this line is out of service; nothing
            // left to fan to (silent non-delivery, like a faulty leaf PE).
            Action::Drop(DropReason::DestinationFaulty)
        } else {
            Action::Forward(branches)
        }
    }

    /// Crossbar decision for an RC=3 packet.
    fn xbar_detour(&self, xb: XbarRef, in_coord: Coord, header: &Header) -> Action {
        let dim = xb.dim as usize;
        if xb == self.cfg.dxb() {
            // The D-XB: rewrite RC back to normal and resume dimension-order
            // routing (Fig. 8 step 5). The exit is the destination's
            // coordinate in this (first) dimension — possibly a U-turn back
            // to the entry router when that coordinate already matches.
            let p = header.dest.get(dim);
            let exit = in_coord.with(dim, p);
            let restored = header.with_rc(RouteChange::Normal);
            if !self.regs.xbar_sees_router_fault(xb, p) {
                return Action::Forward(vec![Branch {
                    to: self.router_node(exit),
                    header: restored,
                    vc: 0,
                }]);
            }
            if exit == header.dest {
                return Action::Drop(DropReason::DestinationFaulty);
            }
            return match self.pick_detour_exit(xb, in_coord.get(dim), p) {
                Some(q) => Action::Forward(vec![Branch {
                    to: self.router_node(in_coord.with(dim, q)),
                    header: *header,
                    vc: 0,
                }]),
                None => Action::Drop(DropReason::NoUsablePath),
            };
        }
        // En route to the D-line: exit toward the detour-line coordinate,
        // skipping a faulty exit router if one is in the way.
        let p = self.cfg.detour_line().get(dim);
        if !self.regs.xbar_sees_router_fault(xb, p) {
            return Action::Forward(vec![Branch {
                to: self.router_node(in_coord.with(dim, p)),
                header: *header,
                vc: 0,
            }]);
        }
        match self.pick_detour_exit(xb, in_coord.get(dim), p) {
            Some(q) => Action::Forward(vec![Branch {
                to: self.router_node(in_coord.with(dim, q)),
                header: *header,
                vc: 0,
            }]),
            None => Action::Drop(DropReason::NoUsablePath),
        }
    }
}

impl Scheme for Sr2201Routing {
    fn name(&self) -> String {
        if self.cfg.deadlock_free() {
            format!("sr2201 (S-XB = D-XB = {})", self.cfg.sxb())
        } else {
            format!(
                "sr2201 fig9-variant (S-XB = {}, D-XB = {})",
                self.cfg.sxb(),
                self.cfg.dxb()
            )
        }
    }

    fn decide(&self, at: Node, came_from: Option<Node>, header: &Header) -> Action {
        match at {
            Node::Pe(p) => match came_from {
                // Injection: hand to the local router.
                None => Action::Forward(vec![Branch {
                    to: Node::Router(p),
                    header: *header,
                    vc: 0,
                }]),
                // Arrival: sink.
                Some(Node::Router(_)) => Action::Deliver,
                Some(_) => Action::Drop(DropReason::ProtocolViolation),
            },
            Node::Router(r) => {
                let c = self.coord_of(r);
                match header.rc {
                    RouteChange::Normal => self.router_normal(r, c, header),
                    RouteChange::BroadcastRequest => self.router_request(r, c, header),
                    RouteChange::Broadcast => match came_from {
                        Some(Node::Xbar(xb)) => {
                            self.router_broadcast(r, c, header, xb.dim as usize)
                        }
                        _ => Action::Drop(DropReason::ProtocolViolation),
                    },
                    RouteChange::Detour => {
                        let arrived = match came_from {
                            Some(Node::Xbar(xb)) => Some(xb.dim as usize),
                            _ => None,
                        };
                        self.router_detour_step(r, c, header, arrived)
                    }
                }
            }
            Node::Xbar(xb) => {
                let in_coord = match came_from {
                    Some(Node::Router(rin)) => self.coord_of(rin),
                    _ => return Action::Drop(DropReason::ProtocolViolation),
                };
                match header.rc {
                    RouteChange::Normal => self.xbar_normal(xb, in_coord, header),
                    RouteChange::BroadcastRequest => self.xbar_request(xb, in_coord, header),
                    RouteChange::Broadcast => self.xbar_broadcast(xb, in_coord, header),
                    RouteChange::Detour => self.xbar_detour(xb, in_coord, header),
                }
            }
        }
    }

    fn serializing_node(&self) -> Option<Node> {
        Some(Node::Xbar(self.cfg.sxb()))
    }

    fn detour_node(&self) -> Option<Node> {
        Some(Node::Xbar(self.cfg.dxb()))
    }

    fn emission(&self, header: &Header) -> Vec<Branch> {
        // Fig. 6 step 2: RC 'broadcast request' -> 'broadcast', transmitted
        // to every PE (router) connected to the S-XB.
        let sxb = self.cfg.sxb();
        let dim = sxb.dim as usize;
        let base = self.cfg.special_line();
        let emitted = header.with_rc(RouteChange::Broadcast);
        let shape = self.net.shape();
        let mut branches = Vec::new();
        for p in 0..shape.extent(dim) {
            if self.regs.xbar_sees_router_fault(sxb, p) {
                continue;
            }
            branches.push(Branch {
                to: self.router_node(base.with(dim, p)),
                header: emitted,
                vc: 0,
            });
        }
        branches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_fault::FaultSite;
    use mdx_topology::Shape;

    fn scheme(faults: &FaultSet) -> Sr2201Routing {
        let net = Arc::new(MdCrossbar::build(Shape::fig2()));
        Sr2201Routing::new(net, faults).unwrap()
    }

    #[test]
    fn injection_goes_to_router() {
        let s = scheme(&FaultSet::none());
        let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[3, 2]));
        match s.decide(Node::Pe(0), None, &h) {
            Action::Forward(b) => {
                assert_eq!(b.len(), 1);
                assert_eq!(b[0].to, Node::Router(0));
                assert_eq!(b[0].header, h);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn normal_routing_is_dimension_order() {
        let s = scheme(&FaultSet::none());
        let src = Coord::new(&[0, 0]);
        let dst = Coord::new(&[3, 2]);
        let h = Header::unicast(src, dst);
        // Source router sends into its X crossbar first.
        match s.decide(Node::Router(0), Some(Node::Pe(0)), &h) {
            Action::Forward(b) => {
                assert_eq!(b[0].to, Node::Xbar(XbarRef { dim: 0, line: 0 }));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The X crossbar exits at the destination column.
        match s.decide(
            Node::Xbar(XbarRef { dim: 0, line: 0 }),
            Some(Node::Router(0)),
            &h,
        ) {
            Action::Forward(b) => assert_eq!(b[0].to, Node::Router(3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delivery_at_destination() {
        let s = scheme(&FaultSet::none());
        let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 0]));
        // At the destination router: forward to the PE.
        match s.decide(
            Node::Router(1),
            Some(Node::Xbar(XbarRef { dim: 0, line: 0 })),
            &h,
        ) {
            Action::Forward(b) => assert_eq!(b[0].to, Node::Pe(1)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.decide(Node::Pe(1), Some(Node::Router(1)), &h),
            Action::Deliver
        );
    }

    #[test]
    fn faulty_dest_pe_dropped_at_its_router() {
        let s = scheme(&FaultSet::single(FaultSite::Pe(1)));
        let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 0]));
        assert_eq!(
            s.decide(
                Node::Router(1),
                Some(Node::Xbar(XbarRef { dim: 0, line: 0 })),
                &h
            ),
            Action::Drop(DropReason::DestinationFaulty)
        );
    }

    #[test]
    fn xbar_detects_faulty_exit_and_sets_detour() {
        // Fig. 8: fault at router (1,0); packet (0,0) -> (1,1) must turn at
        // (1,0); the X crossbar rewrites RC to detour and exits elsewhere.
        let shape = Shape::fig2();
        let faulty = shape.index_of(Coord::new(&[1, 0]));
        let s = scheme(&FaultSet::single(FaultSite::Router(faulty)));
        let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 1]));
        match s.decide(
            Node::Xbar(XbarRef { dim: 0, line: 0 }),
            Some(Node::Router(0)),
            &h,
        ) {
            Action::Forward(b) => {
                assert_eq!(b.len(), 1);
                assert_eq!(b[0].header.rc, RouteChange::Detour);
                // Deterministic: the first non-faulty position after the
                // blocked one is x=2 (router index 2).
                assert_eq!(b[0].to, Node::Router(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dxb_resets_rc_to_normal() {
        let shape = Shape::fig2();
        let faulty = shape.index_of(Coord::new(&[1, 0]));
        let s = scheme(&FaultSet::single(FaultSite::Router(faulty)));
        let dxb = s.config().dxb();
        let detour_line = s.config().detour_line();
        let h =
            Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 1])).with_rc(RouteChange::Detour);
        // Enter the D-XB from some router on its line.
        let entry = detour_line.with(0, 2);
        match s.decide(
            Node::Xbar(dxb),
            Some(Node::Router(shape.index_of(entry))),
            &h,
        ) {
            Action::Forward(b) => {
                assert_eq!(b[0].header.rc, RouteChange::Normal);
                let exit = detour_line.with(0, 1);
                assert_eq!(b[0].to, Node::Router(shape.index_of(exit)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn destination_router_fault_is_undeliverable() {
        let shape = Shape::fig2();
        let faulty = shape.index_of(Coord::new(&[1, 1]));
        let s = scheme(&FaultSet::single(FaultSite::Router(faulty)));
        // Packet whose destination IS the faulty router's PE: dropped at the
        // last crossbar.
        let h = Header::unicast(Coord::new(&[1, 0]), Coord::new(&[1, 1]));
        let yxb = XbarRef { dim: 1, line: 1 };
        assert_eq!(
            s.decide(Node::Xbar(yxb), Some(Node::Router(1)), &h),
            Action::Drop(DropReason::DestinationFaulty)
        );
    }

    #[test]
    fn broadcast_request_routes_to_sxb() {
        let s = scheme(&FaultSet::none());
        // S-XB is X0-XB (row 0). A request from (2, 2) first crosses its
        // Y crossbar toward row 0.
        let shape = Shape::fig2();
        let src = Coord::new(&[2, 2]);
        let r = shape.index_of(src);
        let h = Header::broadcast_request(src);
        match s.decide(Node::Router(r), Some(Node::Pe(r)), &h) {
            Action::Forward(b) => {
                assert_eq!(b[0].to, Node::Xbar(XbarRef { dim: 1, line: 2 }));
                assert_eq!(b[0].header.rc, RouteChange::BroadcastRequest);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The Y crossbar exits at row 0.
        match s.decide(
            Node::Xbar(XbarRef { dim: 1, line: 2 }),
            Some(Node::Router(r)),
            &h,
        ) {
            Action::Forward(b) => assert_eq!(b[0].to, Node::Router(2)),
            other => panic!("unexpected {other:?}"),
        }
        // The row-0 router pushes into the S-XB, which gathers.
        match s.decide(
            Node::Router(2),
            Some(Node::Xbar(XbarRef { dim: 1, line: 2 })),
            &h,
        ) {
            Action::Forward(b) => {
                assert_eq!(b[0].to, Node::Xbar(s.config().sxb()));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.decide(Node::Xbar(s.config().sxb()), Some(Node::Router(2)), &h),
            Action::Gather
        );
    }

    #[test]
    fn emission_reaches_all_sxb_routers() {
        let s = scheme(&FaultSet::none());
        let h = Header::broadcast_request(Coord::new(&[2, 2]));
        let branches = s.emission(&h);
        assert_eq!(branches.len(), 4); // X0-XB row has 4 routers
        for b in &branches {
            assert_eq!(b.header.rc, RouteChange::Broadcast);
            assert!(matches!(b.to, Node::Router(r) if r < 4));
        }
    }

    #[test]
    fn broadcast_fanout_covers_later_dims_and_delivers() {
        let s = scheme(&FaultSet::none());
        let h = Header::broadcast_request(Coord::new(&[2, 2])).with_rc(RouteChange::Broadcast);
        // Router 1 = (1, 0) receives from the S-XB (dim 0): deliver + fan to
        // its Y crossbar.
        match s.decide(Node::Router(1), Some(Node::Xbar(s.config().sxb())), &h) {
            Action::Forward(b) => {
                assert_eq!(b.len(), 2);
                assert_eq!(b[0].to, Node::Pe(1));
                assert_eq!(b[1].to, Node::Xbar(XbarRef { dim: 1, line: 1 }));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Leaf router (1, 2) receives from its Y crossbar (dim 1): deliver
        // only.
        let shape = Shape::fig2();
        let leaf = shape.index_of(Coord::new(&[1, 2]));
        match s.decide(
            Node::Router(leaf),
            Some(Node::Xbar(XbarRef { dim: 1, line: 1 })),
            &h,
        ) {
            Action::Forward(b) => {
                assert_eq!(b.len(), 1);
                assert_eq!(b[0].to, Node::Pe(leaf));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcast_skips_faulty_leaf_pe() {
        let shape = Shape::fig2();
        let leaf = shape.index_of(Coord::new(&[1, 2]));
        let s = scheme(&FaultSet::single(FaultSite::Pe(leaf)));
        let h = Header::broadcast_request(Coord::new(&[0, 0])).with_rc(RouteChange::Broadcast);
        assert_eq!(
            s.decide(
                Node::Router(leaf),
                Some(Node::Xbar(XbarRef { dim: 1, line: 1 })),
                &h
            ),
            Action::Drop(DropReason::DestinationFaulty)
        );
    }

    #[test]
    fn pick_detour_exit_prefers_not_bouncing_back() {
        let shape = Shape::fig2();
        let faulty = shape.index_of(Coord::new(&[1, 0]));
        let s = scheme(&FaultSet::single(FaultSite::Router(faulty)));
        let xb = XbarRef { dim: 0, line: 0 };
        // Entry x=0, blocked x=1: picks x=2 (not back to 0).
        assert_eq!(s.pick_detour_exit(xb, 0, 1), Some(2));
        // Entry x=2, blocked x=1: picks x=3? No - first after blocked is 2
        // (the entry), so it prefers 3.
        assert_eq!(s.pick_detour_exit(xb, 2, 1), Some(3));
    }

    #[test]
    fn name_distinguishes_variants() {
        let s = scheme(&FaultSet::none());
        assert!(s.name().contains("S-XB = D-XB"));
        let net = Arc::new(MdCrossbar::build(Shape::fig2()));
        let cfg = RoutingConfig::fault_free(Shape::fig2()).with_separate_dxb(&FaultSet::none());
        let v = Sr2201Routing::with_config(net, cfg, &FaultSet::none());
        assert!(v.name().contains("fig9"));
    }
}
