//! Protocol-conformance checking for [`Scheme`] implementations.
//!
//! Downstream users plug their own routing schemes into the simulator; this
//! module checks the contract the engine and the analyzers rely on, by
//! exhaustively walking a scheme's decisions over a traffic family:
//!
//! * every forward targets a graph neighbor;
//! * `Deliver` happens only at PE nodes;
//! * `Gather` happens only at the declared serializing node;
//! * every branch's virtual lane is below [`Scheme::max_vcs`];
//! * unicast routes terminate (no livelock) at the addressed PE;
//! * broadcast fan-outs never deliver twice to one PE.
//!
//! The walkers in [`crate::trace`] catch most of these for a single route;
//! [`check_scheme`] sweeps whole families and aggregates findings, so a
//! scheme can be validated in one call (and in CI).

use crate::packet::Header;
use crate::scheme::{Action, Scheme};
use crate::trace::{trace_broadcast, trace_unicast, TraceError};
use mdx_topology::{NetworkGraph, Node, Shape};

/// One contract violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Human-readable context (route, switch, header).
    pub context: String,
}

/// Violation classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// A unicast route failed (dropped unexpectedly, livelocked, fanned
    /// out, or ended at the wrong PE).
    UnicastRoute,
    /// A broadcast failed or delivered a duplicate.
    Broadcast,
    /// A branch used a lane at or above `max_vcs`.
    LaneOutOfRange,
    /// A decision at the injection point was not a forward to a neighbor.
    BadInjection,
}

/// Conformance report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// Unicast pairs checked.
    pub unicast_checked: usize,
    /// Broadcast sources checked.
    pub broadcast_checked: usize,
    /// All violations found (empty = conformant).
    pub violations: Vec<Violation>,
}

impl ConformanceReport {
    /// Whether the scheme passed every check.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// What traffic to drive through the scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConformanceFamily {
    /// Check every (src, dst) unicast pair.
    pub unicast: bool,
    /// Check a broadcast from every source (skip for unicast-only schemes).
    pub broadcast: bool,
}

/// Sweeps the scheme over the traffic family and reports violations.
///
/// Destinations the scheme legitimately cannot serve (fault drops) are the
/// caller's business — this checker is for *fault-free* conformance; run it
/// with the scheme configured fault-free.
pub fn check_scheme(
    scheme: &dyn Scheme,
    g: &NetworkGraph,
    shape: &Shape,
    family: ConformanceFamily,
) -> ConformanceReport {
    let n = shape.num_pes();
    let mut violations = Vec::new();
    let max_vcs = scheme.max_vcs().max(1);
    let mut unicast_checked = 0;
    let mut broadcast_checked = 0;

    if family.unicast {
        for src in 0..n {
            for dst in 0..n {
                unicast_checked += 1;
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                // Lane check at the injection decision (the walkers validate
                // adjacency; lanes need an explicit look).
                if let Action::Forward(branches) = scheme.decide(Node::Pe(src), None, &h) {
                    for b in &branches {
                        if b.vc >= max_vcs {
                            violations.push(Violation {
                                kind: ViolationKind::LaneOutOfRange,
                                context: format!(
                                    "{src}->{dst}: lane {} >= max_vcs {max_vcs}",
                                    b.vc
                                ),
                            });
                        }
                    }
                } else {
                    violations.push(Violation {
                        kind: ViolationKind::BadInjection,
                        context: format!("{src}->{dst}: injection was not a forward"),
                    });
                    continue;
                }
                match trace_unicast(scheme, g, h, src) {
                    Ok(t) => {
                        if t.steps.last().map(|s| s.node) != Some(Node::Pe(dst)) {
                            violations.push(Violation {
                                kind: ViolationKind::UnicastRoute,
                                context: format!("{src}->{dst}: ended at {}", t.pretty()),
                            });
                        }
                    }
                    Err(e) => violations.push(Violation {
                        kind: ViolationKind::UnicastRoute,
                        context: format!("{src}->{dst}: {e}"),
                    }),
                }
            }
        }
    }
    if family.broadcast {
        for src in 0..n {
            broadcast_checked += 1;
            match trace_broadcast(scheme, g, src, shape.coord_of(src)) {
                Ok(t) => {
                    if !t.duplicates.is_empty() {
                        violations.push(Violation {
                            kind: ViolationKind::Broadcast,
                            context: format!("src {src}: duplicates {:?}", t.duplicates),
                        });
                    }
                    if t.delivered.len() != n {
                        violations.push(Violation {
                            kind: ViolationKind::Broadcast,
                            context: format!("src {src}: covered {}/{n} PEs", t.delivered.len()),
                        });
                    }
                }
                Err(TraceError::Dropped(r)) => violations.push(Violation {
                    kind: ViolationKind::Broadcast,
                    context: format!("src {src}: dropped ({r})"),
                }),
                Err(e) => violations.push(Violation {
                    kind: ViolationKind::Broadcast,
                    context: format!("src {src}: {e}"),
                }),
            }
        }
    }
    ConformanceReport {
        unicast_checked,
        broadcast_checked,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Action, Branch, DropReason};
    use crate::{NaiveBroadcast, O1TurnRouting, Sr2201Routing};
    use mdx_fault::FaultSet;
    use mdx_topology::MdCrossbar;
    use std::sync::Arc;

    fn net() -> Arc<MdCrossbar> {
        Arc::new(MdCrossbar::build(Shape::fig2()))
    }

    #[test]
    fn shipped_schemes_conform() {
        let n = net();
        let shape = n.shape().clone();
        let full = ConformanceFamily {
            unicast: true,
            broadcast: true,
        };
        let uni_only = ConformanceFamily {
            unicast: true,
            broadcast: false,
        };
        let sr = Sr2201Routing::new(n.clone(), &FaultSet::none()).unwrap();
        assert!(check_scheme(&sr, n.graph(), &shape, full).ok());
        let naive = NaiveBroadcast::new(n.clone());
        assert!(check_scheme(&naive, n.graph(), &shape, full).ok());
        let o1 = O1TurnRouting::new(n.clone(), 3);
        let r = check_scheme(&o1, n.graph(), &shape, uni_only);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.unicast_checked, 144);
    }

    #[test]
    fn zoo_comparators_conform_on_their_topologies() {
        // Every registered scheme, fault-free, on its pinned topology; the
        // unicast-only comparators run the unicast family, the crossbar
        // schemes additionally broadcast (covered above).
        let uni_only = ConformanceFamily {
            unicast: true,
            broadcast: false,
        };
        for (id, shape) in [
            ("hyperx-ft", Shape::new(&[3, 3]).unwrap()),
            ("fullmesh-vcfree", Shape::new(&[8]).unwrap()),
            ("hypercube-avoid", Shape::new(&[2, 2, 2]).unwrap()),
        ] {
            let topology = crate::registry::required_topology(id).unwrap();
            let net = mdx_topology::Network::build(topology, shape.clone()).unwrap();
            let s = crate::registry::build_scheme_for(id, &net, &FaultSet::none()).unwrap();
            let r = check_scheme(s.as_ref(), net.graph(), &shape, uni_only);
            assert!(r.ok(), "{id}: {:?}", r.violations);
            assert_eq!(r.unicast_checked, shape.num_pes() * shape.num_pes());
        }
    }

    /// A deliberately broken scheme: forwards to a non-neighbor and uses an
    /// out-of-range lane.
    struct Broken(Arc<MdCrossbar>);

    impl Scheme for Broken {
        fn name(&self) -> String {
            "broken".into()
        }
        fn decide(&self, at: Node, _came: Option<Node>, header: &Header) -> Action {
            match at {
                Node::Pe(p) => Action::Forward(vec![Branch::on_vc(
                    Node::Router(p),
                    *header,
                    7, // max_vcs is 1: out of range
                )]),
                // Teleport straight to the destination PE: not a neighbor.
                Node::Router(_) => Action::Forward(vec![Branch::new(
                    Node::Pe(self.0.shape().index_of(header.dest)),
                    *header,
                )]),
                Node::Xbar(_) => Action::Drop(DropReason::ProtocolViolation),
            }
        }
    }

    #[test]
    fn broken_scheme_is_caught() {
        let n = net();
        let shape = n.shape().clone();
        let r = check_scheme(
            &Broken(n.clone()),
            n.graph(),
            &shape,
            ConformanceFamily {
                unicast: true,
                broadcast: false,
            },
        );
        assert!(!r.ok());
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::LaneOutOfRange));
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::UnicastRoute));
    }
}
