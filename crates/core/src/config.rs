//! Global routing configuration: dimension order, S-XB and D-XB selection.
//!
//! The paper leaves these as values *"determined by the network hardware in
//! advance"* (set up by the service processor when a fault is diagnosed).
//! The selection rules implemented here are the reconstruction documented in
//! DESIGN.md:
//!
//! * the **dimension order** is the identity (X-Y-...) unless the faulty
//!   switch is a crossbar of a non-first dimension, in which case that
//!   dimension is moved to the front (Sec. 3.2: *"If a part of the network
//!   is faulty ... the network hardware can change the routing order"*) so
//!   the faulty crossbar is only ever needed by sources on its own line;
//! * the **S-XB** is a crossbar of the first dimension whose line avoids the
//!   fault: its line coordinate differs from any faulty router's coordinate
//!   in *every* remaining dimension (this is what Sec. 4 calls substituting
//!   *"another XB which is not connected to the faulty"* switch), and its
//!   line index differs from a faulty crossbar's;
//! * the **D-XB equals the S-XB** — the paper's deadlock-freedom result
//!   (Sec. 5). The Fig. 9 deadlock-prone variant with a separate D-XB is
//!   available through [`RoutingConfig::with_separate_dxb`] for the
//!   reproduction experiments.

use mdx_fault::{FaultSet, FaultSite};
use mdx_topology::{Coord, Shape, XbarRef};
use serde::{Deserialize, Serialize};

/// Errors selecting a routing configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A dimension extent of 1 leaves no room to route the special line away
    /// from the fault.
    ExtentTooSmall(usize),
    /// Two faulty crossbars in different dimensions cannot both be moved to
    /// the front of the dimension order.
    ConflictingXbarFaults,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ExtentTooSmall(d) => {
                write!(f, "dimension {d} has extent 1; cannot clear the fault")
            }
            ConfigError::ConflictingXbarFaults => {
                write!(f, "faulty crossbars in more than one dimension")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The hardware routing configuration shared by every switch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingConfig {
    shape: Shape,
    /// Dimension resolution order; `ord[0]` is the S-XB/D-XB dimension.
    ord: Vec<usize>,
    /// Coordinates of the special (S-XB) line in dimensions `ord[1..]`; the
    /// `ord[0]` component is meaningless and kept at 0.
    special: Coord,
    /// Coordinates of the detour (D-XB) line. Equal to `special` in the
    /// paper's deadlock-free scheme.
    detour: Coord,
}

/// Picks a coordinate value in `0..extent` avoiding every value in
/// `forbidden`; prefers the smallest.
fn pick_avoiding(extent: u16, forbidden: &[u16]) -> Option<u16> {
    (0..extent).find(|v| !forbidden.contains(v))
}

impl RoutingConfig {
    /// The fault-free default: X-Y-... order, S-XB = D-XB = first-dimension
    /// crossbar of line 0.
    pub fn fault_free(shape: Shape) -> RoutingConfig {
        let d = shape.d();
        RoutingConfig {
            shape,
            ord: (0..d).collect(),
            special: Coord::ORIGIN,
            detour: Coord::ORIGIN,
        }
    }

    /// Selects the configuration for a fault set, per the rules above.
    ///
    /// Guarantees (proved by the exhaustive single-fault tests): with at
    /// most one fault and all extents >= 2, the S-XB line contains no faulty
    /// switch, every fan-out-interior router avoids the fault, and detour
    /// paths converge. With several faults the selection is best-effort
    /// (beyond the paper's specification).
    pub fn for_faults(shape: &Shape, faults: &FaultSet) -> Result<RoutingConfig, ConfigError> {
        let d = shape.d();
        // Dimension order: a faulty crossbar's dimension moves to the front.
        let mut xbar_dims: Vec<usize> = faults
            .sites()
            .filter_map(|s| match s {
                FaultSite::Xbar(x) => Some(x.dim as usize),
                _ => None,
            })
            .collect();
        xbar_dims.sort_unstable();
        xbar_dims.dedup();
        if xbar_dims.len() > 1 {
            return Err(ConfigError::ConflictingXbarFaults);
        }
        let first = xbar_dims.first().copied().unwrap_or(0);
        let mut ord = vec![first];
        ord.extend((0..d).filter(|&x| x != first));

        // Special line: avoid every faulty router's coordinate in each
        // non-first dimension.
        let router_coords: Vec<Coord> = faults
            .sites()
            .filter_map(|s| match s {
                FaultSite::Router(r) => Some(shape.coord_of(r)),
                _ => None,
            })
            .collect();
        let mut special = Coord::ORIGIN;
        for &dim in &ord[1..] {
            let forbidden: Vec<u16> = router_coords.iter().map(|c| c.get(dim)).collect();
            let v = pick_avoiding(shape.extent(dim), &forbidden)
                .ok_or(ConfigError::ExtentTooSmall(dim))?;
            special = special.with(dim, v);
        }
        // If the faulty switch is a crossbar of dimension `first`, the S-XB
        // must be a different line of that dimension.
        if let Some(FaultSite::Xbar(fx)) = faults
            .sites()
            .find(|s| matches!(s, FaultSite::Xbar(x) if x.dim as usize == first))
        {
            let mut cfg_line = shape.line_of(special.with(first, 0), first);
            if cfg_line == fx.line as usize {
                // Nudge the first non-first dimension to a different value.
                let dim = ord[1..]
                    .iter()
                    .copied()
                    .find(|&dim| shape.extent(dim) >= 2)
                    .ok_or(ConfigError::ExtentTooSmall(first))?;
                let cur = special.get(dim);
                let forbidden: Vec<u16> = router_coords
                    .iter()
                    .map(|c| c.get(dim))
                    .chain([cur])
                    .collect();
                let v = pick_avoiding(shape.extent(dim), &forbidden)
                    .ok_or(ConfigError::ExtentTooSmall(dim))?;
                special = special.with(dim, v);
                cfg_line = shape.line_of(special.with(first, 0), first);
                debug_assert_ne!(cfg_line, fx.line as usize);
            }
        }
        Ok(RoutingConfig {
            shape: shape.clone(),
            ord,
            special,
            detour: special,
        })
    }

    /// The Fig. 9 deadlock-prone variant: moves the D-XB to a line different
    /// from the S-XB while still clearing the fault (so routes terminate and
    /// the *only* defect is the second non-dimension-order turn — exactly
    /// the paper's strawman).
    ///
    /// # Panics
    /// Panics when no non-first dimension has room for a line that differs
    /// from both the S-XB's and every faulty router's coordinate (needs an
    /// extent of 3 when a router fault is present).
    #[must_use]
    pub fn with_separate_dxb(mut self, faults: &FaultSet) -> RoutingConfig {
        let router_coords: Vec<Coord> = faults
            .sites()
            .filter_map(|s| match s {
                FaultSite::Router(r) => Some(self.shape.coord_of(r)),
                _ => None,
            })
            .collect();
        for dim in self.ord[1..].iter().copied() {
            let mut forbidden: Vec<u16> = router_coords.iter().map(|c| c.get(dim)).collect();
            forbidden.push(self.special.get(dim));
            if let Some(v) = pick_avoiding(self.shape.extent(dim), &forbidden) {
                self.detour = self.special.with(dim, v);
                return self;
            }
        }
        panic!("no room for a distinct fault-clear D-XB line");
    }

    /// Overrides the D-XB line coordinates directly (experiment plumbing).
    #[must_use]
    pub fn with_detour_line(mut self, detour: Coord) -> RoutingConfig {
        self.detour = detour.with(self.ord[0], 0);
        self
    }

    /// Overrides the S-XB line coordinates directly (experiment plumbing;
    /// also moves the D-XB to keep the deadlock-free D-XB = S-XB invariant).
    #[must_use]
    pub fn with_special_line(mut self, special: Coord) -> RoutingConfig {
        self.special = special.with(self.ord[0], 0);
        self.detour = self.special;
        self
    }

    /// The network shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension resolution order.
    pub fn order(&self) -> &[usize] {
        &self.ord
    }

    /// The serializing crossbar.
    pub fn sxb(&self) -> XbarRef {
        let dim = self.ord[0];
        XbarRef {
            dim: dim as u8,
            line: self.shape.line_of(self.special.with(dim, 0), dim) as u32,
        }
    }

    /// The detour crossbar.
    pub fn dxb(&self) -> XbarRef {
        let dim = self.ord[0];
        XbarRef {
            dim: dim as u8,
            line: self.shape.line_of(self.detour.with(dim, 0), dim) as u32,
        }
    }

    /// Whether the scheme is the paper's deadlock-free one (D-XB = S-XB).
    pub fn deadlock_free(&self) -> bool {
        self.sxb() == self.dxb()
    }

    /// The special-line coordinate values (meaningful in `ord[1..]`).
    pub fn special_line(&self) -> Coord {
        self.special
    }

    /// The detour-line coordinate values (meaningful in `ord[1..]`).
    pub fn detour_line(&self) -> Coord {
        self.detour
    }

    /// Whether `c` lies on the S-XB's line (agrees with the special line in
    /// every non-first dimension).
    pub fn on_special_line(&self, c: Coord) -> bool {
        self.ord[1..]
            .iter()
            .all(|&d| c.get(d) == self.special.get(d))
    }

    /// Whether `c` lies on the D-XB's line.
    pub fn on_detour_line(&self, c: Coord) -> bool {
        self.ord[1..]
            .iter()
            .all(|&d| c.get(d) == self.detour.get(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_fault::FaultSite;
    use mdx_topology::XbarRef;

    fn fig2() -> Shape {
        Shape::fig2()
    }

    #[test]
    fn fault_free_defaults() {
        let cfg = RoutingConfig::fault_free(fig2());
        assert_eq!(cfg.order(), &[0, 1]);
        assert_eq!(cfg.sxb(), XbarRef { dim: 0, line: 0 });
        assert_eq!(cfg.dxb(), cfg.sxb());
        assert!(cfg.deadlock_free());
        assert!(cfg.on_special_line(Coord::new(&[3, 0])));
        assert!(!cfg.on_special_line(Coord::new(&[0, 1])));
    }

    #[test]
    fn router_fault_moves_special_line_away() {
        let shape = fig2();
        // Faulty router at (2, 0): the special line must avoid y = 0.
        let r = shape.index_of(Coord::new(&[2, 0]));
        let cfg =
            RoutingConfig::for_faults(&shape, &FaultSet::single(FaultSite::Router(r))).unwrap();
        assert_eq!(cfg.order(), &[0, 1]);
        assert_ne!(cfg.special_line().get(1), 0);
        assert!(cfg.deadlock_free());
    }

    #[test]
    fn x_xbar_fault_keeps_order_but_moves_line() {
        let shape = fig2();
        let fx = XbarRef { dim: 0, line: 0 };
        let cfg =
            RoutingConfig::for_faults(&shape, &FaultSet::single(FaultSite::Xbar(fx))).unwrap();
        assert_eq!(cfg.order(), &[0, 1]);
        assert_ne!(cfg.sxb().line, 0);
    }

    #[test]
    fn y_xbar_fault_flips_dimension_order() {
        let shape = fig2();
        let fy = XbarRef { dim: 1, line: 2 };
        let cfg =
            RoutingConfig::for_faults(&shape, &FaultSet::single(FaultSite::Xbar(fy))).unwrap();
        assert_eq!(cfg.order(), &[1, 0]);
        assert_eq!(cfg.sxb().dim, 1);
        assert_ne!(cfg.sxb().line, 2);
    }

    #[test]
    fn pe_fault_changes_nothing() {
        let shape = fig2();
        let cfg = RoutingConfig::for_faults(&shape, &FaultSet::single(FaultSite::Pe(5))).unwrap();
        assert_eq!(cfg, RoutingConfig::fault_free(shape));
    }

    #[test]
    fn separate_dxb_differs() {
        let cfg = RoutingConfig::fault_free(fig2()).with_separate_dxb(&FaultSet::none());
        assert!(!cfg.deadlock_free());
        assert_ne!(cfg.sxb(), cfg.dxb());
        assert_eq!(cfg.sxb().dim, cfg.dxb().dim);
    }

    #[test]
    fn conflicting_xbar_faults_rejected() {
        let shape = fig2();
        let mut f = FaultSet::none();
        f.insert(FaultSite::Xbar(XbarRef { dim: 0, line: 0 }));
        f.insert(FaultSite::Xbar(XbarRef { dim: 1, line: 0 }));
        assert_eq!(
            RoutingConfig::for_faults(&shape, &f),
            Err(ConfigError::ConflictingXbarFaults)
        );
    }

    #[test]
    fn same_dim_double_xbar_fault_is_best_effort_ok() {
        let shape = fig2();
        let mut f = FaultSet::none();
        f.insert(FaultSite::Xbar(XbarRef { dim: 0, line: 0 }));
        f.insert(FaultSite::Xbar(XbarRef { dim: 0, line: 1 }));
        // Same dimension: order is still well-defined.
        let cfg = RoutingConfig::for_faults(&shape, &f).unwrap();
        assert_eq!(cfg.order(), &[0, 1]);
    }

    #[test]
    fn every_single_fault_clears_the_special_line() {
        let shape = Shape::new(&[4, 3, 2]).unwrap();
        let net = mdx_topology::MdCrossbar::build(shape.clone());
        for site in mdx_fault::enumerate_single_faults(&net) {
            let cfg = RoutingConfig::for_faults(&shape, &FaultSet::single(site)).unwrap();
            match site {
                FaultSite::Router(r) => {
                    let c = shape.coord_of(r);
                    // The special line differs from the fault in EVERY
                    // non-first dimension (the convergence condition).
                    for &dim in &cfg.order()[1..] {
                        assert_ne!(cfg.special_line().get(dim), c.get(dim), "{site} dim {dim}");
                    }
                    assert!(!cfg.on_special_line(c));
                }
                FaultSite::Xbar(x) => {
                    assert_eq!(cfg.order()[0], x.dim as usize);
                    assert_ne!(cfg.sxb(), x);
                }
                FaultSite::Pe(_) => {}
            }
            assert!(cfg.deadlock_free());
        }
    }

    #[test]
    fn extent_one_dimension_errors_when_fault_shares_it() {
        let shape = Shape::new(&[4, 1]).unwrap();
        let r = shape.index_of(Coord::new(&[2, 0]));
        assert_eq!(
            RoutingConfig::for_faults(&shape, &FaultSet::single(FaultSite::Router(r))),
            Err(ConfigError::ExtentTooSmall(1))
        );
    }

    #[test]
    fn with_special_line_keeps_dxb_equal() {
        let cfg = RoutingConfig::fault_free(fig2()).with_special_line(Coord::new(&[0, 2]));
        assert_eq!(cfg.sxb(), XbarRef { dim: 0, line: 2 });
        assert!(cfg.deadlock_free());
    }
}
