//! Comparator: fault-tolerant dimension-order routing on the HyperX.
//!
//! HyperX routing in the DF-DIM style (arXiv 2404.04315): each hop jumps
//! straight to the destination's coordinate in one dimension (the clique
//! makes every offset a single link), dimensions resolved in ascending
//! order. Fault tolerance comes from *dimension reordering* — when the
//! ascending-order target router is faulty, the packet fixes the next
//! fixable dimension first and returns to the skipped dimension later, at
//! which point it lands on a physically different router of the same line.
//!
//! Deadlock freedom uses the DF-DIM two-lane discipline rather than the
//! paper's central serialization: in-order hops (no lower dimension left
//! unresolved) ride virtual lane 0, where ascending dimension order keeps
//! the channel dependencies acyclic; fault-driven out-of-order hops escape
//! to lane 1. This is exactly the `Branch::vc` / [`Scheme::max_vcs`]
//! multi-lane seam — the scheme is the zoo's multi-VC representative, so
//! the per-VC occupancy and arbitration model in `mdx-sim` is on its
//! critical path. Multi-fault configurations can still cycle on lane 1
//! (the escape lane is shared); the tournament measures that honestly
//! instead of assuming it away.
//!
//! Like the O1TURN extension this is unicast-only: broadcast interplay with
//! adaptive ordering is out of scope, and non-`Normal` RC values are
//! rejected as protocol violations.

use crate::packet::{Header, RouteChange};
use crate::scheme::{Action, Branch, DropReason, Scheme};
use mdx_fault::{FaultSet, FaultSite};
use mdx_topology::{HyperX, Node};
use std::sync::Arc;

/// Fault-tolerant dimension-order routing over the HyperX cliques.
#[derive(Debug, Clone)]
pub struct HyperXFtRouting {
    net: Arc<HyperX>,
    faults: FaultSet,
}

impl HyperXFtRouting {
    /// Builds the scheme with the given fault registers.
    pub fn new(net: Arc<HyperX>, faults: &FaultSet) -> HyperXFtRouting {
        HyperXFtRouting {
            net,
            faults: faults.clone(),
        }
    }

    /// The network this scheme routes on.
    pub fn network(&self) -> &HyperX {
        &self.net
    }

    fn router_faulty(&self, idx: usize) -> bool {
        self.faults.contains(FaultSite::Router(idx))
    }

    fn route_router(&self, r: usize, header: &Header) -> Action {
        let shape = self.net.shape();
        let c = shape.coord_of(r);
        let dest = header.dest;
        if c == dest {
            if self.faults.contains(FaultSite::Pe(r)) {
                return Action::Drop(DropReason::DestinationFaulty);
            }
            return Action::Forward(vec![Branch::new(Node::Pe(r), *header)]);
        }
        let dest_idx = shape.index_of(dest);
        if self.router_faulty(dest_idx) || self.faults.contains(FaultSite::Pe(dest_idx)) {
            return Action::Drop(DropReason::DestinationFaulty);
        }
        // Ascending dimension order; skip dimensions whose target router is
        // down (it cannot be the destination router — that was checked).
        let diffs: Vec<usize> = (0..shape.d())
            .filter(|&d| c.get(d) != dest.get(d))
            .collect();
        for &d in &diffs {
            let target = c.with(d, dest.get(d));
            let idx = shape.index_of(target);
            if self.router_faulty(idx) {
                continue;
            }
            // Lane discipline: hopping in the lowest unresolved dimension
            // keeps lane 0's ascending-order acyclicity; a hop that skips
            // past a (fault-blocked) lower dimension escapes to lane 1.
            let lane = u8::from(d != diffs[0]);
            return Action::Forward(vec![Branch::on_vc(Node::Router(idx), *header, lane)]);
        }
        // Every fixable dimension's target is down.
        Action::Drop(DropReason::NoUsablePath)
    }
}

impl Scheme for HyperXFtRouting {
    fn name(&self) -> String {
        "hyperx fault-tolerant dimension order (comparator)".to_string()
    }

    fn max_vcs(&self) -> u8 {
        2
    }

    fn decide(&self, at: Node, came_from: Option<Node>, header: &Header) -> Action {
        if header.rc != RouteChange::Normal {
            return Action::Drop(DropReason::ProtocolViolation);
        }
        match at {
            Node::Pe(p) => match came_from {
                None => Action::Forward(vec![Branch::new(Node::Router(p), *header)]),
                Some(Node::Router(_)) => Action::Deliver,
                Some(_) => Action::Drop(DropReason::ProtocolViolation),
            },
            Node::Router(r) => self.route_router(r, header),
            Node::Xbar(_) => Action::Drop(DropReason::ProtocolViolation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_unicast;
    use mdx_topology::{Coord, Shape};

    fn net() -> Arc<HyperX> {
        Arc::new(HyperX::build(Shape::new(&[3, 3]).unwrap()))
    }

    #[test]
    fn all_pairs_delivered_minimally_fault_free() {
        let s = HyperXFtRouting::new(net(), &FaultSet::none());
        let shape = s.network().shape().clone();
        for src in 0..9 {
            for dst in 0..9 {
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                let t = trace_unicast(&s, s.network().graph(), h, src).unwrap();
                assert_eq!(t.steps.last().unwrap().node, Node::Pe(dst));
            }
        }
    }

    #[test]
    fn fault_free_hops_ride_lane_zero() {
        let s = HyperXFtRouting::new(net(), &FaultSet::none());
        let shape = s.network().shape().clone();
        for src in 0..9 {
            for dst in 0..9 {
                if src == dst {
                    continue;
                }
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                if let Action::Forward(b) = s.decide(Node::Router(src), Some(Node::Pe(src)), &h) {
                    assert_eq!(b[0].vc, 0, "fault-free routing is pure ascending order");
                }
            }
        }
    }

    #[test]
    fn intermediate_fault_reorders_and_escapes_to_lane_one() {
        let shape = Shape::new(&[3, 3]).unwrap();
        // (0,0) -> (2,2): the in-order first hop lands on (2,0). Kill it.
        let blocked = shape.index_of(Coord::new(&[2, 0]));
        let faults = FaultSet::single(FaultSite::Router(blocked));
        let s = HyperXFtRouting::new(Arc::new(HyperX::build(shape.clone())), &faults);
        let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[2, 2]));
        let src = shape.index_of(Coord::new(&[0, 0]));
        match s.decide(Node::Router(src), Some(Node::Pe(src)), &h) {
            Action::Forward(b) => {
                // Dimension 1 is fixed first instead, on the escape lane.
                let expect = shape.index_of(Coord::new(&[0, 2]));
                assert_eq!(b[0].to, Node::Router(expect));
                assert_eq!(b[0].vc, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The packet still arrives, avoiding the dead router entirely.
        let t = trace_unicast(&s, s.network().graph(), h, src).unwrap();
        assert_eq!(
            t.steps.last().unwrap().node,
            Node::Pe(shape.index_of(Coord::new(&[2, 2])))
        );
        assert!(t
            .steps
            .iter()
            .all(|step| step.node != Node::Router(blocked)));
    }

    #[test]
    fn dead_destination_is_reported() {
        let shape = Shape::new(&[3, 3]).unwrap();
        let dst = shape.index_of(Coord::new(&[2, 2]));
        let faults = FaultSet::single(FaultSite::Router(dst));
        let s = HyperXFtRouting::new(Arc::new(HyperX::build(shape.clone())), &faults);
        let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[2, 2]));
        assert_eq!(
            s.decide(Node::Router(0), Some(Node::Pe(0)), &h),
            Action::Drop(DropReason::DestinationFaulty)
        );
    }

    #[test]
    fn broadcast_rejected() {
        let s = HyperXFtRouting::new(net(), &FaultSet::none());
        let h = Header::broadcast_request(Coord::new(&[0, 0]));
        assert_eq!(
            s.decide(Node::Pe(0), None, &h),
            Action::Drop(DropReason::ProtocolViolation)
        );
    }
}
