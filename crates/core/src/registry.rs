//! Routing schemes by name.
//!
//! The experiment campaigns identify schemes by stable string ids so a
//! whole run can be replayed from a printed token. This module is the
//! single place those ids are defined:
//!
//! | id | scheme | topology |
//! |----|--------|----------|
//! | `sr2201` | the paper's deadlock-free scheme (D-XB = S-XB) | `mdx` |
//! | `separate-dxb` | the Fig. 9 deadlock-prone variant (D-XB ≠ S-XB) | `mdx` |
//! | `naive-broadcast` | the unserialized Fig. 5 broadcast strawman | `mdx` |
//! | `o1turn` | the O1TURN baseline (no fault tolerance, no broadcast) | `mdx` |
//! | `hyperx-ft` | DF-DIM-style fault-tolerant HyperX routing, 2 lanes | `hyperx` |
//! | `fullmesh-vcfree` | VC-free up*/down* full-mesh routing | `fullmesh` |
//! | `hypercube-avoid` | fault-avoiding bit-fixing, no lanes | `hypercube` |
//!
//! Every scheme is pinned to the topology its deadlock argument is stated
//! over ([`required_topology`]); [`build_scheme_for`] enforces the pairing
//! so a tournament sweep can skip incompatible cells instead of silently
//! routing a clique scheme on a crossbar.

use crate::config::{ConfigError, RoutingConfig};
use crate::fullmesh::FullMeshVcFree;
use crate::hypercube_avoid::HypercubeAvoid;
use crate::hyperx_ft::HyperXFtRouting;
use crate::naive::NaiveBroadcast;
use crate::o1turn::O1TurnRouting;
use crate::scheme::Scheme;
use crate::sr2201::Sr2201Routing;
use mdx_fault::FaultSet;
use mdx_topology::{MdCrossbar, Network};
use std::sync::Arc;

/// The registered scheme ids, in presentation order.
pub const SCHEME_IDS: &[&str] = &[
    "sr2201",
    "separate-dxb",
    "naive-broadcast",
    "o1turn",
    "hyperx-ft",
    "fullmesh-vcfree",
    "hypercube-avoid",
];

/// The topology id a scheme's routing function (and its deadlock-freedom
/// argument) is defined over. `None` for unregistered ids.
pub fn required_topology(id: &str) -> Option<&'static str> {
    match id {
        "sr2201" | "separate-dxb" | "naive-broadcast" | "o1turn" => Some("mdx"),
        "hyperx-ft" => Some("hyperx"),
        "fullmesh-vcfree" => Some("fullmesh"),
        "hypercube-avoid" => Some("hypercube"),
        _ => None,
    }
}

/// Why a scheme could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The id is not in [`SCHEME_IDS`].
    UnknownScheme(String),
    /// The shape/fault combination admits no routing configuration.
    Config(ConfigError),
    /// The scheme is pinned to a different topology than the one supplied.
    TopologyMismatch {
        /// The requested scheme id.
        scheme: String,
        /// The topology the scheme requires.
        requires: &'static str,
        /// The topology that was supplied.
        got: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownScheme(id) => {
                write!(
                    f,
                    "unknown scheme `{id}` (known: {})",
                    SCHEME_IDS.join(", ")
                )
            }
            RegistryError::Config(e) => write!(f, "cannot configure scheme: {e}"),
            RegistryError::TopologyMismatch {
                scheme,
                requires,
                got,
            } => write!(
                f,
                "scheme `{scheme}` requires topology `{requires}`, got `{got}`"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<ConfigError> for RegistryError {
    fn from(e: ConfigError) -> RegistryError {
        RegistryError::Config(e)
    }
}

/// Builds the scheme registered under `id` for the MD crossbar `net` under
/// `faults`. Kept for the crossbar-only callers; ids pinned to other
/// topologies report a [`RegistryError::TopologyMismatch`].
pub fn build_scheme(
    id: &str,
    net: Arc<MdCrossbar>,
    faults: &FaultSet,
) -> Result<Arc<dyn Scheme>, RegistryError> {
    build_scheme_for(id, &Network::Mdx(net), faults)
}

/// Builds the scheme registered under `id` over any [`Network`], enforcing
/// the scheme <-> topology pairing from [`required_topology`].
pub fn build_scheme_for(
    id: &str,
    net: &Network,
    faults: &FaultSet,
) -> Result<Arc<dyn Scheme>, RegistryError> {
    let requires =
        required_topology(id).ok_or_else(|| RegistryError::UnknownScheme(id.to_string()))?;
    if requires != net.kind() {
        return Err(RegistryError::TopologyMismatch {
            scheme: id.to_string(),
            requires,
            got: net.kind().to_string(),
        });
    }
    match (id, net) {
        ("sr2201", Network::Mdx(n)) => Ok(Arc::new(Sr2201Routing::new(n.clone(), faults)?)),
        ("separate-dxb", Network::Mdx(n)) => {
            let cfg = RoutingConfig::for_faults(n.shape(), faults)?.with_separate_dxb(faults);
            Ok(Arc::new(Sr2201Routing::with_config(n.clone(), cfg, faults)))
        }
        ("naive-broadcast", Network::Mdx(n)) => Ok(Arc::new(NaiveBroadcast::new(n.clone()))),
        ("o1turn", Network::Mdx(n)) => Ok(Arc::new(O1TurnRouting::new(n.clone(), 0))),
        ("hyperx-ft", Network::HyperX(n)) => Ok(Arc::new(HyperXFtRouting::new(n.clone(), faults))),
        ("fullmesh-vcfree", Network::HyperX(n)) => {
            Ok(Arc::new(FullMeshVcFree::new(n.clone(), faults, 0)))
        }
        ("hypercube-avoid", Network::Direct(n)) => {
            Ok(Arc::new(HypercubeAvoid::new(n.clone(), faults)))
        }
        // `required_topology` + the kind check above make this unreachable,
        // but a registry should fail closed rather than panic.
        (other, _) => Err(RegistryError::UnknownScheme(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_fault::FaultSite;
    use mdx_topology::Shape;

    fn fig2() -> Arc<MdCrossbar> {
        Arc::new(MdCrossbar::build(Shape::fig2()))
    }

    /// The shape each scheme's pinned topology accepts in these tests.
    fn shape_for(topology: &str) -> Shape {
        if topology == "hypercube" {
            Shape::new(&[2, 2, 2]).unwrap()
        } else {
            Shape::fig2()
        }
    }

    #[test]
    fn every_registered_id_builds_fault_free() {
        for &id in SCHEME_IDS {
            let topology = required_topology(id).unwrap();
            let net = Network::build(topology, shape_for(topology)).unwrap();
            let s = build_scheme_for(id, &net, &FaultSet::none()).unwrap();
            assert!(!s.name().is_empty());
            assert!(s.max_vcs() >= 1);
        }
    }

    #[test]
    fn scheme_ids_have_no_duplicates_and_all_have_topologies() {
        for (i, &id) in SCHEME_IDS.iter().enumerate() {
            assert!(!SCHEME_IDS[i + 1..].contains(&id), "duplicate id {id}");
            assert!(required_topology(id).is_some(), "{id} has no topology");
        }
        assert_eq!(required_topology("nope"), None);
    }

    #[test]
    fn separate_dxb_differs_from_paper_scheme_under_fault() {
        let net = fig2();
        let faults = FaultSet::single(FaultSite::Router(
            net.shape().index_of(mdx_topology::Coord::new(&[1, 0])),
        ));
        let cfg = RoutingConfig::for_faults(net.shape(), &faults)
            .unwrap()
            .with_separate_dxb(&faults);
        assert!(!cfg.deadlock_free());
        assert!(build_scheme("separate-dxb", net, &faults).is_ok());
    }

    #[test]
    fn unknown_id_is_an_error() {
        let err = build_scheme("nope", fig2(), &FaultSet::none())
            .err()
            .unwrap();
        assert!(matches!(err, RegistryError::UnknownScheme(_)));
        assert!(err.to_string().contains("sr2201"));
        assert!(err.to_string().contains("hyperx-ft"));
    }

    #[test]
    fn topology_mismatch_is_an_error() {
        // A clique scheme on the crossbar...
        let err = build_scheme("hyperx-ft", fig2(), &FaultSet::none())
            .err()
            .unwrap();
        assert!(matches!(err, RegistryError::TopologyMismatch { .. }));
        assert!(err.to_string().contains("hyperx"));
        // ...and the paper scheme off it.
        let hx = Network::build("hyperx", Shape::fig2()).unwrap();
        let err = build_scheme_for("sr2201", &hx, &FaultSet::none())
            .err()
            .unwrap();
        assert!(matches!(err, RegistryError::TopologyMismatch { .. }));
    }

    #[test]
    fn config_errors_propagate() {
        // Faulty crossbars in two different dimensions admit no dimension
        // order that clears both.
        let net = fig2();
        let faults: FaultSet = [
            FaultSite::Xbar(mdx_topology::XbarRef { dim: 0, line: 0 }),
            FaultSite::Xbar(mdx_topology::XbarRef { dim: 1, line: 1 }),
        ]
        .into_iter()
        .collect();
        let err = build_scheme("sr2201", net, &faults).err().unwrap();
        assert!(matches!(err, RegistryError::Config(_)));
    }
}
