//! Routing schemes by name.
//!
//! The experiment campaigns identify schemes by stable string ids so a
//! whole run can be replayed from a printed token. This module is the
//! single place those ids are defined:
//!
//! | id | scheme |
//! |----|--------|
//! | `sr2201` | the paper's deadlock-free scheme (D-XB = S-XB) |
//! | `separate-dxb` | the Fig. 9 deadlock-prone variant (D-XB ≠ S-XB) |
//! | `naive-broadcast` | the unserialized Fig. 5 broadcast strawman |
//! | `o1turn` | the O1TURN baseline (no fault tolerance, no broadcast) |

use crate::config::{ConfigError, RoutingConfig};
use crate::naive::NaiveBroadcast;
use crate::o1turn::O1TurnRouting;
use crate::scheme::Scheme;
use crate::sr2201::Sr2201Routing;
use mdx_fault::FaultSet;
use mdx_topology::MdCrossbar;
use std::sync::Arc;

/// The registered scheme ids, in presentation order.
pub const SCHEME_IDS: &[&str] = &["sr2201", "separate-dxb", "naive-broadcast", "o1turn"];

/// Why a scheme could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The id is not in [`SCHEME_IDS`].
    UnknownScheme(String),
    /// The shape/fault combination admits no routing configuration.
    Config(ConfigError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownScheme(id) => {
                write!(
                    f,
                    "unknown scheme `{id}` (known: {})",
                    SCHEME_IDS.join(", ")
                )
            }
            RegistryError::Config(e) => write!(f, "cannot configure scheme: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<ConfigError> for RegistryError {
    fn from(e: ConfigError) -> RegistryError {
        RegistryError::Config(e)
    }
}

/// Builds the scheme registered under `id` for `net` under `faults`.
pub fn build_scheme(
    id: &str,
    net: Arc<MdCrossbar>,
    faults: &FaultSet,
) -> Result<Arc<dyn Scheme>, RegistryError> {
    match id {
        "sr2201" => Ok(Arc::new(Sr2201Routing::new(net, faults)?)),
        "separate-dxb" => {
            let cfg = RoutingConfig::for_faults(net.shape(), faults)?.with_separate_dxb(faults);
            Ok(Arc::new(Sr2201Routing::with_config(net, cfg, faults)))
        }
        "naive-broadcast" => Ok(Arc::new(NaiveBroadcast::new(net))),
        "o1turn" => Ok(Arc::new(O1TurnRouting::new(net, 0))),
        other => Err(RegistryError::UnknownScheme(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_fault::FaultSite;
    use mdx_topology::Shape;

    fn fig2() -> Arc<MdCrossbar> {
        Arc::new(MdCrossbar::build(Shape::fig2()))
    }

    #[test]
    fn every_registered_id_builds_fault_free() {
        for &id in SCHEME_IDS {
            let s = build_scheme(id, fig2(), &FaultSet::none()).unwrap();
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn separate_dxb_differs_from_paper_scheme_under_fault() {
        let net = fig2();
        let faults = FaultSet::single(FaultSite::Router(
            net.shape().index_of(mdx_topology::Coord::new(&[1, 0])),
        ));
        let cfg = RoutingConfig::for_faults(net.shape(), &faults)
            .unwrap()
            .with_separate_dxb(&faults);
        assert!(!cfg.deadlock_free());
        assert!(build_scheme("separate-dxb", net, &faults).is_ok());
    }

    #[test]
    fn unknown_id_is_an_error() {
        let err = build_scheme("nope", fig2(), &FaultSet::none())
            .err()
            .unwrap();
        assert!(matches!(err, RegistryError::UnknownScheme(_)));
        assert!(err.to_string().contains("sr2201"));
    }

    #[test]
    fn config_errors_propagate() {
        // Faulty crossbars in two different dimensions admit no dimension
        // order that clears both.
        let net = fig2();
        let faults: FaultSet = [
            FaultSite::Xbar(mdx_topology::XbarRef { dim: 0, line: 0 }),
            FaultSite::Xbar(mdx_topology::XbarRef { dim: 1, line: 1 }),
        ]
        .into_iter()
        .collect();
        let err = build_scheme("sr2201", net, &faults).err().unwrap();
        assert!(matches!(err, RegistryError::Config(_)));
    }
}
