//! Packet format: header with receiving address and route-change bits
//! (paper Figs. 3 and 4).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mdx_topology::{Coord, Shape, MAX_DIMS};
use serde::{Deserialize, Serialize};

/// The route change (RC) field of the packet header (paper Fig. 4).
///
/// *"The receiving address only becomes effective when the RC bit equals 0.
/// When the RC bit does not equal 0, packets are transmitted to destinations
/// by a special routing."*
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum RouteChange {
    /// RC=0: dimension-order routing to the receiving address.
    Normal = 0,
    /// RC=1: route to the serialized crossbar (S-XB); do not deliver.
    BroadcastRequest = 1,
    /// RC=2: fan out from the S-XB to every PE.
    Broadcast = 2,
    /// RC=3: route to the detour crossbar (D-XB), where RC resets to 0.
    Detour = 3,
}

impl RouteChange {
    /// Decodes the 2-bit field.
    pub fn from_bits(bits: u8) -> Option<RouteChange> {
        match bits {
            0 => Some(RouteChange::Normal),
            1 => Some(RouteChange::BroadcastRequest),
            2 => Some(RouteChange::Broadcast),
            3 => Some(RouteChange::Detour),
            _ => None,
        }
    }

    /// The 2-bit wire encoding.
    pub fn bits(self) -> u8 {
        self as u8
    }
}

impl std::fmt::Display for RouteChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RouteChange::Normal => "normal",
            RouteChange::BroadcastRequest => "broadcast request",
            RouteChange::Broadcast => "broadcast",
            RouteChange::Detour => "detour",
        };
        f.write_str(s)
    }
}

/// A packet header (paper Fig. 3): the RC field plus the receiving address,
/// one coordinate per network dimension.
///
/// The source coordinate is carried for bookkeeping (message matching at the
/// receiver); switches never route on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Header {
    /// Route change field.
    pub rc: RouteChange,
    /// Receiving address (effective when `rc == Normal`).
    pub dest: Coord,
    /// Originating PE coordinate.
    pub src: Coord,
}

impl Header {
    /// A normal point-to-point header.
    pub fn unicast(src: Coord, dest: Coord) -> Header {
        Header {
            rc: RouteChange::Normal,
            dest,
            src,
        }
    }

    /// A broadcast-request header (the destination field is ignored while
    /// RC != 0; we keep the source there for trace readability).
    pub fn broadcast_request(src: Coord) -> Header {
        Header {
            rc: RouteChange::BroadcastRequest,
            dest: src,
            src,
        }
    }

    /// This header with a different RC field — the rewrite switches perform
    /// at the S-XB ("broadcast request" -> "broadcast") and at the D-XB
    /// ("detour" -> "normal").
    #[must_use]
    pub fn with_rc(&self, rc: RouteChange) -> Header {
        Header { rc, ..*self }
    }
}

/// A whole packet: header plus an opaque payload.
///
/// Under cut-through switching the packet is carved into flits; the flit
/// count (header flit + payload flits) is what the simulator streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Routing header.
    pub header: Header,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Bytes carried per flit (a simulator parameter; the SR2201 moved two bytes
/// per link cycle on its 300 MB/s channels).
pub const FLIT_BYTES: usize = 16;

impl Packet {
    /// Creates a packet.
    pub fn new(header: Header, payload: impl Into<Bytes>) -> Packet {
        Packet {
            header,
            payload: payload.into(),
        }
    }

    /// Number of flits the packet occupies: one header flit plus payload.
    pub fn flits(&self) -> usize {
        1 + self.payload.len().div_ceil(FLIT_BYTES)
    }

    /// Serializes header + payload into the wire format used by the NIA:
    /// one RC byte, `d` destination coordinates, `d` source coordinates
    /// (little-endian u16 each), a u32 payload length, then the payload.
    pub fn encode(&self, shape: &Shape) -> Bytes {
        let d = shape.d();
        let mut buf = BytesMut::with_capacity(1 + 4 * d + 4 + self.payload.len());
        buf.put_u8(self.header.rc.bits());
        for dim in 0..d {
            buf.put_u16_le(self.header.dest.get(dim));
        }
        for dim in 0..d {
            buf.put_u16_le(self.header.src.get(dim));
        }
        buf.put_u32_le(self.payload.len() as u32);
        buf.extend_from_slice(&self.payload);
        buf.freeze()
    }

    /// Inverse of [`Packet::encode`].
    pub fn decode(shape: &Shape, mut wire: Bytes) -> Result<Packet, DecodeError> {
        let d = shape.d();
        if wire.len() < 1 + 4 * d + 4 {
            return Err(DecodeError::Truncated);
        }
        let rc = RouteChange::from_bits(wire.get_u8()).ok_or(DecodeError::BadRc)?;
        let mut dest = Coord::ORIGIN;
        for dim in 0..d.min(MAX_DIMS) {
            dest = dest.with(dim, wire.get_u16_le());
        }
        let mut src = Coord::ORIGIN;
        for dim in 0..d.min(MAX_DIMS) {
            src = src.with(dim, wire.get_u16_le());
        }
        if !shape.contains(dest) || !shape.contains(src) {
            return Err(DecodeError::BadAddress);
        }
        let len = wire.get_u32_le() as usize;
        if wire.len() < len {
            return Err(DecodeError::Truncated);
        }
        let payload = wire.split_to(len);
        Ok(Packet {
            header: Header { rc, dest, src },
            payload,
        })
    }
}

/// Errors decoding a wire-format packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the fixed header needs.
    Truncated,
    /// RC field outside 0..=3 (cannot happen for a true 2-bit field; guards
    /// byte-level corruption).
    BadRc,
    /// An address coordinate outside the network shape.
    BadAddress,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "packet truncated"),
            DecodeError::BadRc => write!(f, "invalid RC field"),
            DecodeError::BadAddress => write!(f, "address outside network shape"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rc_bits_roundtrip() {
        for bits in 0..=3u8 {
            let rc = RouteChange::from_bits(bits).unwrap();
            assert_eq!(rc.bits(), bits);
        }
        assert_eq!(RouteChange::from_bits(4), None);
    }

    #[test]
    fn rc_meanings_match_fig4() {
        assert_eq!(RouteChange::Normal.bits(), 0);
        assert_eq!(RouteChange::BroadcastRequest.bits(), 1);
        assert_eq!(RouteChange::Broadcast.bits(), 2);
        assert_eq!(RouteChange::Detour.bits(), 3);
        assert_eq!(RouteChange::Broadcast.to_string(), "broadcast");
    }

    #[test]
    fn header_rewrites() {
        let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[2, 1]));
        assert_eq!(h.rc, RouteChange::Normal);
        let det = h.with_rc(RouteChange::Detour);
        assert_eq!(det.rc, RouteChange::Detour);
        assert_eq!(det.dest, h.dest);
        let back = det.with_rc(RouteChange::Normal);
        assert_eq!(back, h);
    }

    #[test]
    fn flit_count() {
        let h = Header::unicast(Coord::ORIGIN, Coord::ORIGIN);
        assert_eq!(Packet::new(h, Bytes::new()).flits(), 1);
        assert_eq!(Packet::new(h, vec![0u8; 1]).flits(), 2);
        assert_eq!(Packet::new(h, vec![0u8; FLIT_BYTES]).flits(), 2);
        assert_eq!(Packet::new(h, vec![0u8; FLIT_BYTES + 1]).flits(), 3);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let shape = Shape::fig2();
        let h = Header::unicast(Coord::new(&[1, 0]), Coord::new(&[3, 2]));
        let p = Packet::new(h, vec![7u8; 33]);
        let wire = p.encode(&shape);
        let back = Packet::decode(&shape, wire).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn decode_rejects_garbage() {
        let shape = Shape::fig2();
        assert_eq!(
            Packet::decode(&shape, Bytes::from_static(&[0, 1])),
            Err(DecodeError::Truncated)
        );
        // RC=7 invalid.
        let mut bad = BytesMut::new();
        bad.put_u8(7);
        bad.put_slice(&[0u8; 12]);
        assert_eq!(
            Packet::decode(&shape, bad.freeze()),
            Err(DecodeError::BadRc)
        );
        // Address (9, 9) outside 4x3.
        let h = Header::unicast(Coord::new(&[1, 0]), Coord::new(&[3, 2]));
        let p = Packet::new(h, Bytes::new());
        let mut wire = BytesMut::from(&p.encode(&shape)[..]);
        wire[1] = 9;
        wire[3] = 9;
        assert_eq!(
            Packet::decode(&shape, wire.freeze()),
            Err(DecodeError::BadAddress)
        );
    }

    proptest! {
        #[test]
        fn prop_encode_decode(dx in 0u16..4, dy in 0u16..3, sx in 0u16..4, sy in 0u16..3,
                              rc in 0u8..4, payload in proptest::collection::vec(any::<u8>(), 0..100)) {
            let shape = Shape::fig2();
            let h = Header {
                rc: RouteChange::from_bits(rc).unwrap(),
                dest: Coord::new(&[dx, dy]),
                src: Coord::new(&[sx, sy]),
            };
            let p = Packet::new(h, payload);
            prop_assert_eq!(Packet::decode(&shape, p.encode(&shape)).unwrap(), p);
        }
    }
}
