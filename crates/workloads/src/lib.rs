//! # mdx-workloads
//!
//! Deterministic traffic generation for the SR2201 network experiments: the
//! classic synthetic patterns (uniform random, transpose, bit-reversal,
//! bit-complement, shuffle, hotspot, nearest-neighbor), open-loop Bernoulli
//! injection at a configurable offered load, and mixed unicast/broadcast
//! schedules.
//!
//! Everything is seeded ([`rand_chacha`] — a portable, stability-guaranteed
//! generator), so every experiment is reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stream;

pub use stream::{
    default_horizon, PhaseSpec, SpecError, StormSpec, StreamSource, StreamSpec, DEFAULT_DRAIN_SLACK,
};

use mdx_core::Header;
use mdx_fault::FaultSet;
use mdx_sim::InjectSpec;
use mdx_topology::{Coord, Shape};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A destination-selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Uniform random over all other usable PEs.
    UniformRandom,
    /// Matrix transpose: coordinate rotation `(x0, x1, ..) -> (x1, .., x0)`.
    /// For square 2D shapes this is the textbook transpose; the classic
    /// adversary for dimension-order routing.
    Transpose,
    /// Bit reversal of the PE index (requires a power-of-two PE count).
    BitReversal,
    /// Bit complement of the PE index (requires a power-of-two PE count).
    BitComplement,
    /// Perfect shuffle: rotate the PE index bits left by one (requires a
    /// power-of-two PE count).
    Shuffle,
    /// Everyone sends to one hot PE.
    HotSpot {
        /// The popular destination.
        hot: usize,
    },
    /// Send to the +1 neighbor in dimension 0 (wrapping), the friendliest
    /// pattern for any topology.
    NearestNeighbor,
    /// Tornado: halfway around dimension 0 (wrapping) — the classic
    /// worst case for minimal routing on rings/tori.
    Tornado,
    /// Incast: the `fan` PEs following `sink` in index order (wrapping)
    /// all send to `sink`; every other PE stays silent. Unlike
    /// [`TrafficPattern::HotSpot`] (all-to-one), this models the bounded
    /// many-to-one convergence of a reduction or storage burst.
    Incast {
        /// The convergence point.
        sink: usize,
        /// How many PEs send (clamped to the machine size).
        fan: usize,
    },
}

impl TrafficPattern {
    /// The destination for `src`, or `None` when the pattern maps `src` to
    /// itself (the generator then skips the injection).
    pub fn destination(&self, shape: &Shape, src: usize, rng: &mut impl Rng) -> Option<usize> {
        let n = shape.num_pes();
        let dst = match *self {
            TrafficPattern::UniformRandom => {
                if n <= 1 {
                    return None;
                }
                let mut d = rng.gen_range(0..n - 1);
                if d >= src {
                    d += 1;
                }
                d
            }
            TrafficPattern::Transpose => {
                let c = shape.coord_of(src);
                let d = shape.d();
                let mut t = Coord::ORIGIN;
                for dim in 0..d {
                    let from = (dim + 1) % d;
                    // Clamp when extents differ (non-square shapes).
                    let v = c.get(from).min(shape.extent(dim) - 1);
                    t = t.with(dim, v);
                }
                shape.index_of(t)
            }
            TrafficPattern::BitReversal => {
                assert!(n.is_power_of_two(), "bit reversal needs 2^k PEs");
                let bits = n.trailing_zeros();
                (src.reverse_bits() >> (usize::BITS - bits)) & (n - 1)
            }
            TrafficPattern::BitComplement => {
                assert!(n.is_power_of_two(), "bit complement needs 2^k PEs");
                !src & (n - 1)
            }
            TrafficPattern::Shuffle => {
                assert!(n.is_power_of_two(), "shuffle needs 2^k PEs");
                let bits = n.trailing_zeros() as usize;
                ((src << 1) | (src >> (bits - 1))) & (n - 1)
            }
            TrafficPattern::HotSpot { hot } => hot % n,
            TrafficPattern::NearestNeighbor => {
                let c = shape.coord_of(src);
                let e = shape.extent(0);
                shape.index_of(c.with(0, (c.get(0) + 1) % e))
            }
            TrafficPattern::Tornado => {
                let c = shape.coord_of(src);
                let e = shape.extent(0);
                shape.index_of(c.with(0, (c.get(0) + e / 2) % e))
            }
            TrafficPattern::Incast { sink, fan } => {
                let sink = sink % n;
                let fan = fan.min(n - 1);
                // Senders are the `fan` PEs after the sink, wrapping.
                let offset = (src + n - sink) % n;
                if offset == 0 || offset > fan {
                    return None;
                }
                sink
            }
        };
        (dst != src).then_some(dst)
    }

    /// Short name for report rows.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitReversal => "bit-reversal",
            TrafficPattern::BitComplement => "bit-complement",
            TrafficPattern::Shuffle => "shuffle",
            TrafficPattern::HotSpot { .. } => "hotspot",
            TrafficPattern::NearestNeighbor => "nearest-neighbor",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Incast { .. } => "incast",
        }
    }
}

/// Open-loop injection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenLoop {
    /// Probability that each PE injects a packet on each cycle. The offered
    /// load in flits/PE/cycle is `rate * packet_flits`.
    pub rate: f64,
    /// Packet length in flits.
    pub packet_flits: usize,
    /// Injection window in cycles (packets drain afterwards).
    pub window: u64,
    /// RNG seed.
    pub seed: u64,
}

impl OpenLoop {
    /// Offered load in flits per PE per cycle.
    pub fn offered_flits(&self) -> f64 {
        self.rate * self.packet_flits as f64
    }
}

/// Generates an open-loop unicast schedule under `pattern`, skipping PEs
/// that `faults` has taken out of service.
pub fn unicast_schedule(
    shape: &Shape,
    pattern: TrafficPattern,
    cfg: OpenLoop,
    faults: &FaultSet,
) -> Vec<InjectSpec> {
    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
    let mut specs = Vec::new();
    for cycle in 0..cfg.window {
        for src in 0..shape.num_pes() {
            if !faults.pe_usable(src) || !rng.gen_bool(cfg.rate) {
                continue;
            }
            let Some(dst) = pattern.destination(shape, src, &mut rng) else {
                continue;
            };
            if !faults.pe_usable(dst) {
                continue;
            }
            specs.push(InjectSpec {
                src_pe: src,
                header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
                flits: cfg.packet_flits,
                inject_at: cycle,
            });
        }
    }
    specs
}

/// A mixed workload: open-loop unicast traffic plus broadcast requests at a
/// per-PE-per-cycle `broadcast_rate`.
pub fn mixed_schedule(
    shape: &Shape,
    pattern: TrafficPattern,
    cfg: OpenLoop,
    broadcast_rate: f64,
    faults: &FaultSet,
) -> Vec<InjectSpec> {
    let mut specs = unicast_schedule(shape, pattern, cfg, faults);
    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed ^ 0xB0C4_57F0);
    for cycle in 0..cfg.window {
        for src in 0..shape.num_pes() {
            if faults.pe_usable(src) && rng.gen_bool(broadcast_rate) {
                specs.push(InjectSpec {
                    src_pe: src,
                    header: Header::broadcast_request(shape.coord_of(src)),
                    flits: cfg.packet_flits,
                    inject_at: cycle,
                });
            }
        }
    }
    specs
}

/// A single-shot permutation: every usable PE sends one packet at `at`.
pub fn permutation_schedule(
    shape: &Shape,
    pattern: TrafficPattern,
    packet_flits: usize,
    at: u64,
    seed: u64,
    faults: &FaultSet,
) -> Vec<InjectSpec> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut specs = Vec::new();
    for src in 0..shape.num_pes() {
        if !faults.pe_usable(src) {
            continue;
        }
        let Some(dst) = pattern.destination(shape, src, &mut rng) else {
            continue;
        };
        if !faults.pe_usable(dst) {
            continue;
        }
        specs.push(InjectSpec {
            src_pe: src,
            header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
            flits: packet_flits,
            inject_at: at,
        });
    }
    specs
}

/// The live-reconfiguration stress recipe: steady open-loop background
/// traffic plus a synchronized burst of `burst` unicasts at each cycle in
/// `burst_at` (the instants a fault timeline fires), so every epoch of a
/// reconfiguration run has packets in flight to wound, drain, and replay.
///
/// Burst sources rotate deterministically through the usable PEs starting
/// from a per-burst offset, so two bursts at different cycles stress
/// different corners of the machine.
pub fn fault_storm_schedule(
    shape: &Shape,
    cfg: OpenLoop,
    burst_at: &[u64],
    burst: usize,
    faults: &FaultSet,
) -> Vec<InjectSpec> {
    let mut specs = unicast_schedule(shape, TrafficPattern::UniformRandom, cfg, faults);
    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed ^ 0xFA17_5702);
    let n = shape.num_pes();
    for (bi, &at) in burst_at.iter().enumerate() {
        let mut added = 0usize;
        let start = (bi * 7) % n.max(1);
        // One lap over the PEs per burst: a machine with fewer usable PEs
        // than `burst` just sends a smaller burst.
        for step in 0..n {
            if added >= burst {
                break;
            }
            let src = (start + step) % n;
            if !faults.pe_usable(src) {
                continue;
            }
            let Some(dst) = TrafficPattern::UniformRandom.destination(shape, src, &mut rng) else {
                continue;
            };
            if !faults.pe_usable(dst) {
                continue;
            }
            specs.push(InjectSpec {
                src_pe: src,
                header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
                flits: cfg.packet_flits,
                inject_at: at,
            });
            added += 1;
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_fault::FaultSite;
    use proptest::prelude::*;

    fn shape() -> Shape {
        Shape::new(&[4, 4]).unwrap()
    }

    #[test]
    fn transpose_is_an_involution_on_square() {
        let s = shape();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        for src in 0..16 {
            if let Some(d) = TrafficPattern::Transpose.destination(&s, src, &mut rng) {
                let back = TrafficPattern::Transpose
                    .destination(&s, d, &mut rng)
                    .unwrap_or(d);
                assert_eq!(back, src);
            }
        }
    }

    #[test]
    fn bit_patterns_are_permutations() {
        let s = shape();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        for pat in [
            TrafficPattern::BitReversal,
            TrafficPattern::BitComplement,
            TrafficPattern::Shuffle,
        ] {
            let mut seen = std::collections::HashSet::new();
            for src in 0..16 {
                let d = pat.destination(&s, src, &mut rng).unwrap_or(src);
                assert!(seen.insert(d), "{} duplicates {d}", pat.name());
                assert!(d < 16);
            }
        }
    }

    #[test]
    fn nearest_neighbor_wraps() {
        let s = shape();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let d = TrafficPattern::NearestNeighbor
            .destination(&s, 3, &mut rng)
            .unwrap();
        assert_eq!(d, 0); // (3,0) -> (0,0)
    }

    #[test]
    fn tornado_goes_halfway() {
        let s = shape();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let d = TrafficPattern::Tornado
            .destination(&s, 1, &mut rng)
            .unwrap();
        assert_eq!(d, 3); // (1,0) -> (3,0) on extent 4
    }

    #[test]
    fn hotspot_sends_to_hot() {
        let s = shape();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        for src in 0..16 {
            let d = TrafficPattern::HotSpot { hot: 5 }.destination(&s, src, &mut rng);
            assert_eq!(d, (src != 5).then_some(5));
        }
    }

    #[test]
    fn schedule_respects_faults() {
        let s = shape();
        let faults = FaultSet::single(FaultSite::Pe(3));
        let cfg = OpenLoop {
            rate: 0.5,
            packet_flits: 4,
            window: 50,
            seed: 7,
        };
        let specs = unicast_schedule(&s, TrafficPattern::UniformRandom, cfg, &faults);
        assert!(!specs.is_empty());
        for sp in &specs {
            assert_ne!(sp.src_pe, 3);
            assert_ne!(s.index_of(sp.header.dest), 3);
            assert!(sp.inject_at < 50);
        }
    }

    #[test]
    fn schedules_are_deterministic() {
        let s = shape();
        let cfg = OpenLoop {
            rate: 0.3,
            packet_flits: 4,
            window: 30,
            seed: 42,
        };
        let a = mixed_schedule(
            &s,
            TrafficPattern::UniformRandom,
            cfg,
            0.01,
            &FaultSet::none(),
        );
        let b = mixed_schedule(
            &s,
            TrafficPattern::UniformRandom,
            cfg,
            0.01,
            &FaultSet::none(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn fault_storm_bursts_land_on_event_cycles() {
        let s = shape();
        let cfg = OpenLoop {
            rate: 0.05,
            packet_flits: 8,
            window: 100,
            seed: 9,
        };
        let faults = FaultSet::single(FaultSite::Pe(3));
        let specs = fault_storm_schedule(&s, cfg, &[40, 70], 6, &faults);
        for at in [40u64, 70] {
            let burst = specs.iter().filter(|sp| sp.inject_at == at).count();
            // Background traffic can also land on the burst cycle.
            assert!(burst >= 6, "burst at {at} has only {burst} packets");
        }
        for sp in &specs {
            assert_ne!(sp.src_pe, 3);
            assert_ne!(s.index_of(sp.header.dest), 3);
        }
        assert_eq!(specs, fault_storm_schedule(&s, cfg, &[40, 70], 6, &faults));
    }

    #[test]
    fn permutation_schedule_one_per_source() {
        let s = shape();
        let specs = permutation_schedule(&s, TrafficPattern::Transpose, 4, 0, 1, &FaultSet::none());
        // Diagonal PEs map to themselves and are skipped: 16 - 4.
        assert_eq!(specs.len(), 12);
    }

    #[test]
    fn offered_load_accounting() {
        let cfg = OpenLoop {
            rate: 0.25,
            packet_flits: 8,
            window: 1,
            seed: 0,
        };
        assert_eq!(cfg.offered_flits(), 2.0);
    }

    proptest! {
        #[test]
        fn prop_uniform_never_self(src in 0usize..16, seed in 0u64..50) {
            let s = shape();
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let d = TrafficPattern::UniformRandom.destination(&s, src, &mut rng).unwrap();
            prop_assert_ne!(d, src);
            prop_assert!(d < 16);
        }

        #[test]
        fn prop_injection_rate_tracks_config(rate in 0.05f64..0.9, seed in 0u64..20) {
            let s = shape();
            let cfg = OpenLoop { rate, packet_flits: 1, window: 200, seed };
            let specs = unicast_schedule(&s, TrafficPattern::UniformRandom, cfg, &FaultSet::none());
            let expected = rate * 200.0 * 16.0;
            let got = specs.len() as f64;
            // Within 30% of the Bernoulli mean (loose; 3200 trials).
            prop_assert!((got - expected).abs() < expected.mul_add(0.3, 20.0),
                         "rate {rate}: got {got}, expected {expected}");
        }
    }
}
