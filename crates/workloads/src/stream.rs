//! Declarative streaming workload specs: offered load over time, compiled
//! into an incremental, seeded packet source.
//!
//! A *workload spec* is a small line-oriented text file describing an
//! open-loop run — phases of Bernoulli injection under a spatial pattern,
//! burst overlays, fault storms, and a cycle horizon — in the spirit of a
//! timetable compiled into traffic. Parsing is strict and every error
//! carries the line (and field) it came from.
//!
//! ## Grammar
//!
//! One directive per line; `#` starts a comment; blank lines are ignored.
//!
//! ```text
//! seed 42                                  # base RNG seed (default 0)
//! flits 8                                  # default packet length
//! phase 0..2000 uniform rate=0.05          # open-loop window [0, 2000)
//! phase 2000..5000 hotspot:5 rate=0.10
//! burst 2500..2600 incast:5:8 rate=0.5     # overlay on top of phases
//! storm 3000 xbar:0:1 router:2             # faults fire at cycle 3000
//! storm 4000 repair xbar:0:1               # ... and heal at 4000
//! horizon 6000                             # run/drain out to this cycle
//! ```
//!
//! When the `horizon` line is omitted it defaults to the last phase end
//! plus drain headroom ([`default_horizon`]) so in-flight packets can
//! still finish; declare it explicitly to cap a saturated run.
//!
//! Patterns: `uniform`, `transpose`, `bitrev`, `bitcomp`, `shuffle`,
//! `neighbor`, `tornado`, `hotspot:PE`, `incast:SINK[:FAN]` (FAN defaults
//! to 4). Fault sites: `xbar:DIM:LINE`, `router:IDX`, `pe:IDX`.
//!
//! `phase` and `burst` are the same machinery — independent injection
//! processes that superpose — split into two keywords so a spec reads as
//! "sustained load" plus "transients". Windows are half-open `[start, end)`
//! and may overlap freely.
//!
//! Compilation ([`StreamSpec::source`]) yields a [`StreamSource`]: a
//! [`TrafficSource`] that generates packets lazily, cycle by cycle, with
//! one independent [`ChaCha12Rng`] stream per phase — so the schedule is
//! bit-identical no matter how the engine batches its pulls, and an
//! unbounded horizon never materializes as one giant packet list.

use crate::TrafficPattern;
use mdx_core::Header;
use mdx_fault::{FaultSet, FaultSite, FaultTimeline};
use mdx_sim::{InjectSpec, TrafficSource};
use mdx_topology::{Shape, XbarRef};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A parse or validation error, addressed to the offending spec line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number in the spec text (0 when the spec was built
    /// programmatically).
    pub line: usize,
    /// The field or token at fault, when narrower than the whole line.
    pub field: String,
    /// What went wrong.
    pub msg: String,
}

impl SpecError {
    fn new(line: usize, field: &str, msg: impl Into<String>) -> SpecError {
        SpecError {
            line,
            field: field.to_string(),
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "workload spec")?;
        if self.line > 0 {
            write!(f, " line {}", self.line)?;
        }
        if !self.field.is_empty() {
            write!(f, ": {}", self.field)?;
        }
        write!(f, ": {}", self.msg)
    }
}

impl std::error::Error for SpecError {}

/// Flat drain headroom (cycles) granted past the last phase end when a
/// spec omits its `horizon` line; 25% of the traffic window is added on
/// top. Without headroom an implicit horizon coincides with the final
/// injection cycle, so any packet still in flight would end the run as
/// `cycle-limit` instead of letting it complete.
pub const DEFAULT_DRAIN_SLACK: u64 = 256;

/// The horizon a spec gets when it declares none: the last phase end
/// plus 25% of the traffic window plus [`DEFAULT_DRAIN_SLACK`].
pub fn default_horizon(traffic_end: u64) -> u64 {
    traffic_end
        .saturating_add(traffic_end / 4)
        .saturating_add(DEFAULT_DRAIN_SLACK)
}

/// One injection window: open-loop Bernoulli traffic under a pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// First cycle of the window (inclusive).
    pub start: u64,
    /// End of the window (exclusive).
    pub end: u64,
    /// Destination-selection rule.
    pub pattern: TrafficPattern,
    /// Per-PE-per-cycle injection probability, in `(0, 1]`.
    pub rate: f64,
    /// Packet length in flits.
    pub flits: usize,
    /// Declared with the `burst` keyword (an overlay transient) rather
    /// than `phase` (sustained load). Purely descriptive; both superpose.
    pub burst: bool,
    /// Source line in the spec text (0 if built programmatically).
    pub line: usize,
}

/// One fault-storm instant: sites injected (or repaired) at a cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StormSpec {
    /// Cycle the event fires.
    pub at: u64,
    /// Repair instead of inject.
    pub repair: bool,
    /// The affected sites.
    pub sites: Vec<FaultSite>,
    /// Source line in the spec text (0 if built programmatically).
    pub line: usize,
}

/// A parsed streaming workload spec. Build one with [`StreamSpec::parse`]
/// and compile it against a machine with [`StreamSpec::source`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Base RNG seed; each phase derives an independent stream from it.
    pub seed: u64,
    /// Default packet length for phases without a `flits=` override.
    pub default_flits: usize,
    /// Injection windows (phases and bursts, in declaration order).
    pub phases: Vec<PhaseSpec>,
    /// Fault storms, in declaration order.
    pub storms: Vec<StormSpec>,
    /// Cycle horizon: the run simulates (and drains) out to here.
    pub horizon: u64,
}

fn parse_u64(line: usize, field: &str, tok: &str) -> Result<u64, SpecError> {
    tok.parse::<u64>()
        .map_err(|_| SpecError::new(line, field, format!("expected a number, got '{tok}'")))
}

fn parse_usize(line: usize, field: &str, tok: &str) -> Result<usize, SpecError> {
    tok.parse::<usize>()
        .map_err(|_| SpecError::new(line, field, format!("expected a number, got '{tok}'")))
}

fn parse_window(line: usize, tok: &str) -> Result<(u64, u64), SpecError> {
    let Some((a, b)) = tok.split_once("..") else {
        return Err(SpecError::new(
            line,
            "window",
            format!("expected START..END, got '{tok}'"),
        ));
    };
    let start = parse_u64(line, "window start", a)?;
    let end = parse_u64(line, "window end", b)?;
    if end <= start {
        return Err(SpecError::new(
            line,
            "window",
            format!("empty window {start}..{end} (end must exceed start)"),
        ));
    }
    Ok((start, end))
}

fn parse_pattern(line: usize, tok: &str) -> Result<TrafficPattern, SpecError> {
    let mut parts = tok.split(':');
    let head = parts.next().unwrap_or("");
    let pat = match head {
        "uniform" => TrafficPattern::UniformRandom,
        "transpose" => TrafficPattern::Transpose,
        "bitrev" => TrafficPattern::BitReversal,
        "bitcomp" => TrafficPattern::BitComplement,
        "shuffle" => TrafficPattern::Shuffle,
        "neighbor" => TrafficPattern::NearestNeighbor,
        "tornado" => TrafficPattern::Tornado,
        "hotspot" => {
            let hot = parts
                .next()
                .ok_or_else(|| SpecError::new(line, "pattern", "hotspot needs a PE: hotspot:PE"))?;
            TrafficPattern::HotSpot {
                hot: parse_usize(line, "hotspot PE", hot)?,
            }
        }
        "incast" => {
            let sink = parts.next().ok_or_else(|| {
                SpecError::new(line, "pattern", "incast needs a sink: incast:SINK[:FAN]")
            })?;
            let sink = parse_usize(line, "incast sink", sink)?;
            let fan = match parts.next() {
                Some(f) => parse_usize(line, "incast fan", f)?,
                None => 4,
            };
            TrafficPattern::Incast { sink, fan }
        }
        other => {
            return Err(SpecError::new(
                line,
                "pattern",
                format!(
                    "unknown pattern '{other}' (expected uniform|transpose|bitrev|bitcomp|\
                     shuffle|neighbor|tornado|hotspot:PE|incast:SINK[:FAN])"
                ),
            ))
        }
    };
    if let Some(extra) = parts.next() {
        return Err(SpecError::new(
            line,
            "pattern",
            format!("trailing ':{extra}' after {tok}"),
        ));
    }
    Ok(pat)
}

fn parse_site(line: usize, tok: &str) -> Result<FaultSite, SpecError> {
    let parts: Vec<&str> = tok.split(':').collect();
    match parts.as_slice() {
        ["xbar", dim, xline] => {
            let dim = parse_usize(line, "xbar dim", dim)?;
            let dim = u8::try_from(dim).map_err(|_| {
                SpecError::new(line, "xbar dim", format!("dimension {dim} too large"))
            })?;
            let xline = parse_u64(line, "xbar line", xline)? as u32;
            Ok(FaultSite::Xbar(XbarRef { dim, line: xline }))
        }
        ["router", idx] => Ok(FaultSite::Router(parse_usize(line, "router index", idx)?)),
        ["pe", idx] => Ok(FaultSite::Pe(parse_usize(line, "pe index", idx)?)),
        _ => Err(SpecError::new(
            line,
            "site",
            format!("expected xbar:DIM:LINE, router:IDX, or pe:IDX, got '{tok}'"),
        )),
    }
}

impl StreamSpec {
    /// Parses the line-oriented spec text. Errors carry the 1-based line
    /// number and the field at fault.
    pub fn parse(text: &str) -> Result<StreamSpec, SpecError> {
        let mut seed = 0u64;
        let mut default_flits = 8usize;
        let mut phases = Vec::new();
        let mut storms: Vec<StormSpec> = Vec::new();
        let mut horizon: Option<u64> = None;
        for (i, raw) in text.lines().enumerate() {
            let ln = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks[0] {
                "seed" => {
                    let [_, v] = toks.as_slice() else {
                        return Err(SpecError::new(ln, "seed", "expected: seed N"));
                    };
                    seed = parse_u64(ln, "seed", v)?;
                }
                "flits" => {
                    let [_, v] = toks.as_slice() else {
                        return Err(SpecError::new(ln, "flits", "expected: flits N"));
                    };
                    default_flits = parse_usize(ln, "flits", v)?;
                    if default_flits == 0 {
                        return Err(SpecError::new(ln, "flits", "packets need at least 1 flit"));
                    }
                }
                kw @ ("phase" | "burst") => {
                    if toks.len() < 3 {
                        return Err(SpecError::new(
                            ln,
                            kw,
                            format!("expected: {kw} START..END PATTERN rate=R [flits=N]"),
                        ));
                    }
                    let (start, end) = parse_window(ln, toks[1])?;
                    let pattern = parse_pattern(ln, toks[2])?;
                    let mut rate: Option<f64> = None;
                    let mut flits = default_flits;
                    for kv in &toks[3..] {
                        let Some((k, v)) = kv.split_once('=') else {
                            return Err(SpecError::new(
                                ln,
                                kv,
                                "expected key=value (rate=R or flits=N)",
                            ));
                        };
                        match k {
                            "rate" => {
                                let r: f64 = v.parse().map_err(|_| {
                                    SpecError::new(
                                        ln,
                                        "rate",
                                        format!("expected a number, got '{v}'"),
                                    )
                                })?;
                                if !(r > 0.0 && r <= 1.0) {
                                    return Err(SpecError::new(
                                        ln,
                                        "rate",
                                        format!("rate must be in (0, 1], got {v}"),
                                    ));
                                }
                                rate = Some(r);
                            }
                            "flits" => {
                                flits = parse_usize(ln, "flits", v)?;
                                if flits == 0 {
                                    return Err(SpecError::new(
                                        ln,
                                        "flits",
                                        "packets need at least 1 flit",
                                    ));
                                }
                            }
                            other => {
                                return Err(SpecError::new(
                                    ln,
                                    other,
                                    "unknown key (expected rate= or flits=)",
                                ));
                            }
                        }
                    }
                    let Some(rate) = rate else {
                        return Err(SpecError::new(ln, "rate", format!("{kw} requires rate=R")));
                    };
                    phases.push(PhaseSpec {
                        start,
                        end,
                        pattern,
                        rate,
                        flits,
                        burst: kw == "burst",
                        line: ln,
                    });
                }
                "storm" => {
                    if toks.len() < 3 {
                        return Err(SpecError::new(
                            ln,
                            "storm",
                            "expected: storm AT [repair] SITE...",
                        ));
                    }
                    let at = parse_u64(ln, "storm cycle", toks[1])?;
                    let (repair, rest) = if toks[2] == "repair" {
                        (true, &toks[3..])
                    } else {
                        (false, &toks[2..])
                    };
                    if rest.is_empty() {
                        return Err(SpecError::new(ln, "storm", "needs at least one site"));
                    }
                    let sites = rest
                        .iter()
                        .map(|t| parse_site(ln, t))
                        .collect::<Result<Vec<_>, _>>()?;
                    storms.push(StormSpec {
                        at,
                        repair,
                        sites,
                        line: ln,
                    });
                }
                "horizon" => {
                    let [_, v] = toks.as_slice() else {
                        return Err(SpecError::new(ln, "horizon", "expected: horizon N"));
                    };
                    horizon = Some(parse_u64(ln, "horizon", v)?);
                }
                other => {
                    return Err(SpecError::new(
                        ln,
                        other,
                        "unknown directive (expected seed|flits|phase|burst|storm|horizon)",
                    ));
                }
            }
        }
        if phases.is_empty() {
            return Err(SpecError::new(0, "", "spec declares no phase or burst"));
        }
        let traffic_end = phases.iter().map(|p| p.end).max().unwrap_or(0);
        let horizon = horizon.unwrap_or_else(|| default_horizon(traffic_end));
        if horizon < traffic_end {
            return Err(SpecError::new(
                0,
                "horizon",
                format!("horizon {horizon} ends before the last phase ({traffic_end})"),
            ));
        }
        for s in &storms {
            if s.at >= horizon {
                return Err(SpecError::new(
                    s.line,
                    "storm",
                    format!("storm at cycle {} is past the horizon {horizon}", s.at),
                ));
            }
        }
        let spec = StreamSpec {
            seed,
            default_flits,
            phases,
            storms,
            horizon,
        };
        Ok(spec)
    }

    /// Checks the spec against a concrete machine shape (pattern indices
    /// in range, power-of-two requirements).
    pub fn validate(&self, shape: &Shape) -> Result<(), SpecError> {
        let n = shape.num_pes();
        let pow2 = n.is_power_of_two();
        for p in &self.phases {
            match p.pattern {
                TrafficPattern::HotSpot { hot } if hot >= n => {
                    return Err(SpecError::new(
                        p.line,
                        "hotspot PE",
                        format!("PE {hot} out of range for {n} PEs"),
                    ));
                }
                TrafficPattern::Incast { sink, fan } => {
                    if sink >= n {
                        return Err(SpecError::new(
                            p.line,
                            "incast sink",
                            format!("PE {sink} out of range for {n} PEs"),
                        ));
                    }
                    if fan == 0 {
                        return Err(SpecError::new(p.line, "incast fan", "fan must be >= 1"));
                    }
                }
                TrafficPattern::BitReversal
                | TrafficPattern::BitComplement
                | TrafficPattern::Shuffle
                    if !pow2 =>
                {
                    return Err(SpecError::new(
                        p.line,
                        "pattern",
                        format!("{} needs a power-of-two PE count, machine has {n}", {
                            p.pattern.name()
                        }),
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The storms as a [`FaultTimeline`] (events sorted by cycle), ready
    /// for the live-reconfiguration controller. Empty if no storms.
    pub fn timeline(&self) -> FaultTimeline {
        let mut storms: Vec<&StormSpec> = self.storms.iter().collect();
        storms.sort_by_key(|s| s.at);
        let mut tl = FaultTimeline::new();
        for s in storms {
            for &site in &s.sites {
                tl = if s.repair {
                    tl.repair(site, s.at)
                } else {
                    tl.inject(site, s.at)
                };
            }
        }
        tl
    }

    /// Last cycle (exclusive) at which any phase can inject.
    pub fn traffic_end(&self) -> u64 {
        self.phases.iter().map(|p| p.end).max().unwrap_or(0)
    }

    /// Expected offered packets across the whole spec for `usable_pes`
    /// in-service PEs (Bernoulli mean; incast phases offer from the fan
    /// only).
    pub fn expected_offered(&self, usable_pes: usize) -> f64 {
        self.phases
            .iter()
            .map(|p| {
                let senders = match p.pattern {
                    TrafficPattern::Incast { fan, .. } => fan.min(usable_pes),
                    _ => usable_pes,
                };
                p.rate * (p.end - p.start) as f64 * senders as f64
            })
            .sum()
    }

    /// Compiles the spec into an incremental packet source for `shape`,
    /// skipping PEs `faults` has taken out of service. `seed_mix` is
    /// XOR-folded into the spec seed so the same spec text can drive
    /// distinct (but individually reproducible) runs — pass the scenario
    /// seed, or 0.
    pub fn source(
        &self,
        shape: &Shape,
        faults: &FaultSet,
        seed_mix: u64,
    ) -> Result<StreamSource, SpecError> {
        self.validate(shape)?;
        let phases = self
            .phases
            .iter()
            .enumerate()
            .map(|(i, p)| PhaseRt {
                spec: p.clone(),
                rng: ChaCha12Rng::seed_from_u64(
                    (self.seed ^ seed_mix) ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_97F4_A7C5),
                ),
            })
            .collect();
        Ok(StreamSource {
            shape: shape.clone(),
            faults: faults.clone(),
            phases,
            cursor: 0,
            traffic_end: self.traffic_end(),
            pending: VecDeque::new(),
            offered: 0,
        })
    }
}

/// One phase at generation time: its spec plus an independent RNG stream,
/// consumed strictly in cycle order so pull batching cannot perturb it.
#[derive(Debug, Clone)]
struct PhaseRt {
    spec: PhaseSpec,
    rng: ChaCha12Rng,
}

/// A compiled [`StreamSpec`]: generates packets lazily, cycle by cycle.
/// Implements [`TrafficSource`], so the engine consumes it incrementally;
/// memory stays bounded by the in-flight window rather than the horizon.
#[derive(Debug, Clone)]
pub struct StreamSource {
    shape: Shape,
    faults: FaultSet,
    phases: Vec<PhaseRt>,
    /// Next cycle to generate.
    cursor: u64,
    /// No phase injects at or past this cycle.
    traffic_end: u64,
    /// Generated but not yet pulled, in nondecreasing `inject_at` order.
    pending: VecDeque<InjectSpec>,
    offered: usize,
}

impl StreamSource {
    /// Runs every phase's generator for one cycle.
    fn gen_cycle(&mut self, cycle: u64) {
        let StreamSource {
            shape,
            faults,
            phases,
            pending,
            ..
        } = self;
        let n = shape.num_pes();
        for ph in phases.iter_mut() {
            if cycle < ph.spec.start || cycle >= ph.spec.end {
                continue;
            }
            for src in 0..n {
                if !faults.pe_usable(src) || !ph.rng.gen_bool(ph.spec.rate) {
                    continue;
                }
                let Some(dst) = ph.spec.pattern.destination(shape, src, &mut ph.rng) else {
                    continue;
                };
                if !faults.pe_usable(dst) {
                    continue;
                }
                pending.push_back(InjectSpec {
                    src_pe: src,
                    header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
                    flits: ph.spec.flits,
                    inject_at: cycle,
                });
            }
        }
    }

    /// Drains the whole spec into one flat schedule (tests and batch
    /// comparisons; defeats the purpose for long horizons).
    pub fn into_schedule(mut self) -> Vec<InjectSpec> {
        let mut out = Vec::new();
        while self.cursor < self.traffic_end {
            let c = self.cursor;
            self.cursor += 1;
            self.gen_cycle(c);
        }
        out.extend(self.pending.drain(..));
        out
    }
}

impl TrafficSource for StreamSource {
    fn pull(&mut self, now: u64) -> Vec<InjectSpec> {
        while self.cursor <= now && self.cursor < self.traffic_end {
            let c = self.cursor;
            self.cursor += 1;
            self.gen_cycle(c);
        }
        let mut out = Vec::new();
        while let Some(front) = self.pending.front() {
            if front.inject_at > now {
                break;
            }
            out.push(self.pending.pop_front().unwrap());
        }
        self.offered += out.len();
        out
    }

    fn next_arrival(&mut self) -> Option<u64> {
        while self.pending.is_empty() && self.cursor < self.traffic_end {
            let c = self.cursor;
            self.cursor += 1;
            self.gen_cycle(c);
        }
        self.pending.front().map(|s| s.inject_at)
    }

    fn offered(&self) -> usize {
        self.offered
    }
}
