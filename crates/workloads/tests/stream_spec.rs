//! Workload-spec parsing and compilation: malformed specs name the line
//! and field at fault, and compilation is deterministic — the same spec
//! and seed always produce the same schedule, no matter how the source is
//! pulled.

use mdx_fault::{FaultEventKind, FaultSet};
use mdx_sim::TrafficSource;
use mdx_topology::Shape;
use mdx_workloads::{StreamSpec, TrafficPattern};
use proptest::prelude::*;

const GOOD: &str = "\
# two-phase run with a burst and a storm
seed 42
flits 8
phase 0..200 uniform rate=0.05
phase 200..500 hotspot:5 rate=0.10 flits=4
burst 250..260 incast:5:8 rate=0.5
storm 300 xbar:0:1
storm 400 repair xbar:0:1
horizon 800
";

fn shape() -> Shape {
    Shape::new(&[4, 4]).unwrap()
}

#[test]
fn good_spec_parses() {
    let spec = StreamSpec::parse(GOOD).unwrap();
    assert_eq!(spec.seed, 42);
    assert_eq!(spec.default_flits, 8);
    assert_eq!(spec.phases.len(), 3);
    assert_eq!(spec.phases[1].flits, 4);
    assert!(spec.phases[2].burst);
    assert_eq!(
        spec.phases[2].pattern,
        TrafficPattern::Incast { sink: 5, fan: 8 }
    );
    assert_eq!(spec.horizon, 800);
    assert_eq!(spec.storms.len(), 2);
    assert!(spec.storms[1].repair);
    let tl = spec.timeline();
    assert_eq!(tl.events().len(), 2);
    assert_eq!(tl.events()[0].kind, FaultEventKind::Inject);
    assert_eq!(tl.events()[1].at, 400);
    spec.validate(&shape()).unwrap();
}

/// Every malformed line is reported with its 1-based line number and the
/// field at fault.
#[test]
fn malformed_specs_name_line_and_field() {
    let cases: &[(&str, usize, &str)] = &[
        ("phase 0..100 uniform", 1, "rate"),
        ("seed 1\nphase 100..0 uniform rate=0.1", 2, "window"),
        ("phase 0..abc uniform rate=0.1", 1, "window end"),
        ("phase 0..100 vortex rate=0.1", 1, "pattern"),
        ("phase 0..100 hotspot rate=0.1", 1, "pattern"),
        ("phase 0..100 uniform rate=1.5", 1, "rate"),
        ("phase 0..100 uniform rate=0.1 flits=0", 1, "flits"),
        ("phase 0..100 uniform rate=0.1 bogus=3", 1, "bogus"),
        ("widget 5", 1, "widget"),
        ("phase 0..100 uniform rate=0.1\nstorm 50", 2, "storm"),
        ("phase 0..100 uniform rate=0.1\nstorm 50 disk:3", 2, "site"),
        (
            "phase 0..100 uniform rate=0.1\nstorm 50 xbar:0:zz",
            2,
            "xbar line",
        ),
        ("flits 0", 1, "flits"),
    ];
    for (text, line, field) in cases {
        let err = StreamSpec::parse(text).expect_err(text);
        assert_eq!(err.line, *line, "line for {text:?}: {err}");
        assert_eq!(err.field, *field, "field for {text:?}: {err}");
    }
}

#[test]
fn whole_spec_errors_use_line_zero() {
    let err = StreamSpec::parse("seed 3\n").unwrap_err();
    assert_eq!(err.line, 0);
    let err = StreamSpec::parse("phase 0..100 uniform rate=0.1\nhorizon 50").unwrap_err();
    assert_eq!((err.line, err.field.as_str()), (0, "horizon"));
    let err = StreamSpec::parse("phase 0..100 uniform rate=0.1\nstorm 100 pe:1\nhorizon 100")
        .map(|s| s.validate(&shape()).map(|_| s))
        .unwrap_err();
    // Storm at the horizon is rejected at parse time with its own line.
    assert_eq!(err.line, 2);
}

/// Omitting `horizon` must leave drain headroom past the last phase end,
/// or every implicit-horizon run with packets still in flight ends as
/// `cycle-limit` instead of completing.
#[test]
fn omitted_horizon_gets_drain_headroom() {
    let spec = StreamSpec::parse("phase 0..100 uniform rate=0.1").unwrap();
    assert_eq!(spec.traffic_end(), 100);
    assert_eq!(spec.horizon, mdx_workloads::default_horizon(100));
    assert!(
        spec.horizon >= 100 + mdx_workloads::DEFAULT_DRAIN_SLACK,
        "horizon {} leaves no drain window",
        spec.horizon
    );
    // An explicit horizon is taken verbatim, even with zero headroom.
    let spec = StreamSpec::parse("phase 0..100 uniform rate=0.1\nhorizon 100").unwrap();
    assert_eq!(spec.horizon, 100);
}

#[test]
fn validation_catches_out_of_range_patterns() {
    let spec = StreamSpec::parse("phase 0..10 hotspot:99 rate=0.5").unwrap();
    let err = spec.validate(&shape()).unwrap_err();
    assert_eq!((err.line, err.field.as_str()), (1, "hotspot PE"));

    let spec = StreamSpec::parse("phase 0..10 bitrev rate=0.5").unwrap();
    let err = spec.validate(&Shape::new(&[3, 4]).unwrap()).unwrap_err();
    assert_eq!(err.field, "pattern");
}

#[test]
fn spec_error_display_is_actionable() {
    let err = StreamSpec::parse("phase 0..100 uniform rate=2.0").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 1"), "{msg}");
    assert!(msg.contains("rate"), "{msg}");
    assert!(msg.contains("(0, 1]"), "{msg}");
}

#[test]
fn pull_batching_does_not_change_the_schedule() {
    let spec = StreamSpec::parse(GOOD).unwrap();
    let s = shape();
    let all = spec
        .source(&s, &FaultSet::none(), 7)
        .unwrap()
        .into_schedule();
    assert!(!all.is_empty());

    // Pull in awkward clumps; the union must be the identical schedule.
    let mut src = spec.source(&s, &FaultSet::none(), 7).unwrap();
    let mut clumped = Vec::new();
    let mut now = 0u64;
    while let Some(next) = src.next_arrival() {
        now = now.max(next) + 13; // skip ahead unevenly
        clumped.extend(src.pull(now));
    }
    assert_eq!(all, clumped);
    assert_eq!(src.offered(), all.len());
}

proptest! {
    /// spec -> compiled schedule -> re-derived summary: for any seed, the
    /// compile is reproducible and the schedule agrees with what the spec
    /// text declares (windows, lengths, destinations).
    #[test]
    fn prop_spec_roundtrip_pins_determinism(seed in 0u64..500, mix in 0u64..50) {
        let text = format!(
            "seed {seed}\nflits 6\nphase 0..120 uniform rate=0.08\n\
             burst 40..60 hotspot:3 rate=0.3 flits=2\nhorizon 200\n"
        );
        let spec = StreamSpec::parse(&text).unwrap();
        let s = shape();
        let a = spec.source(&s, &FaultSet::none(), mix).unwrap().into_schedule();
        let b = spec.source(&s, &FaultSet::none(), mix).unwrap().into_schedule();
        prop_assert_eq!(&a, &b);

        // Re-derive a summary from the compiled schedule and check it
        // against the parsed spec.
        for p in &a {
            prop_assert!(p.inject_at < spec.traffic_end());
            let in_phase = p.inject_at < 120 && p.flits == 6;
            let in_burst = (40..60).contains(&p.inject_at) && p.flits == 2;
            prop_assert!(in_phase || in_burst, "stray packet {p:?}");
            if in_burst && p.flits == 2 {
                prop_assert_eq!(s.index_of(p.header.dest), 3);
            }
        }
        // Offered volume tracks the declared Bernoulli means (loose bound).
        let expected = spec.expected_offered(16);
        let got = a.len() as f64;
        prop_assert!(
            (got - expected).abs() < expected.mul_add(0.5, 30.0),
            "offered {got} vs expected {expected}"
        );
    }

    /// Different seed mixes genuinely decorrelate the traffic.
    #[test]
    fn prop_seed_mix_changes_schedule(mix in 1u64..1000) {
        let spec = StreamSpec::parse(
            "phase 0..100 uniform rate=0.2\nhorizon 150\n"
        ).unwrap();
        let s = shape();
        let base = spec.source(&s, &FaultSet::none(), 0).unwrap().into_schedule();
        let mixed = spec.source(&s, &FaultSet::none(), mix).unwrap().into_schedule();
        prop_assert_ne!(base, mixed);
    }
}

#[test]
fn serde_roundtrip_preserves_spec() {
    let spec = StreamSpec::parse(GOOD).unwrap();
    let json = serde_json::to_string(&spec).unwrap();
    let back: StreamSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);
}
