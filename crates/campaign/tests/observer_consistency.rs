//! Property test: observer totals are consistent with the engine's own
//! accounting, randomized over campaign scenarios (schemes × workloads ×
//! faults × seeds).
//!
//! The telemetry layer ([`mdx_obs`]) trusts the [`SimObserver`] hooks to
//! fire exactly once per lifecycle event. This test pins that contract by
//! attaching the stock [`EventCounts`] observer (through a shared-cell
//! wrapper so the totals are readable after the run) and checking its
//! counters against [`SimResult`]'s independently-derived statistics.

use mdx_campaign::{
    detour_stress_for, run_scenario_instrumented, ObsOptions, Scenario, Workload, CAMPAIGN_SCHEMES,
};
use mdx_core::registry::build_scheme;
use mdx_core::RouteChange;
use mdx_fault::{enumerate_single_faults, FaultTimeline};
use mdx_reconfig::{ReconfigSpec, RecoveryPolicy};
use mdx_sim::{
    DeadlockInfo, EventCounts, InjectSpec, PacketId, SimObserver, Simulator, WaitSnapshot,
};
use mdx_topology::{ChannelId, MdCrossbar, Node};
use mdx_workloads::TrafficPattern;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Forwards every hook to an [`EventCounts`] behind a shared cell, so the
/// totals survive the engine taking ownership of the boxed observer.
struct SharedCounts(Rc<RefCell<EventCounts>>);

impl SimObserver for SharedCounts {
    fn on_inject(&mut self, id: PacketId, spec: &InjectSpec, now: u64) {
        self.0.borrow_mut().on_inject(id, spec, now);
    }
    fn on_hop(&mut self, id: PacketId, at: Node, in_channel: Option<ChannelId>, now: u64) {
        self.0.borrow_mut().on_hop(id, at, in_channel, now);
    }
    fn on_rc_change(
        &mut self,
        id: PacketId,
        at: Node,
        from: RouteChange,
        to: RouteChange,
        now: u64,
    ) {
        self.0.borrow_mut().on_rc_change(id, at, from, to, now);
    }
    fn on_blocked(
        &mut self,
        id: PacketId,
        channel: ChannelId,
        vc: u8,
        holder: Option<PacketId>,
        now: u64,
    ) {
        self.0.borrow_mut().on_blocked(id, channel, vc, holder, now);
    }
    fn on_unblocked(&mut self, id: PacketId, channel: ChannelId, vc: u8, waited: u64, now: u64) {
        self.0
            .borrow_mut()
            .on_unblocked(id, channel, vc, waited, now);
    }
    fn on_flit(&mut self, channel: ChannelId, vc: u8, occupancy: usize, now: u64) {
        self.0.borrow_mut().on_flit(channel, vc, occupancy, now);
    }
    fn on_gather(&mut self, id: PacketId, depth: usize, now: u64) {
        self.0.borrow_mut().on_gather(id, depth, now);
    }
    fn on_emission(&mut self, id: PacketId, depth: usize, now: u64) {
        self.0.borrow_mut().on_emission(id, depth, now);
    }
    fn on_delivery(&mut self, id: PacketId, pe: usize, now: u64) {
        self.0.borrow_mut().on_delivery(id, pe, now);
    }
    fn on_packet_finished(&mut self, id: PacketId, now: u64) {
        self.0.borrow_mut().on_packet_finished(id, now);
    }
    fn on_probe(&mut self, now: u64, waits: &[WaitSnapshot]) {
        self.0.borrow_mut().on_probe(now, waits);
    }
    fn on_deadlock(&mut self, info: &DeadlockInfo) {
        self.0.borrow_mut().on_deadlock(info);
    }
}

/// Builds one random campaign-style scenario from the raw picks: every
/// scheme the campaign sweeps, every workload family, fault-free and
/// single-fault, assorted seeds.
fn make_scenario(
    shape_pick: usize,
    scheme_pick: usize,
    wl_pick: u8,
    fault_pick: u64,
    seed: u64,
) -> Scenario {
    const SHAPES: [&[u16]; 3] = [&[4, 3], &[3, 3], &[2, 2, 2]];
    let scheme = CAMPAIGN_SCHEMES[scheme_pick % CAMPAIGN_SCHEMES.len()];
    // `separate-dxb` needs an extent of 3 in a non-first dimension to place
    // its distinct fault-clear D-XB line, so it skips the 2x2x2 shape.
    let shape_pick = if scheme == "separate-dxb" {
        shape_pick % 2
    } else {
        shape_pick % SHAPES.len()
    };
    let shape_v: Vec<u16> = SHAPES[shape_pick].to_vec();
    let shape = mdx_topology::Shape::new(&shape_v).unwrap();
    let n = shape.num_pes();
    let workload = match wl_pick {
        0 => Workload::Mixed {
            pattern: TrafficPattern::UniformRandom,
            rate: 0.02,
            packet_flits: 8,
            window: 120,
            broadcast_rate: 0.005,
        },
        1 => Workload::BroadcastStorm {
            sources: vec![
                seed as usize % n,
                (seed / 7) as usize % n,
                (seed / 31) as usize % n,
            ],
            flits: 8,
        },
        _ => detour_stress_for(&shape, 8, seed % 16),
    };
    let scenario = Scenario::new(shape_v, scheme, workload, seed);
    // Half the cases run fault-free, half under one random fault.
    if fault_pick.is_multiple_of(2) {
        scenario
    } else {
        let net = MdCrossbar::build(shape);
        let sites = enumerate_single_faults(&net);
        let site = sites[(fault_pick as usize / 2) % sites.len()];
        scenario.with_faults([site])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn observer_totals_match_engine_accounting(
        shape_pick in 0usize..3, scheme_pick in 0usize..3, wl_pick in 0u8..3,
        fault_pick in any::<u64>(), seed in any::<u64>(),
    ) {
        let scenario = make_scenario(shape_pick, scheme_pick, wl_pick, fault_pick, seed);
        let shape = scenario.shape_obj().unwrap();
        let faults = scenario.fault_set().unwrap();
        let net = Arc::new(MdCrossbar::build(shape.clone()));
        let scheme = match build_scheme(&scenario.scheme, net.clone(), &faults) {
            Ok(s) => s,
            // Some scheme/fault combinations are legitimately unbuildable.
            Err(_) => return Ok(()),
        };
        let specs = scenario.specs(&shape, &faults);
        prop_assume!(!specs.is_empty());

        let counts = Rc::new(RefCell::new(EventCounts::default()));
        let mut sim = Simulator::new(net.graph().clone(), scheme, scenario.sim_config());
        sim.set_observer(Box::new(SharedCounts(counts.clone())));
        for &spec in &specs {
            sim.schedule(spec);
        }
        let result = sim.run();
        let c = counts.borrow();
        let stats = &result.stats;

        // Every scheduled packet was injected and ended in exactly one of
        // the three terminal states the stats partition into.
        prop_assert_eq!(c.injected, specs.len());
        prop_assert_eq!(c.injected, stats.delivered + stats.dropped + stats.unfinished);

        // Finish fires exactly once per packet that reached a terminal
        // state, dropped or delivered.
        prop_assert_eq!(c.finished, stats.delivered + stats.dropped);

        // Each delivered packet produced at least one delivery hook (one
        // per leaf for broadcasts), and with no drops the per-leaf count
        // dominates the per-packet one.
        prop_assert!(c.deliveries >= stats.delivered);
        if stats.dropped == 0 {
            prop_assert!(c.deliveries >= c.finished);
        }

        // The flit hook fired once per flit-hop the engine counted.
        prop_assert_eq!(c.flits, stats.flit_hops);

        // Blocked episodes open before they close; a run that ends with
        // packets still waiting simply leaves episodes unclosed.
        prop_assert!(c.blocked >= c.unblocked);

        // The S-XB serialization queue never emits more than it gathered.
        prop_assert!(c.gathered >= c.emissions);

        // The watchdog reports a deadlock to the observer iff the run's
        // outcome is a deadlock.
        prop_assert_eq!(c.deadlocks, usize::from(result.outcome.is_deadlock()));
    }

    /// Attribution conservation vs. the engine's accounting, randomized
    /// over the same scenario space — and, for `policy_pick > 0`, over
    /// *live* fault timelines (quiesce/drain/reprogram/resume under each
    /// of the three recovery policies). Phase sums must equal the
    /// engine's per-packet latency exactly; in particular epoch-pause
    /// cycles are counted exactly once even when a pause window overlaps
    /// blocked episodes, and never appear without a timeline.
    #[test]
    fn attribution_conserves_with_and_without_fault_timelines(
        shape_pick in 0usize..3, scheme_pick in 0usize..3, wl_pick in 0u8..3,
        fault_pick in any::<u64>(), seed in any::<u64>(), policy_pick in 0u8..4,
    ) {
        let mut scenario = make_scenario(shape_pick, scheme_pick, wl_pick, fault_pick, seed);
        let live = policy_pick > 0;
        if live {
            // Turn the static fault set (possibly empty) into a mid-run
            // injection script through the epoch protocol.
            let policy = [
                RecoveryPolicy::Drop,
                RecoveryPolicy::Reinject,
                RecoveryPolicy::Reroute,
            ][(policy_pick - 1) as usize];
            let mut tl = FaultTimeline::new();
            for site in std::mem::take(&mut scenario.faults) {
                tl = tl.inject(site, 40);
            }
            scenario = scenario.with_reconfig(ReconfigSpec::new(tl).with_policy(policy));
        }

        let opts = ObsOptions { attribution: true, ..ObsOptions::default() };
        let (report, telemetry) = match run_scenario_instrumented(&scenario, &opts) {
            Ok(out) => out,
            // Unbuildable scheme/fault combinations and unreprogrammable
            // timelines are legitimate skips, not failures.
            Err(_) => return Ok(()),
        };

        let att = telemetry.attribution.expect("attribution report");
        prop_assert!(att.conserved, "violations: {:?}", att.violations);
        for p in &att.packets {
            prop_assert_eq!(p.phase_sum(), p.latency);
        }
        prop_assert_eq!(att.delivered, report.stats.delivered);

        // Pause cycles only exist on live rows that actually paused.
        if !live {
            prop_assert_eq!(att.totals.epoch_pause, 0);
        }
        // The row summary is a faithful reduction of the full report.
        let row = report.attribution.expect("row attribution");
        prop_assert_eq!(row.latency_total, att.totals.latency);
        prop_assert_eq!(row.epoch_pause, att.totals.epoch_pause);
        prop_assert_eq!(
            row.phases().iter().map(|(_, c)| c).sum::<u64>(),
            row.latency_total
        );
    }
}
