//! Integration: `--attribution` rows and `campaign diff` acceptance
//! criteria — identical-token runs diff clean and byte-identically;
//! fault-free vs. 1-fault runs attribute the latency delta to the detour
//! and blocked phases.

use mdx_campaign::scenario::detour_stress_for;
use mdx_campaign::{
    diff_attribution, run_campaign_with, CampaignResult, ObsOptions, Scenario,
    DEFAULT_DIFF_THRESHOLD,
};
use mdx_fault::FaultSite;
use mdx_topology::{Coord, Shape};

fn attribution_opts() -> ObsOptions {
    ObsOptions {
        attribution: true,
        ..ObsOptions::default()
    }
}

/// A small fig9-style sweep: the detour race on the paper's Fig. 2 shape,
/// optionally with the router fault that forces RC=3 detours.
fn sweep(faulty: bool) -> CampaignResult {
    let shape = Shape::fig2();
    let fault = FaultSite::Router(shape.index_of(Coord::new(&[1, 0])));
    let scenarios: Vec<Scenario> = (0..4)
        .map(|seed| {
            let s = Scenario::new(
                vec![4, 3],
                "sr2201",
                detour_stress_for(&shape, 24, 10 + seed * 7),
                seed,
            );
            if faulty {
                s.with_faults([fault])
            } else {
                s
            }
        })
        .collect();
    run_campaign_with(scenarios, &attribution_opts())
}

#[test]
fn identical_token_runs_diff_clean_and_byte_identical() {
    let a = sweep(false);
    let b = sweep(false);
    assert!(!a.reports.is_empty());
    // Every row carries a conserving attribution section (the runner
    // asserts conservation internally; double-check the flag here).
    for r in &a.reports {
        let att = r.attribution.as_ref().expect("attribution row");
        assert!(att.conserved, "row {} not conserved", r.token);
        assert_eq!(
            att.phases().iter().map(|(_, c)| c).sum::<u64>(),
            att.latency_total,
            "row {} phase totals do not sum to latency",
            r.token
        );
    }
    let d1 = diff_attribution(&a.to_jsonl(), &b.to_jsonl(), DEFAULT_DIFF_THRESHOLD).unwrap();
    let d2 = diff_attribution(&a.to_jsonl(), &b.to_jsonl(), DEFAULT_DIFF_THRESHOLD).unwrap();
    assert!(d1.same_tokens);
    assert!(d1.is_clean(), "identical runs flagged: {}", d1.render());
    assert!(d1
        .shifts
        .iter()
        .all(|s| s.shift == 0.0 && s.cycles_a == s.cycles_b));
    // Byte-identical rendering is the determinism contract CI leans on.
    assert_eq!(d1.render(), d2.render());
    assert_eq!(d1.to_json(), d2.to_json());
}

#[test]
fn fault_delta_lands_in_detour_and_blocked_phases() {
    let clean = sweep(false);
    let faulty = sweep(true);
    let d = diff_attribution(
        &clean.to_jsonl(),
        &faulty.to_jsonl(),
        DEFAULT_DIFF_THRESHOLD,
    )
    .unwrap();

    // The faulty sweep detours: it must report RC=3 transfer cycles and
    // hop overhead the clean sweep has none of.
    assert_eq!(d.a.detour_overhead_hops, 0);
    assert!(d.b.detour_overhead_hops > 0, "faulty sweep never detoured");
    let phase = |name: &str| d.shifts.iter().find(|s| s.phase == name).unwrap();
    assert_eq!(phase("detour_transfer").cycles_a, 0);
    assert!(phase("detour_transfer").cycles_b > 0);
    assert!(phase("detour_transfer").shift > 0.0);

    // The latency the fault added beyond the clean run's phases is fully
    // attributed to detour + blocked + wait phases — base transfer's
    // *share* must shrink, not grow.
    assert!(phase("base_transfer").shift < 0.0);
    let overhead_shift: f64 = [
        "detour_transfer",
        "blocked_normal",
        "blocked_gather",
        "blocked_detour",
        "gather_wait",
        "inject_wait",
        "epoch_pause",
    ]
    .iter()
    .map(|n| phase(n).shift)
    .sum();
    assert!(
        overhead_shift > 0.0,
        "fault overhead not visible in attribution: {}",
        d.render()
    );
}
