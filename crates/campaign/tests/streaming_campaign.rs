//! Acceptance tests for streaming (open-loop) campaign rows: a
//! time-varying workload spec runs to its horizon with windowed
//! telemetry, replays byte-identically from its token, and a mid-stream
//! fault storm drives the epoch protocol with a valid report — all
//! without materializing the schedule up front.

use mdx_campaign::{run_scenario, run_scenario_instrumented, ObsOptions, Scenario, Workload};
use mdx_workloads::StreamSpec;

const SPEC: &str = "\
seed 17
flits 6
phase 0..400 uniform rate=0.04
phase 400..900 hotspot:5 rate=0.01 flits=4
burst 500..520 incast:5:6 rate=0.3
horizon 1500
";

const STORM_SPEC: &str = "\
seed 17
flits 6
phase 0..600 uniform rate=0.04
storm 200 xbar:0:1
storm 420 repair xbar:0:1
horizon 1200
";

fn stream_scenario(text: &str) -> Scenario {
    let spec = StreamSpec::parse(text).expect("spec parses");
    let mut s = Scenario::new(vec![4, 4], "sr2201", Workload::Stream { spec }, 23);
    // The horizon is the run's cycle budget: a saturated stream hits
    // CycleLimit there instead of draining forever.
    s.max_cycles = s.stream_spec().unwrap().horizon;
    s
}

#[test]
fn stream_row_runs_open_loop_with_windowed_telemetry() {
    let scenario = stream_scenario(SPEC);
    let opts = ObsOptions {
        windows: Some(100),
        ..ObsOptions::default()
    };
    let (row, telemetry) = run_scenario_instrumented(&scenario, &opts).expect("stream row runs");

    assert_eq!(row.outcome, "completed", "{}", row.token);
    assert!(row.offered > 0, "the source must offer traffic");
    assert_eq!(
        row.stats.delivered, row.offered,
        "open-loop run must deliver everything it offered"
    );

    let stream = row.stream.expect("windows option yields a stream summary");
    assert_eq!(stream.window, 100);
    assert!(stream.windows >= 9, "expected ~10+ windows: {stream:?}");
    assert!(
        (stream.delivery_ratio - 1.0).abs() < 1e-9,
        "completed run delivers at ratio 1.0: {stream:?}"
    );
    assert_eq!(stream.saturated_at, None, "light load must not saturate");
    assert!(stream.mean_latency > 0.0);

    let windows = telemetry.windows.expect("full window table");
    assert_eq!(windows.dropped_windows, 0);
    let injected: u64 = windows.windows.iter().map(|w| w.injected).sum();
    assert_eq!(injected as usize, row.offered);
    // The burst phase (cycles 500..520) lands in the 500-window.
    let burst_window = windows
        .windows
        .iter()
        .find(|w| w.start == 500)
        .expect("window covering the burst");
    assert!(burst_window.injected > 0);
}

#[test]
fn saturating_hotspot_stream_is_detected() {
    // 16 PEs offering 0.15 packets/cycle each into one sink: far over the
    // sink's drain rate, so the backlog climbs until the horizon cuts the
    // run off and the window telemetry must call it saturated.
    let scenario =
        stream_scenario("seed 3\nflits 4\nphase 0..1000 hotspot:5 rate=0.15\nhorizon 1000\n");
    let (row, _) = run_scenario_instrumented(
        &scenario,
        &ObsOptions {
            windows: Some(100),
            ..ObsOptions::default()
        },
    )
    .expect("saturated stream still runs");

    assert_eq!(row.outcome, "cycle-limit", "{}", row.token);
    let stream = row.stream.expect("stream summary");
    assert!(
        stream.delivery_ratio < 0.95,
        "deliveries must lag offers: {stream:?}"
    );
    assert!(
        stream.saturated_at.is_some(),
        "saturation must be detected: {stream:?}"
    );
    assert!(stream.peak_backlog > 0);
}

#[test]
fn stream_rows_replay_byte_identically_from_their_token() {
    let scenario = stream_scenario(SPEC);
    let token = scenario.token();
    let a = run_scenario(&scenario).expect("stream row runs");
    let b = run_scenario(&Scenario::from_token(&token).expect("token decodes"))
        .expect("stream row replays");
    assert_eq!(a.digest, b.digest, "engine result must replay: {token}");
    assert_eq!(a.offered, b.offered);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "whole row must replay byte-identically: {token}"
    );
}

#[test]
fn mid_stream_storm_drives_the_epoch_protocol() {
    let scenario = stream_scenario(STORM_SPEC);
    let (row, _) = run_scenario_instrumented(
        &scenario,
        &ObsOptions {
            windows: Some(100),
            ..ObsOptions::default()
        },
    )
    .expect("storm stream runs");

    assert_eq!(row.outcome, "completed", "{}", row.token);
    let report = row
        .reconfig
        .as_ref()
        .expect("storm lines imply a reconfig report");
    // Inject at 200 and repair at 420: two epochs, both safe, no loss.
    assert_eq!(report.epochs.len(), 2, "{report:?}");
    assert!(
        report.transition_safe(),
        "mixed-epoch wait cycle: {:?}",
        report.transition
    );
    assert_eq!(report.lost, 0, "reinject must lose no packets");
    assert_eq!(report.victims_total, report.recovered);

    // The storm replays too.
    let again = run_scenario(&Scenario::from_token(&row.token).unwrap()).unwrap();
    assert_eq!(again.digest, row.digest);
    assert_eq!(
        serde_json::to_string(&again.reconfig).unwrap(),
        serde_json::to_string(&row.reconfig).unwrap()
    );
}
