//! Acceptance sweep for live reconfiguration: every single-fault timeline
//! on a 4×4×4 machine, activated mid-run under the `reinject` policy, must
//! complete with no transition-safety violations and no lost packets, and
//! each row's epoch evidence must replay byte-identically from its token.

use mdx_campaign::{enumerate_scenarios, run_campaign, run_scenario, CampaignConfig, WorkloadKind};
use mdx_reconfig::RecoveryPolicy;

fn acceptance_config() -> CampaignConfig {
    CampaignConfig {
        shape: vec![4, 4, 4],
        schemes: vec!["sr2201".to_string()],
        max_faults: 1,
        seeds: 1,
        workloads: vec![WorkloadKind::FaultStorm],
        timeline_at: Some(40),
        timeline_policy: RecoveryPolicy::Reinject,
        max_cycles: 50_000,
        ..CampaignConfig::default()
    }
}

#[test]
fn single_fault_timelines_on_4x4x4_recover_without_loss() {
    let cfg = acceptance_config();
    let scenarios = enumerate_scenarios(&cfg).expect("grid enumerates");
    // Fault-free + 64 routers + 64 PEs + 3×16 crossbars = 177 cells.
    assert!(
        scenarios.len() >= 100,
        "expected at least 100 timeline scenarios, got {}",
        scenarios.len()
    );
    assert!(
        scenarios.iter().all(|s| s.reconfig.is_some()),
        "every cell of a timeline campaign carries a reconfig spec"
    );

    let result = run_campaign(scenarios);
    assert!(
        result.skipped.is_empty(),
        "no single-fault timeline should be unconfigurable under sr2201: {:?}",
        result
            .skipped
            .iter()
            .map(|(s, why)| format!("{s}: {why}"))
            .collect::<Vec<_>>()
    );

    let mut live_rows = 0usize;
    for row in &result.reports {
        assert_eq!(
            row.outcome, "completed",
            "timeline row must complete: {} -> {}",
            row.token, row.outcome
        );
        let report = row
            .reconfig
            .as_ref()
            .expect("timeline rows carry a reconfig report");
        assert!(
            report.transition_safe(),
            "mixed-epoch wait cycle in {}: {:?}",
            row.token,
            report.transition
        );
        assert_eq!(
            report.lost, 0,
            "reinject must lose no packets in {} (victims={}, recovered={})",
            row.token, report.victims_total, report.recovered
        );
        assert_eq!(
            report.victims_total, report.recovered,
            "every wounded packet must be recovered in {}",
            row.token
        );
        if !report.epochs.is_empty() {
            live_rows += 1;
        }
    }
    assert!(
        live_rows > 100,
        "the sweep should exercise a live epoch on (almost) every faulted cell, got {live_rows}"
    );
}

#[test]
fn timeline_rows_replay_byte_identically() {
    let cfg = acceptance_config();
    let scenarios = enumerate_scenarios(&cfg).expect("grid enumerates");
    // A spread of cells: fault-free, and a stride through the fault grid.
    for s in scenarios.iter().step_by(41) {
        let token = s.token();
        let a = run_scenario(s).expect("row runs");
        let b = run_scenario(&mdx_campaign::Scenario::from_token(&token).unwrap())
            .expect("row replays from token");
        assert_eq!(a.digest, b.digest, "engine result must replay: {token}");
        let ra = serde_json::to_string(&a.reconfig).unwrap();
        let rb = serde_json::to_string(&b.reconfig).unwrap();
        assert_eq!(
            ra, rb,
            "reconfig report must replay byte-identically: {token}"
        );
    }
}
