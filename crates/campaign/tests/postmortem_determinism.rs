//! Satellite guarantee: post-mortems are a replay artifact, not a
//! wall-clock artifact. Running the same `MDX1.` token twice with the
//! flight recorder attached must produce byte-identical post-mortem JSON
//! and byte-identical rendered reports.

use mdx_campaign::{run_scenario_instrumented, ObsOptions, Scenario, Workload};
use mdx_obs::DEFAULT_FLIGHT_CAPACITY;

/// The Fig. 5 storm from the crate docs: deadlocks under naive broadcast
/// at seed 0.
fn storm_token() -> String {
    Scenario::new(
        vec![4, 3],
        "naive-broadcast",
        Workload::BroadcastStorm {
            sources: vec![0, 4, 8, 3, 7, 11],
            flits: 16,
        },
        0,
    )
    .token()
}

#[test]
fn same_token_twice_gives_byte_identical_postmortems() {
    let token = storm_token();
    let opts = ObsOptions {
        flight: Some(DEFAULT_FLIGHT_CAPACITY),
        ..ObsOptions::default()
    };
    let run = || {
        let s = Scenario::from_token(&token).expect("token decodes");
        run_scenario_instrumented(&s, &opts).expect("scenario runs")
    };
    let (r1, t1) = run();
    let (r2, t2) = run();

    assert_eq!(r1.outcome, "deadlock", "the storm must deadlock");
    assert_eq!(r1.digest, r2.digest, "engine replay is bit-identical");

    let p1 = t1.postmortem.expect("failed run yields a post-mortem");
    let p2 = t2.postmortem.expect("failed run yields a post-mortem");
    assert_eq!(p1.to_json(), p2.to_json(), "post-mortem JSON diverged");
    assert_eq!(p1.render(), p2.render(), "rendered report diverged");

    // The row embeds the same report the telemetry carries.
    assert_eq!(r1.postmortem.as_ref(), Some(&p1));
    assert_eq!(r2.postmortem.as_ref(), Some(&p2));

    // And the report is substantive: a classified cycle with RC states.
    assert!(!p1.cycle.is_empty());
    assert_eq!(p1.classification, "fig5-naive-broadcast");
    assert!(p1.events_recorded > 0);
}

#[test]
fn completed_runs_carry_no_postmortem() {
    let s = Scenario::new(
        vec![4, 3],
        "sr2201",
        Workload::BroadcastStorm {
            sources: vec![0, 4, 8],
            flits: 16,
        },
        1,
    );
    let opts = ObsOptions {
        flight: Some(DEFAULT_FLIGHT_CAPACITY),
        ..ObsOptions::default()
    };
    let (report, telemetry) = run_scenario_instrumented(&s, &opts).expect("scenario runs");
    assert_eq!(report.outcome, "completed");
    assert!(report.postmortem.is_none());
    assert!(telemetry.postmortem.is_none());

    // The recorder rode along anyway (always-on), without perturbing the
    // replay digest.
    let bare = run_scenario_instrumented(&s, &ObsOptions::default())
        .expect("scenario runs")
        .0;
    assert_eq!(report.digest, bare.digest);
}
