//! Campaign-level metric export: the serializable per-row engine profile
//! and the [`mdx_metrics`] instruments the runner and the serve layer feed.
//!
//! The engine's [`mdx_sim::EngineProfile`] is a measurement (excluded from
//! canonical result serialization and replay digests); [`RowProfile`] is
//! its campaign-row summary — serialized onto JSONL rows for trend
//! tracking, and folded into registry counters by [`EngineMeter`] so a
//! resident server exposes fleet-wide idle-tick/occupancy numbers over
//! Prometheus.

use mdx_metrics::{Counter, Gauge, Histogram, Registry, DEFAULT_LATENCY_BUCKETS_S};
use mdx_sim::{EngineProfile, PhaseSplit, OCCUPANCY_BOUNDS};
use serde::value::Value;
use serde::{de, Deserialize, Serialize};

/// The engine self-profile of one campaign row, in serializable form.
///
/// Wall-clock derived fields (`wall_s`, `cycles_per_sec`) vary with
/// machine load; the tick/occupancy fields are deterministic per token.
/// Carried on [`crate::runner::ScenarioReport`] rows *outside* the replay
/// digest (which hashes only the engine's canonical result). Serialization
/// covers only the deterministic fields — a replayed row's JSONL stays
/// byte-identical regardless of host speed, and the wall-clock fields come
/// back as `0.0` after a round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct RowProfile {
    /// Wall-clock seconds inside the engine's run loop. Not serialized.
    pub wall_s: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Simulated cycles per wall-clock second. Not serialized.
    pub cycles_per_sec: f64,
    /// Engine ticks (executed steps + fast-forwarded cycles).
    pub ticks: u64,
    /// Ticks in which nothing moved.
    pub idle_ticks: u64,
    /// `idle_ticks / ticks` — the event-queue headroom instrument.
    pub idle_tick_fraction: f64,
    /// Discrete events processed per simulated cycle.
    pub events_per_cycle: f64,
    /// In-flight packets per tick, bucketed by
    /// [`mdx_sim::OCCUPANCY_BOUNDS`] (last entry = overflow).
    pub occupancy: Vec<u64>,
    /// Per-phase wall-clock split, when the run had phase timing enabled
    /// ([`crate::ObsOptions::profile_phases`]). Machine-dependent like
    /// `wall_s` — not serialized, lost on a round-trip.
    pub phases: Option<PhaseSplit>,
}

// Hand-written so the machine-dependent wall-clock fields stay off the
// wire: rows replayed from a token must serialize byte-identically to the
// original run (`stream_rows_replay_byte_identically_from_their_token`).
impl Serialize for RowProfile {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (String::from("cycles"), self.cycles.to_value()),
            (String::from("ticks"), self.ticks.to_value()),
            (String::from("idle_ticks"), self.idle_ticks.to_value()),
            (
                String::from("idle_tick_fraction"),
                self.idle_tick_fraction.to_value(),
            ),
            (
                String::from("events_per_cycle"),
                self.events_per_cycle.to_value(),
            ),
            (String::from("occupancy"), self.occupancy.to_value()),
        ])
    }
}

impl Deserialize for RowProfile {
    fn from_value(v: &Value) -> Result<RowProfile, de::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| de::Error::expected("RowProfile map"))?;
        Ok(RowProfile {
            wall_s: 0.0,
            cycles: Deserialize::from_value(de::field(entries, "cycles")?)?,
            cycles_per_sec: 0.0,
            ticks: Deserialize::from_value(de::field(entries, "ticks")?)?,
            idle_ticks: Deserialize::from_value(de::field(entries, "idle_ticks")?)?,
            idle_tick_fraction: Deserialize::from_value(de::field(entries, "idle_tick_fraction")?)?,
            events_per_cycle: Deserialize::from_value(de::field(entries, "events_per_cycle")?)?,
            occupancy: Deserialize::from_value(de::field(entries, "occupancy")?)?,
            phases: None,
        })
    }
}

impl RowProfile {
    /// Summarizes an engine profile into row form.
    pub fn from_engine(p: &EngineProfile) -> RowProfile {
        RowProfile {
            wall_s: p.wall_s,
            cycles: p.cycles,
            cycles_per_sec: p.cycles_per_sec(),
            ticks: p.ticks(),
            idle_ticks: p.idle_ticks(),
            idle_tick_fraction: p.idle_tick_fraction(),
            events_per_cycle: p.events_per_cycle(),
            occupancy: p.occupancy.to_vec(),
            phases: p.phases,
        }
    }
}

/// Registry instruments for engine self-profiles: lifetime counters of
/// cycles/ticks/idle ticks, the running idle-tick fraction, and the
/// active-packet occupancy histogram. Shared by the campaign runner and
/// the serve layer (every `run` row feeds it).
#[derive(Debug, Clone)]
pub struct EngineMeter {
    cycles: Counter,
    ticks: Counter,
    idle_ticks: Counter,
    idle_fraction: Gauge,
    cycles_per_sec: Gauge,
    active_packets: Histogram,
}

impl EngineMeter {
    /// Registers the engine metric family (`mdx_engine_*`) on `reg`.
    pub fn register(reg: &Registry) -> EngineMeter {
        let bounds: Vec<f64> = OCCUPANCY_BOUNDS.iter().map(|&b| b as f64).collect();
        EngineMeter {
            cycles: reg.counter(
                "mdx_engine_cycles_total",
                "Simulated cycles across all runs",
            ),
            ticks: reg.counter(
                "mdx_engine_ticks_total",
                "Engine ticks (executed steps + fast-forwarded cycles) across all runs",
            ),
            idle_ticks: reg.counter(
                "mdx_engine_idle_ticks_total",
                "Engine ticks in which nothing moved — the event-driven refactor's headroom",
            ),
            idle_fraction: reg.gauge(
                "mdx_engine_idle_tick_fraction",
                "Lifetime idle-tick fraction (idle_ticks_total / ticks_total)",
            ),
            cycles_per_sec: reg.gauge(
                "mdx_engine_cycles_per_sec",
                "Simulated cycles per wall-clock second, last completed run",
            ),
            active_packets: reg.histogram(
                "mdx_engine_active_packets",
                "In-flight packets per engine tick",
                &bounds,
            ),
        }
    }

    /// Folds one row's profile into the lifetime instruments.
    pub fn observe(&self, p: &RowProfile) {
        self.cycles.add(p.cycles);
        self.ticks.add(p.ticks);
        self.idle_ticks.add(p.idle_ticks);
        if self.ticks.get() > 0 {
            self.idle_fraction
                .set(self.idle_ticks.get() as f64 / self.ticks.get() as f64);
        }
        if p.cycles_per_sec > 0.0 {
            self.cycles_per_sec.set(p.cycles_per_sec);
        }
        for (i, &n) in p.occupancy.iter().enumerate() {
            // Feed each bucket at a representative value: its upper bound,
            // or just past the last bound for the overflow bucket.
            let v = OCCUPANCY_BOUNDS
                .get(i)
                .map(|&b| b as f64)
                .unwrap_or(OCCUPANCY_BOUNDS[OCCUPANCY_BOUNDS.len() - 1] as f64 + 1.0);
            self.active_packets.observe_n(v, n);
        }
    }
}

/// Registry instruments for the campaign runner: per-row run/serialize
/// latency, rayon worker saturation, and sweep throughput.
#[derive(Debug, Clone)]
pub struct CampaignMeter {
    pub(crate) rows: Counter,
    pub(crate) rows_failed: Counter,
    pub(crate) row_run_seconds: Histogram,
    pub(crate) row_serialize_seconds: Histogram,
    pub(crate) workers_busy: Gauge,
    pub(crate) worker_saturation: Histogram,
    pub(crate) rows_per_sec: Gauge,
    /// Engine self-profile instruments, fed per successful row.
    pub engine: EngineMeter,
}

impl CampaignMeter {
    /// Registers the campaign metric family (`mdx_campaign_*`) plus the
    /// engine family on `reg`.
    pub fn register(reg: &Registry) -> CampaignMeter {
        CampaignMeter {
            rows: reg.counter("mdx_campaign_rows_total", "Campaign rows executed"),
            rows_failed: reg.counter(
                "mdx_campaign_rows_failed_total",
                "Campaign rows skipped as unconfigurable",
            ),
            row_run_seconds: reg.histogram(
                "mdx_campaign_row_run_seconds",
                "Wall-clock per campaign row (simulate + instrument)",
                DEFAULT_LATENCY_BUCKETS_S,
            ),
            row_serialize_seconds: reg.histogram(
                "mdx_campaign_row_serialize_seconds",
                "Wall-clock to serialize one row to JSONL",
                DEFAULT_LATENCY_BUCKETS_S,
            ),
            workers_busy: reg.gauge(
                "mdx_campaign_workers_busy",
                "Rayon workers currently inside a row",
            ),
            worker_saturation: reg.histogram(
                "mdx_campaign_worker_saturation",
                "Busy-worker count sampled at each row start",
                mdx_metrics::DEFAULT_SIZE_BUCKETS,
            ),
            rows_per_sec: reg.gauge(
                "mdx_campaign_rows_per_sec",
                "Rows per second of the last completed sweep",
            ),
            engine: EngineMeter::register(reg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_sim::OCCUPANCY_BUCKETS;

    fn profile() -> RowProfile {
        RowProfile::from_engine(&EngineProfile {
            wall_s: 0.5,
            cycles: 1000,
            steps: 400,
            idle_steps: 100,
            jumped_cycles: 600,
            events: 2000,
            occupancy: {
                let mut occ = [0u64; OCCUPANCY_BUCKETS];
                occ[0] = 600;
                occ[3] = 400;
                occ
            },
            phases: None,
        })
    }

    #[test]
    fn row_profile_summarizes_engine_profile() {
        let p = profile();
        assert_eq!(p.ticks, 1000);
        assert_eq!(p.idle_ticks, 700);
        assert!((p.idle_tick_fraction - 0.7).abs() < 1e-12);
        assert!((p.cycles_per_sec - 2000.0).abs() < 1e-9);
        assert_eq!(p.occupancy.len(), OCCUPANCY_BUCKETS);
        // The deterministic fields round-trip through the row serde; the
        // machine-dependent wall-clock fields stay off the wire and come
        // back zeroed.
        let json = serde_json::to_string(&p).unwrap();
        assert!(!json.contains("wall_s") && !json.contains("cycles_per_sec"));
        let back: RowProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ticks, p.ticks);
        assert_eq!(back.idle_ticks, p.idle_ticks);
        assert_eq!(back.occupancy, p.occupancy);
        assert_eq!(back.wall_s, 0.0);
        assert_eq!(back.cycles_per_sec, 0.0);
        // Two runs of the same token serialize identically even though
        // their wall clocks differ.
        let mut other = p.clone();
        other.wall_s = 99.0;
        other.cycles_per_sec = 1.0;
        assert_eq!(json, serde_json::to_string(&other).unwrap());
    }

    #[test]
    fn engine_meter_accumulates_across_rows() {
        let reg = Registry::new();
        let meter = EngineMeter::register(&reg);
        let p = profile();
        meter.observe(&p);
        meter.observe(&p);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("mdx_engine_cycles_total"), Some(2000));
        assert_eq!(
            snap.counter_value("mdx_engine_idle_ticks_total"),
            Some(1400)
        );
        let frac = snap.gauge_value("mdx_engine_idle_tick_fraction").unwrap();
        assert!((frac - 0.7).abs() < 1e-12);
        let text = snap.render_prometheus();
        assert!(text.contains("mdx_engine_active_packets_bucket"));
        assert!(text.contains("mdx_engine_active_packets_count 2000"));
    }
}
