//! The [`Scenario`] type: one fully-specified simulation run.
//!
//! A scenario pins *everything* an experiment run depends on — topology
//! shape, routing scheme id, fault set, workload, seed, and the engine
//! parameters — so that any campaign row can be replayed bit-identically
//! from its printed token alone (see [`crate::token`]).

use crate::token::{self, TokenError};
use mdx_core::{Header, RouteChange};
use mdx_fault::{FaultEventKind, FaultSet, FaultSite};
use mdx_reconfig::ReconfigSpec;
use mdx_sim::{InjectSpec, SimConfig};
use mdx_topology::{Coord, Network, Shape, TopologyError, DEFAULT_TOPOLOGY, MAX_DIMS};
use mdx_workloads::{
    fault_storm_schedule, mixed_schedule, OpenLoop, StreamSource, StreamSpec, TrafficPattern,
};
use serde::{Deserialize, Serialize};

/// The traffic a scenario offers to the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Open-loop unicast traffic plus Bernoulli broadcast requests
    /// ([`mdx_workloads::mixed_schedule`], the Fig. 10 stress recipe). The
    /// generator seed is the scenario seed.
    Mixed {
        /// Destination-selection rule for the unicast fraction.
        pattern: TrafficPattern,
        /// Per-PE-per-cycle unicast injection probability.
        rate: f64,
        /// Packet length in flits.
        packet_flits: usize,
        /// Injection window in cycles.
        window: u64,
        /// Per-PE-per-cycle broadcast-request probability.
        broadcast_rate: f64,
    },
    /// Simultaneous broadcasts from the listed sources at cycle 0 — the
    /// Fig. 5 recipe that deadlocks unserialized broadcast.
    BroadcastStorm {
        /// Source PEs (unusable or out-of-range entries are skipped).
        sources: Vec<usize>,
        /// Packet length in flits.
        flits: usize,
    },
    /// One broadcast plus one unicast injected `offset` cycles later and
    /// routed so that, under a suitable fault, it takes the detour path —
    /// the Fig. 9 recipe that deadlocks the D-XB ≠ S-XB variant.
    DetourStress {
        /// Broadcast source PE.
        bc_src: usize,
        /// Unicast source PE.
        uni_src: usize,
        /// Unicast destination PE.
        uni_dst: usize,
        /// Packet length in flits (both packets).
        flits: usize,
        /// Unicast injection cycle.
        offset: u64,
    },
    /// A literal injection schedule. Produced by the shrinker; also the
    /// escape hatch for replaying hand-built cases.
    Explicit {
        /// The exact packets to inject.
        specs: Vec<InjectSpec>,
    },
    /// Open-loop uniform background traffic plus a synchronized unicast
    /// burst at every cycle the scenario's fault timeline fires
    /// ([`mdx_workloads::fault_storm_schedule`]) — the live-reconfiguration
    /// stress recipe. Without a timeline it degenerates to plain uniform
    /// traffic.
    FaultStorm {
        /// Per-PE-per-cycle background injection probability.
        rate: f64,
        /// Packet length in flits.
        packet_flits: usize,
        /// Background injection window in cycles.
        window: u64,
        /// Unicasts per burst (one burst per timeline event cycle).
        burst: usize,
    },
    /// An open-loop streaming workload compiled from a declarative
    /// [`StreamSpec`] (phases, bursts, fault storms). Unlike the batch
    /// workloads above it is *not* materialized into a schedule up front:
    /// the runner feeds the engine incrementally through
    /// [`mdx_sim::TrafficSource`], so arbitrarily long horizons cost
    /// memory proportional to in-flight traffic, not offered traffic.
    Stream {
        /// The parsed workload specification.
        spec: StreamSpec,
    },
}

impl Workload {
    /// Short name for report rows.
    pub fn kind(&self) -> &'static str {
        match self {
            Workload::Mixed { .. } => "mixed",
            Workload::BroadcastStorm { .. } => "storm",
            Workload::DetourStress { .. } => "detour",
            Workload::Explicit { .. } => "explicit",
            Workload::FaultStorm { .. } => "fault-storm",
            Workload::Stream { .. } => "stream",
        }
    }
}

/// Errors turning a scenario into a runnable simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The shape vector is not a valid [`Shape`].
    BadShape(String),
    /// A fault site references a component outside the shape.
    BadFault(String),
    /// A streaming workload spec fails validation against the shape.
    BadSpec(String),
    /// The topology id is unknown or rejects the shape.
    BadTopology(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::BadShape(e) => write!(f, "bad shape: {e}"),
            ScenarioError::BadFault(e) => write!(f, "bad fault: {e}"),
            ScenarioError::BadSpec(e) => write!(f, "bad workload spec: {e}"),
            ScenarioError::BadTopology(e) => write!(f, "bad topology: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One fully-specified simulation run.
///
/// Serialization is hand-written rather than derived so that the optional
/// `reconfig` segment is *omitted* when absent — and likewise the
/// `topology` field while it holds the default `"mdx"`: every token minted
/// before live reconfiguration or the scheme zoo existed decodes
/// unchanged, and re-encoding such a scenario reproduces the original
/// token byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Topology extents (one per dimension).
    pub shape: Vec<u16>,
    /// Topology id (see [`mdx_topology::TOPOLOGY_IDS`]); `"mdx"` — the
    /// paper's crossbar — unless the scenario says otherwise.
    pub topology: String,
    /// Routing scheme id (see [`mdx_core::registry`]).
    pub scheme: String,
    /// Faulty components (from cycle 0).
    pub faults: Vec<FaultSite>,
    /// Offered traffic.
    pub workload: Workload,
    /// The run seed: used for workload generation *and* arbitration
    /// tie-breaking, so one number replays the run.
    pub seed: u64,
    /// Engine buffer depth per channel ([`SimConfig::buffer_flits`]).
    pub buffer_flits: usize,
    /// Engine hard cycle limit ([`SimConfig::max_cycles`]).
    pub max_cycles: u64,
    /// Live-reconfiguration script: a fault timeline plus recovery policy,
    /// run through the epoch protocol ([`mdx_reconfig`]). `None` replays as
    /// a plain static run.
    pub reconfig: Option<ReconfigSpec>,
}

impl Serialize for Scenario {
    fn to_value(&self) -> serde::value::Value {
        let mut m = vec![
            ("shape".to_string(), self.shape.to_value()),
            ("scheme".to_string(), self.scheme.to_value()),
            ("faults".to_string(), self.faults.to_value()),
            ("workload".to_string(), self.workload.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("buffer_flits".to_string(), self.buffer_flits.to_value()),
            ("max_cycles".to_string(), self.max_cycles.to_value()),
        ];
        if self.topology != DEFAULT_TOPOLOGY {
            m.push(("topology".to_string(), self.topology.to_value()));
        }
        if let Some(rc) = &self.reconfig {
            m.push(("reconfig".to_string(), rc.to_value()));
        }
        serde::value::Value::Map(m)
    }
}

impl Deserialize for Scenario {
    fn from_value(v: &serde::value::Value) -> Result<Scenario, serde::de::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::de::Error::expected("a Scenario map"))?;
        let req = |name: &str| serde::de::field(entries, name);
        Ok(Scenario {
            shape: Deserialize::from_value(req("shape")?)?,
            topology: match entries.iter().find(|(k, _)| k == "topology") {
                Some((_, v)) => Deserialize::from_value(v)?,
                None => DEFAULT_TOPOLOGY.to_string(),
            },
            scheme: Deserialize::from_value(req("scheme")?)?,
            faults: Deserialize::from_value(req("faults")?)?,
            workload: Deserialize::from_value(req("workload")?)?,
            seed: Deserialize::from_value(req("seed")?)?,
            buffer_flits: Deserialize::from_value(req("buffer_flits")?)?,
            max_cycles: Deserialize::from_value(req("max_cycles")?)?,
            reconfig: match entries.iter().find(|(k, _)| k == "reconfig") {
                Some((_, v)) => Some(Deserialize::from_value(v)?),
                None => None,
            },
        })
    }
}

impl Scenario {
    /// A scenario with the default engine parameters (wormhole buffers,
    /// campaign-sized cycle limit).
    pub fn new(shape: Vec<u16>, scheme: &str, workload: Workload, seed: u64) -> Scenario {
        Scenario {
            shape,
            topology: DEFAULT_TOPOLOGY.to_string(),
            scheme: scheme.to_string(),
            faults: Vec::new(),
            workload,
            seed,
            buffer_flits: SimConfig::default().buffer_flits,
            max_cycles: 50_000,
            reconfig: None,
        }
    }

    /// Sets the topology id (builder style).
    #[must_use]
    pub fn with_topology(mut self, topology: &str) -> Scenario {
        self.topology = topology.to_string();
        self
    }

    /// Adds fault sites (builder style).
    #[must_use]
    pub fn with_faults(mut self, faults: impl IntoIterator<Item = FaultSite>) -> Scenario {
        self.faults.extend(faults);
        self.faults.sort_unstable();
        self.faults.dedup();
        self
    }

    /// Attaches a live-reconfiguration script (builder style).
    #[must_use]
    pub fn with_reconfig(mut self, spec: ReconfigSpec) -> Scenario {
        self.reconfig = Some(spec);
        self
    }

    /// The validated [`Shape`].
    pub fn shape_obj(&self) -> Result<Shape, ScenarioError> {
        if self.shape.len() > MAX_DIMS {
            return Err(ScenarioError::BadShape(format!(
                "{} dimensions exceed MAX_DIMS = {MAX_DIMS}",
                self.shape.len()
            )));
        }
        Shape::new(&self.shape).map_err(|e: TopologyError| ScenarioError::BadShape(e.to_string()))
    }

    /// The network this scenario runs on, built from the topology id and
    /// shape.
    pub fn network(&self) -> Result<Network, ScenarioError> {
        let shape = self.shape_obj()?;
        Network::build(&self.topology, shape)
            .map_err(|e: TopologyError| ScenarioError::BadTopology(e.to_string()))
    }

    /// The fault set, validated against the shape (and the topology:
    /// crossbar fault sites only exist on `mdx`).
    pub fn fault_set(&self) -> Result<FaultSet, ScenarioError> {
        let shape = self.shape_obj()?;
        let n = shape.num_pes();
        for &site in &self.faults {
            let ok = match site {
                FaultSite::Router(i) | FaultSite::Pe(i) => i < n,
                FaultSite::Xbar(x) => {
                    self.topology == DEFAULT_TOPOLOGY
                        && (x.dim as usize) < shape.d()
                        && (x.line as usize) < n / shape.extent(x.dim as usize) as usize
                }
            };
            if !ok {
                return Err(ScenarioError::BadFault(format!(
                    "{site} does not exist in shape {:?}",
                    self.shape
                )));
            }
        }
        Ok(self.faults.iter().copied().collect())
    }

    /// The engine configuration this scenario runs under.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            buffer_flits: self.buffer_flits,
            max_cycles: self.max_cycles,
            arb_seed: self.seed,
            ..SimConfig::default()
        }
    }

    /// Materializes the workload into an injection schedule.
    ///
    /// Broadcast requests (RC=1) are rewritten to plain broadcasts (RC=2)
    /// for the `naive-broadcast` scheme — it has no S-XB to serialize
    /// requests, which is exactly the property under test — and dropped
    /// entirely for the unicast-only comparators (`o1turn` and the
    /// non-crossbar zoo schemes), which speak no broadcast at all.
    ///
    /// When the scenario carries a fault timeline, generated workloads
    /// avoid sourcing or sinking traffic at components *scheduled* to die:
    /// an application told its node enters a maintenance window does not
    /// start transfers there, while traffic merely transiting the doomed
    /// region still gets wounded and replayed. [`Workload::Explicit`]
    /// schedules are exempt — they say exactly what to inject.
    pub fn specs(&self, shape: &Shape, faults: &FaultSet) -> Vec<InjectSpec> {
        let n = shape.num_pes();
        let mut wl_faults = faults.clone();
        if let Some(rc) = &self.reconfig {
            for e in rc.timeline.events() {
                if e.kind == FaultEventKind::Inject {
                    wl_faults.insert(e.site);
                }
            }
        }
        let faults = &wl_faults;
        let usable = |pe: usize| pe < n && faults.pe_usable(pe);
        let mut specs = match &self.workload {
            Workload::Mixed {
                pattern,
                rate,
                packet_flits,
                window,
                broadcast_rate,
            } => mixed_schedule(
                shape,
                *pattern,
                OpenLoop {
                    rate: *rate,
                    packet_flits: *packet_flits,
                    window: *window,
                    seed: self.seed,
                },
                *broadcast_rate,
                faults,
            ),
            Workload::BroadcastStorm { sources, flits } => sources
                .iter()
                .filter(|&&s| usable(s))
                .map(|&s| InjectSpec {
                    src_pe: s,
                    header: Header::broadcast_request(shape.coord_of(s)),
                    flits: *flits,
                    inject_at: 0,
                })
                .collect(),
            Workload::DetourStress {
                bc_src,
                uni_src,
                uni_dst,
                flits,
                offset,
            } => {
                let mut v = Vec::new();
                if usable(*bc_src) {
                    v.push(InjectSpec {
                        src_pe: *bc_src,
                        header: Header::broadcast_request(shape.coord_of(*bc_src)),
                        flits: *flits,
                        inject_at: 0,
                    });
                }
                if usable(*uni_src) && usable(*uni_dst) && uni_src != uni_dst {
                    v.push(InjectSpec {
                        src_pe: *uni_src,
                        header: Header::unicast(shape.coord_of(*uni_src), shape.coord_of(*uni_dst)),
                        flits: *flits,
                        inject_at: *offset,
                    });
                }
                v
            }
            Workload::Explicit { specs } => {
                specs.iter().filter(|s| s.src_pe < n).copied().collect()
            }
            Workload::FaultStorm {
                rate,
                packet_flits,
                window,
                burst,
            } => {
                let burst_at: Vec<u64> = self
                    .reconfig
                    .as_ref()
                    .map(|rc| {
                        let mut ats: Vec<u64> = rc.timeline.events().iter().map(|e| e.at).collect();
                        ats.dedup();
                        ats
                    })
                    .unwrap_or_default();
                fault_storm_schedule(
                    shape,
                    OpenLoop {
                        rate: *rate,
                        packet_flits: *packet_flits,
                        window: *window,
                        seed: self.seed,
                    },
                    &burst_at,
                    *burst,
                    faults,
                )
            }
            // Streaming workloads are never materialized up front; the
            // runner attaches them through `stream_source`.
            Workload::Stream { .. } => Vec::new(),
        };
        match self.scheme.as_str() {
            "naive-broadcast" => {
                for s in &mut specs {
                    if s.header.rc == RouteChange::BroadcastRequest {
                        s.header = Header {
                            rc: RouteChange::Broadcast,
                            dest: s.header.src,
                            src: s.header.src,
                        };
                    }
                }
            }
            "o1turn" | "hyperx-ft" | "fullmesh-vcfree" | "hypercube-avoid" => {
                specs.retain(|s| s.header.rc == RouteChange::Normal);
            }
            _ => {}
        }
        specs
    }

    /// The streaming workload spec, when this scenario carries one.
    pub fn stream_spec(&self) -> Option<&StreamSpec> {
        match &self.workload {
            Workload::Stream { spec } => Some(spec),
            _ => None,
        }
    }

    /// Compiles a [`Workload::Stream`] scenario into its incremental
    /// traffic source, seeded so that the scenario seed alone replays the
    /// run. Returns `Ok(None)` for batch workloads.
    ///
    /// Like [`Scenario::specs`], the generator avoids sourcing or sinking
    /// traffic at components scheduled to die — both the spec's own storm
    /// sites and any explicit reconfig timeline.
    pub fn stream_source(
        &self,
        shape: &Shape,
        faults: &FaultSet,
    ) -> Result<Option<StreamSource>, ScenarioError> {
        let Some(spec) = self.stream_spec() else {
            return Ok(None);
        };
        let mut wl_faults = faults.clone();
        for storm in &spec.storms {
            if !storm.repair {
                for &site in &storm.sites {
                    wl_faults.insert(site);
                }
            }
        }
        if let Some(rc) = &self.reconfig {
            for e in rc.timeline.events() {
                if e.kind == FaultEventKind::Inject {
                    wl_faults.insert(e.site);
                }
            }
        }
        spec.source(shape, &wl_faults, self.seed)
            .map(Some)
            .map_err(|e| ScenarioError::BadSpec(e.to_string()))
    }

    /// The reconfiguration script this scenario actually runs under: the
    /// explicit `reconfig` segment when present, otherwise one derived
    /// from the stream spec's storm lines (default recovery policy). The
    /// spec is the single source of truth for mid-stream fault storms, so
    /// a plain `campaign stream` run exercises the epoch protocol without
    /// a hand-built timeline.
    pub fn effective_reconfig(&self) -> Option<ReconfigSpec> {
        if self.reconfig.is_some() {
            return self.reconfig.clone();
        }
        match &self.workload {
            Workload::Stream { spec } if !spec.storms.is_empty() => {
                Some(ReconfigSpec::new(spec.timeline()))
            }
            _ => None,
        }
    }

    /// Encodes the scenario as a printable `MDX1.` token.
    pub fn token(&self) -> String {
        let json = serde_json::to_string(self).expect("scenario serializes");
        token::wrap(&json)
    }

    /// Decodes a scenario from its token.
    pub fn from_token(t: &str) -> Result<Scenario, TokenError> {
        let json = token::unwrap(t)?;
        serde_json::from_str(&json).map_err(|e| TokenError::BadScenario(e.to_string()))
    }
}

/// A compact one-line description for logs and tables.
impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shape = self
            .shape
            .iter()
            .map(u16::to_string)
            .collect::<Vec<_>>()
            .join("x");
        let faults = if self.faults.is_empty() {
            "none".to_string()
        } else {
            self.faults
                .iter()
                .map(|s| s.node().to_string())
                .collect::<Vec<_>>()
                .join("+")
        };
        write!(f, "{shape}")?;
        if self.topology != DEFAULT_TOPOLOGY {
            write!(f, "/{}", self.topology)?;
        }
        write!(
            f,
            " {} {} faults={faults} seed={}",
            self.scheme,
            self.workload.kind(),
            self.seed
        )?;
        if let Some(rc) = &self.reconfig {
            write!(f, " timeline={}ev/{}", rc.timeline.len(), rc.policy)?;
        }
        Ok(())
    }
}

/// Fig. 9's detour-stress placement generalized to any shape with at least
/// two dimensions of extent >= 2: broadcast from the far corner of the
/// first line, unicast from the origin across the `(1, 0)` router — the
/// pair whose broadcast turn and detour turn can close a cyclic wait when
/// D-XB ≠ S-XB.
pub fn detour_stress_for(shape: &Shape, flits: usize, offset: u64) -> Workload {
    let bc = Coord::ORIGIN
        .with(0, 1.min(shape.extent(0) - 1))
        .with(shape.d() - 1, shape.extent(shape.d() - 1) - 1);
    let uni_dst = {
        let mut c = Coord::ORIGIN;
        for dim in 0..shape.d().min(2) {
            c = c.with(dim, 1.min(shape.extent(dim) - 1));
        }
        c
    };
    Workload::DetourStress {
        bc_src: shape.index_of(bc),
        uni_src: 0,
        uni_dst: shape.index_of(uni_dst),
        flits,
        offset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_topology::XbarRef;

    fn fig2_scenario() -> Scenario {
        Scenario::new(
            vec![4, 3],
            "sr2201",
            Workload::Mixed {
                pattern: TrafficPattern::UniformRandom,
                rate: 0.02,
                packet_flits: 12,
                window: 200,
                broadcast_rate: 0.002,
            },
            7,
        )
        .with_faults([FaultSite::Router(5)])
    }

    #[test]
    fn token_roundtrip_is_identity() {
        let s = fig2_scenario();
        let t = s.token();
        assert!(t.starts_with("MDX1."));
        assert_eq!(Scenario::from_token(&t).unwrap(), s);
    }

    #[test]
    fn token_roundtrip_all_workloads() {
        let shape = Shape::fig2();
        for w in [
            Workload::BroadcastStorm {
                sources: vec![0, 4, 8],
                flits: 16,
            },
            detour_stress_for(&shape, 24, 13),
            Workload::Explicit {
                specs: vec![InjectSpec {
                    src_pe: 0,
                    header: Header::unicast(shape.coord_of(0), shape.coord_of(5)),
                    flits: 24,
                    inject_at: 10,
                }],
            },
        ] {
            let s = Scenario::new(vec![4, 3], "separate-dxb", w, 3);
            assert_eq!(Scenario::from_token(&s.token()).unwrap(), s);
        }
    }

    #[test]
    fn stream_token_roundtrip_and_derived_reconfig() {
        let spec = StreamSpec::parse(
            "seed 9\nphase 0..200 uniform rate=0.05\nstorm 100 router:5\nhorizon 400\n",
        )
        .unwrap();
        let s = Scenario::new(vec![4, 3], "sr2201", Workload::Stream { spec }, 11);
        assert_eq!(s.workload.kind(), "stream");
        assert_eq!(Scenario::from_token(&s.token()).unwrap(), s);

        // specs() materializes nothing; the storm line alone yields a
        // reconfig script.
        let shape = Shape::fig2();
        assert!(s.specs(&shape, &FaultSet::none()).is_empty());
        let rc = s.effective_reconfig().expect("storm implies reconfig");
        assert_eq!(rc.timeline.len(), 1);

        // The generator treats the doomed router as unusable: PE5 never
        // sources or sinks traffic.
        let src = s
            .stream_source(&shape, &FaultSet::none())
            .unwrap()
            .expect("stream workload has a source");
        for p in src.into_schedule() {
            assert_ne!(p.src_pe, 5);
            assert_ne!(shape.index_of(p.header.dest), 5);
        }
    }

    #[test]
    fn stream_spec_validation_surfaces_as_bad_spec() {
        let spec = StreamSpec::parse("phase 0..10 hotspot:99 rate=0.5").unwrap();
        let s = Scenario::new(vec![4, 3], "sr2201", Workload::Stream { spec }, 0);
        let err = s
            .stream_source(&Shape::fig2(), &FaultSet::none())
            .unwrap_err();
        assert!(matches!(err, ScenarioError::BadSpec(_)), "{err}");
    }

    #[test]
    fn detour_stress_matches_fig9_on_fig2() {
        // On the 4x3 network the generalized placement reproduces the
        // paper's Fig. 9 actors: broadcast from PE9 = (1,2), unicast
        // (0,0) -> (1,1).
        let shape = Shape::fig2();
        match detour_stress_for(&shape, 24, 10) {
            Workload::DetourStress {
                bc_src,
                uni_src,
                uni_dst,
                ..
            } => {
                assert_eq!(bc_src, shape.index_of(Coord::new(&[1, 2])));
                assert_eq!(uni_src, 0);
                assert_eq!(uni_dst, shape.index_of(Coord::new(&[1, 1])));
            }
            other => panic!("unexpected workload {other:?}"),
        }
    }

    #[test]
    fn materialize_filters_unusable_pes() {
        let shape = Shape::fig2();
        let mut s = fig2_scenario();
        s.workload = Workload::BroadcastStorm {
            sources: vec![0, 5, 99],
            flits: 8,
        };
        let faults = s.fault_set().unwrap();
        // PE5's router is faulty and 99 is out of range: only PE0 remains.
        let specs = s.specs(&shape, &faults);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].src_pe, 0);
    }

    #[test]
    fn naive_rewrite_turns_requests_into_broadcasts() {
        let shape = Shape::fig2();
        let s = Scenario::new(
            vec![4, 3],
            "naive-broadcast",
            Workload::BroadcastStorm {
                sources: vec![0, 4],
                flits: 16,
            },
            0,
        );
        for spec in s.specs(&shape, &FaultSet::none()) {
            assert_eq!(spec.header.rc, RouteChange::Broadcast);
            assert_eq!(spec.header.dest, spec.header.src);
        }
    }

    #[test]
    fn topology_roundtrips_and_default_is_omitted() {
        // A non-default topology survives the token round trip...
        let s = Scenario::new(
            vec![3, 3],
            "hyperx-ft",
            Workload::Mixed {
                pattern: TrafficPattern::UniformRandom,
                rate: 0.02,
                packet_flits: 8,
                window: 100,
                broadcast_rate: 0.0,
            },
            5,
        )
        .with_topology("hyperx");
        let back = Scenario::from_token(&s.token()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.topology, "hyperx");
        assert!(s.to_string().contains("3x3/hyperx"), "{s}");

        // ...while the default never appears on the wire: the serialized
        // form of an mdx scenario has no `topology` key, so pre-zoo tokens
        // re-encode byte-identically.
        let d = fig2_scenario();
        assert_eq!(d.topology, DEFAULT_TOPOLOGY);
        let json = serde_json::to_string(&d).unwrap();
        assert!(!json.contains("topology"), "{json}");
        assert!(!d.to_string().contains("mdx"), "{d}");
    }

    #[test]
    fn network_builder_follows_topology_id() {
        let s = fig2_scenario();
        assert!(s.network().unwrap().as_mdx().is_some());
        let h = Scenario::new(vec![2, 2, 2], "hypercube-avoid", s.workload.clone(), 0)
            .with_topology("hypercube");
        assert!(h.network().unwrap().as_mdx().is_none());
        let bad = s.clone().with_topology("donut");
        assert!(matches!(
            bad.network().unwrap_err(),
            ScenarioError::BadTopology(_)
        ));
    }

    #[test]
    fn xbar_faults_only_exist_on_mdx() {
        let mut s = fig2_scenario().with_topology("hyperx");
        s.faults = vec![FaultSite::Xbar(XbarRef { dim: 1, line: 0 })];
        assert!(matches!(
            s.fault_set().unwrap_err(),
            ScenarioError::BadFault(_)
        ));
        // Router/PE faults remain valid off-mdx.
        s.faults = vec![FaultSite::Router(5)];
        assert!(s.fault_set().is_ok());
    }

    #[test]
    fn zoo_schemes_drop_broadcast_traffic() {
        let shape = Shape::new(&[3, 3]).unwrap();
        for id in ["hyperx-ft", "fullmesh-vcfree", "hypercube-avoid"] {
            let s = Scenario::new(
                vec![3, 3],
                id,
                Workload::BroadcastStorm {
                    sources: vec![0, 4],
                    flits: 8,
                },
                0,
            );
            assert!(s.specs(&shape, &FaultSet::none()).is_empty(), "{id}");
        }
    }

    #[test]
    fn fault_validation() {
        let mut s = fig2_scenario();
        s.faults = vec![FaultSite::Pe(12)];
        assert!(s.fault_set().is_err());
        s.faults = vec![FaultSite::Xbar(XbarRef { dim: 2, line: 0 })];
        assert!(s.fault_set().is_err());
        // On 4x3 dimension 1 has 12/3 = 4 lines (one per X column).
        s.faults = vec![FaultSite::Xbar(XbarRef { dim: 1, line: 4 })];
        assert!(s.fault_set().is_err());
        s.faults = vec![FaultSite::Xbar(XbarRef { dim: 1, line: 3 })];
        assert!(s.fault_set().is_ok());
    }
}
