//! Run-to-run attribution diffs: `campaign diff <a.jsonl> <b.jsonl>`.
//!
//! The trajectory file answers *whether* a sweep regressed; this module
//! answers *where the cycles moved*. Two campaign JSONL files (written
//! with `--attribution`) are reduced to sweep-wide phase totals and
//! compared phase-by-phase as **shares of total latency** — a shift of
//! more than the threshold (default 1 percentage point) is flagged. On a
//! fault-free vs. 1-fault pair, the latency delta shows up as share
//! moving into `detour_transfer` and the blocked phases; on two runs of
//! the same tokens, every shift is exactly zero and the rendering is
//! byte-identical.
//!
//! Rows are parsed as generic [`serde::value::Value`] maps, so files from
//! older schema revisions (or with extra fields) still diff — only the
//! `token`, `outcome`, and `attribution` keys are read. Rows without an
//! `attribution` section are counted but contribute nothing.

use crate::runner::RowAttribution;
use serde::de::{Deserialize, Error as DeError};
use serde::value::Value;
use serde::Serialize;

/// Default share-shift threshold: one percentage point.
pub const DEFAULT_DIFF_THRESHOLD: f64 = 0.01;

/// Why a diff could not be computed.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffError {
    /// A line failed to parse as a JSON object.
    BadRow {
        /// Which input (`"a"` or `"b"`).
        side: &'static str,
        /// 1-based line number.
        line: usize,
        /// Parser message.
        reason: String,
    },
    /// A file had no rows at all.
    Empty(&'static str),
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::BadRow { side, line, reason } => {
                write!(f, "input {side}, line {line}: {reason}")
            }
            DiffError::Empty(side) => write!(f, "input {side} has no rows"),
        }
    }
}

impl std::error::Error for DiffError {}

/// One side's sweep-wide reduction.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct DiffSide {
    /// Rows in the file.
    pub rows: usize,
    /// Rows carrying an `attribution` section.
    pub attributed: usize,
    /// Scenario tokens, in file order (the pairing check).
    pub tokens: Vec<String>,
    /// Outcome counts as `(outcome, rows)`, in first-seen order.
    pub outcomes: Vec<(String, usize)>,
    /// Delivered packets decomposed, summed.
    pub delivered: usize,
    /// Total end-to-end latency (cycles) across attributed rows.
    pub latency_total: u64,
    /// Phase totals, in [`RowAttribution::phases`] order.
    pub phase_cycles: Vec<u64>,
    /// Total detour hop overhead.
    pub detour_overhead_hops: u64,
}

/// One phase's comparison between the two runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseShift {
    /// Phase name (e.g. `gather_wait`).
    pub phase: String,
    /// Cycles in run A.
    pub cycles_a: u64,
    /// Cycles in run B.
    pub cycles_b: u64,
    /// Share of run A's total latency (0..1).
    pub share_a: f64,
    /// Share of run B's total latency (0..1).
    pub share_b: f64,
    /// `share_b - share_a` (positive = the phase grew in B).
    pub shift: f64,
    /// Whether `|shift|` exceeded the threshold.
    pub flagged: bool,
}

/// The full comparison of two attribution-bearing campaign files.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AttributionDiff {
    /// Share-shift threshold the comparison used.
    pub threshold: f64,
    /// Whether both files hold the same scenario tokens in the same order.
    pub same_tokens: bool,
    /// Run A's reduction.
    pub a: DiffSide,
    /// Run B's reduction.
    pub b: DiffSide,
    /// Per-phase comparison, in schema order.
    pub shifts: Vec<PhaseShift>,
    /// Phases whose share moved beyond the threshold.
    pub flagged: usize,
}

/// The phase names, fixed in schema order (mirrors
/// [`RowAttribution::phases`]).
const PHASE_NAMES: [&str; 8] = [
    "inject_wait",
    "epoch_pause",
    "gather_wait",
    "blocked_normal",
    "blocked_gather",
    "blocked_detour",
    "detour_transfer",
    "base_transfer",
];

/// Map-entry lookup on a generic JSON object.
fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .filter(|v| !matches!(v, Value::Null))
}

/// Reduces one JSONL document to a [`DiffSide`].
fn reduce_side(side: &'static str, jsonl: &str) -> Result<DiffSide, DiffError> {
    let mut out = DiffSide {
        phase_cycles: vec![0; PHASE_NAMES.len()],
        ..DiffSide::default()
    };
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line).map_err(|e| DiffError::BadRow {
            side,
            line: i + 1,
            reason: e.to_string(),
        })?;
        let row = v.as_map().ok_or_else(|| DiffError::BadRow {
            side,
            line: i + 1,
            reason: "row is not a JSON object".to_string(),
        })?;
        out.rows += 1;
        if let Some(tok) = field(row, "token").and_then(|v| v.as_str()) {
            out.tokens.push(tok.to_string());
        }
        if let Some(oc) = field(row, "outcome").and_then(|v| v.as_str()) {
            match out.outcomes.iter_mut().find(|(o, _)| o == oc) {
                Some(e) => e.1 += 1,
                None => out.outcomes.push((oc.to_string(), 1)),
            }
        }
        let Some(att) = field(row, "attribution") else {
            continue;
        };
        let att = RowAttribution::from_value(att).map_err(|e| DiffError::BadRow {
            side,
            line: i + 1,
            reason: format!("bad attribution section: {e}"),
        })?;
        out.attributed += 1;
        out.delivered += att.delivered;
        out.latency_total += att.latency_total;
        out.detour_overhead_hops += att.detour_overhead_hops;
        for (slot, (_, cycles)) in out.phase_cycles.iter_mut().zip(att.phases()) {
            *slot += cycles;
        }
    }
    if out.rows == 0 {
        return Err(DiffError::Empty(side));
    }
    Ok(out)
}

/// Compares two campaign JSONL documents (file *contents*, not paths)
/// phase-by-phase. `threshold` is the share shift (0..1) beyond which a
/// phase is flagged; [`DEFAULT_DIFF_THRESHOLD`] is the usual choice.
pub fn diff_attribution(a: &str, b: &str, threshold: f64) -> Result<AttributionDiff, DiffError> {
    let a = reduce_side("a", a)?;
    let b = reduce_side("b", b)?;
    let share = |cycles: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            cycles as f64 / total as f64
        }
    };
    let mut shifts = Vec::new();
    let mut flagged = 0;
    for (i, name) in PHASE_NAMES.iter().enumerate() {
        let ca = a.phase_cycles[i];
        let cb = b.phase_cycles[i];
        let sa = share(ca, a.latency_total);
        let sb = share(cb, b.latency_total);
        let shift = sb - sa;
        let is_flagged = shift.abs() > threshold;
        flagged += usize::from(is_flagged);
        shifts.push(PhaseShift {
            phase: name.to_string(),
            cycles_a: ca,
            cycles_b: cb,
            share_a: sa,
            share_b: sb,
            shift,
            flagged: is_flagged,
        });
    }
    Ok(AttributionDiff {
        threshold,
        same_tokens: a.tokens == b.tokens,
        a,
        b,
        shifts,
        flagged,
    })
}

impl AttributionDiff {
    /// True when no phase moved beyond the threshold.
    pub fn is_clean(&self) -> bool {
        self.flagged == 0
    }

    /// Serializes the diff as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("AttributionDiff serializes")
    }

    /// Renders the deterministic comparison table. Identical inputs render
    /// byte-identically (shares are printed with fixed precision and the
    /// phase order is fixed).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "attribution diff (threshold {:.1} pp): {} flagged shift(s)\n",
            self.threshold * 100.0,
            self.flagged
        ));
        out.push_str(&format!(
            "  a: {} row(s), {} attributed, {} delivered, {} latency cycle(s)\n",
            self.a.rows, self.a.attributed, self.a.delivered, self.a.latency_total
        ));
        out.push_str(&format!(
            "  b: {} row(s), {} attributed, {} delivered, {} latency cycle(s)\n",
            self.b.rows, self.b.attributed, self.b.delivered, self.b.latency_total
        ));
        out.push_str(&format!(
            "  tokens: {}\n",
            if self.same_tokens {
                "identical"
            } else {
                "DIFFERENT (comparing different scenario grids)"
            }
        ));
        let fmt_outcomes = |oc: &[(String, usize)]| {
            oc.iter()
                .map(|(o, n)| format!("{o} x{n}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        if self.a.outcomes != self.b.outcomes {
            out.push_str(&format!(
                "  outcomes: a = {}; b = {}\n",
                fmt_outcomes(&self.a.outcomes),
                fmt_outcomes(&self.b.outcomes)
            ));
        }
        out.push_str(&format!(
            "\n  {:<16} {:>12} {:>12} {:>8} {:>8} {:>9}\n",
            "phase", "cycles a", "cycles b", "share a", "share b", "shift"
        ));
        for s in &self.shifts {
            out.push_str(&format!(
                "  {:<16} {:>12} {:>12} {:>7.2}% {:>7.2}% {:>+8.2}pp{}\n",
                s.phase,
                s.cycles_a,
                s.cycles_b,
                s.share_a * 100.0,
                s.share_b * 100.0,
                s.shift * 100.0,
                if s.flagged { "  <-- FLAGGED" } else { "" }
            ));
        }
        if self.a.detour_overhead_hops != self.b.detour_overhead_hops {
            out.push_str(&format!(
                "\n  detour overhead: {} hop(s) in a, {} hop(s) in b\n",
                self.a.detour_overhead_hops, self.b.detour_overhead_hops
            ));
        }
        out
    }
}

impl Deserialize for RowAttribution {
    fn from_value(v: &Value) -> Result<RowAttribution, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::expected("attribution object"))?;
        let num = |name: &str| -> Result<u64, DeError> {
            field(m, name)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| DeError::custom(format!("missing numeric field `{name}`")))
        };
        let top_blame = match field(m, "top_blame").and_then(|v| v.as_seq()) {
            None => Vec::new(),
            Some(seq) => seq
                .iter()
                .filter_map(|pair| {
                    let p = pair.as_seq()?;
                    Some((p.first()?.as_str()?.to_string(), p.get(1)?.as_u64()?))
                })
                .collect(),
        };
        Ok(RowAttribution {
            delivered: num("delivered")? as usize,
            conserved: field(m, "conserved")
                .and_then(|v| v.as_bool())
                .unwrap_or(true),
            latency_total: num("latency_total")?,
            inject_wait: num("inject_wait")?,
            epoch_pause: num("epoch_pause")?,
            gather_wait: num("gather_wait")?,
            blocked_normal: num("blocked_normal")?,
            blocked_gather: num("blocked_gather")?,
            blocked_detour: num("blocked_detour")?,
            detour_transfer: num("detour_transfer")?,
            base_transfer: num("base_transfer")?,
            detour_overhead_hops: num("detour_overhead_hops")?,
            top_blame,
            critical_len: num("critical_len").unwrap_or(0) as usize,
            critical_wait: num("critical_wait").unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(token: &str, outcome: &str, phases: [u64; 8], total: u64) -> String {
        format!(
            concat!(
                r#"{{"token":"{}","outcome":"{}","attribution":{{"#,
                r#""delivered":2,"conserved":true,"latency_total":{},"#,
                r#""inject_wait":{},"epoch_pause":{},"gather_wait":{},"#,
                r#""blocked_normal":{},"blocked_gather":{},"blocked_detour":{},"#,
                r#""detour_transfer":{},"base_transfer":{},"#,
                r#""detour_overhead_hops":4,"top_blame":[["R0 -> X0-XB",7]],"#,
                r#""critical_len":1,"critical_wait":7}}}}"#
            ),
            token,
            outcome,
            total,
            phases[0],
            phases[1],
            phases[2],
            phases[3],
            phases[4],
            phases[5],
            phases[6],
            phases[7]
        )
    }

    #[test]
    fn identical_inputs_diff_clean_and_byte_identical() {
        let doc = format!(
            "{}\n{}\n",
            row("t1", "completed", [1, 0, 2, 3, 0, 0, 4, 10], 20),
            row("t2", "completed", [0, 0, 0, 5, 0, 0, 0, 15], 20)
        );
        let d1 = diff_attribution(&doc, &doc, DEFAULT_DIFF_THRESHOLD).unwrap();
        let d2 = diff_attribution(&doc, &doc, DEFAULT_DIFF_THRESHOLD).unwrap();
        assert!(d1.is_clean());
        assert!(d1.same_tokens);
        assert_eq!(d1.render(), d2.render());
        assert!(d1.shifts.iter().all(|s| s.shift == 0.0));
        assert_eq!(d1.a.latency_total, 40);
        assert_eq!(d1.a.delivered, 4);
    }

    #[test]
    fn share_shift_beyond_threshold_is_flagged() {
        let a = row("t1", "completed", [0, 0, 0, 0, 0, 0, 0, 100], 100);
        let b = row("t1", "completed", [0, 0, 0, 10, 0, 0, 20, 70], 100);
        let d = diff_attribution(&a, &b, DEFAULT_DIFF_THRESHOLD).unwrap();
        assert_eq!(d.flagged, 3); // blocked_normal, detour_transfer, base_transfer
        let detour = d
            .shifts
            .iter()
            .find(|s| s.phase == "detour_transfer")
            .unwrap();
        assert!(detour.flagged && detour.shift > 0.19);
        assert!(d.render().contains("FLAGGED"));
    }

    #[test]
    fn rows_without_attribution_still_count() {
        let a = format!(
            "{}\n{}\n",
            r#"{"token":"t0","outcome":"deadlock"}"#,
            row("t1", "completed", [0, 0, 0, 0, 0, 0, 0, 10], 10)
        );
        let d = diff_attribution(&a, &a, DEFAULT_DIFF_THRESHOLD).unwrap();
        assert_eq!(d.a.rows, 2);
        assert_eq!(d.a.attributed, 1);
        assert_eq!(
            d.a.outcomes,
            vec![("deadlock".to_string(), 1), ("completed".to_string(), 1)]
        );
    }

    #[test]
    fn token_mismatch_is_reported() {
        let a = row("t1", "completed", [0, 0, 0, 0, 0, 0, 0, 10], 10);
        let b = row("t2", "completed", [0, 0, 0, 0, 0, 0, 0, 10], 10);
        let d = diff_attribution(&a, &b, DEFAULT_DIFF_THRESHOLD).unwrap();
        assert!(!d.same_tokens);
        assert!(d.render().contains("DIFFERENT"));
    }

    #[test]
    fn empty_and_malformed_inputs_error() {
        assert_eq!(
            diff_attribution("", "", DEFAULT_DIFF_THRESHOLD),
            Err(DiffError::Empty("a"))
        );
        let good = row("t1", "completed", [0, 0, 0, 0, 0, 0, 0, 10], 10);
        let err = diff_attribution("not json\n", &good, DEFAULT_DIFF_THRESHOLD).unwrap_err();
        assert!(matches!(
            err,
            DiffError::BadRow {
                side: "a",
                line: 1,
                ..
            }
        ));
    }
}
