//! Delta-debugging minimizer for deadlocking scenarios.
//!
//! Given a scenario whose run deadlocks, [`shrink`] searches for a smaller
//! scenario that *still* deadlocks: fewer packets (ddmin over the injection
//! schedule), shorter packets, fewer fault sites, and smaller topology
//! extents. The result is a minimal witness — typically the two or three
//! packets whose turns close the cyclic wait — together with the wait-for
//! cycle the engine reported for it.

use crate::runner::{run_scenario, run_scenario_instrumented, CampaignError, ObsOptions};
use crate::scenario::{Scenario, Workload};
use mdx_obs::{PostmortemReport, DEFAULT_FLIGHT_CAPACITY};
use mdx_sim::{DeadlockInfo, InjectSpec};
use mdx_topology::Shape;
use serde::{Deserialize, Serialize};

/// Why shrinking could not start.
#[derive(Debug, Clone, PartialEq)]
pub enum ShrinkError {
    /// The starting scenario does not deadlock, so there is nothing to
    /// minimize.
    NotADeadlock(String),
    /// The starting scenario cannot run at all.
    Run(CampaignError),
}

impl std::fmt::Display for ShrinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShrinkError::NotADeadlock(outcome) => {
                write!(f, "scenario does not deadlock (outcome: {outcome})")
            }
            ShrinkError::Run(e) => write!(f, "scenario cannot run: {e}"),
        }
    }
}

impl std::error::Error for ShrinkError {}

/// The outcome of a [`shrink`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShrinkReport {
    /// Token of the scenario shrinking started from.
    pub original_token: String,
    /// The minimized scenario (workload converted to [`Workload::Explicit`]).
    pub minimized: Scenario,
    /// Token of the minimized scenario.
    pub token: String,
    /// Packets offered before / after.
    pub packets: (usize, usize),
    /// Total flits offered before / after.
    pub flits: (usize, usize),
    /// Fault sites before / after.
    pub faults: (usize, usize),
    /// PE count of the shape before / after.
    pub pes: (usize, usize),
    /// Simulations executed while searching.
    pub runs: usize,
    /// Human-readable log of the accepted reduction steps.
    pub steps: Vec<String>,
    /// The cyclic wait of the minimized scenario.
    pub deadlock: DeadlockInfo,
    /// Flight-recorder forensics of the minimized scenario: the shrunk
    /// witness ships with its own post-mortem (one extra instrumented
    /// run).
    pub postmortem: Option<PostmortemReport>,
}

impl ShrinkReport {
    /// Whether the minimized scenario is strictly smaller than the
    /// original in at least one measure and larger in none.
    pub fn strictly_smaller(&self) -> bool {
        let no_growth = self.packets.1 <= self.packets.0
            && self.flits.1 <= self.flits.0
            && self.faults.1 <= self.faults.0
            && self.pes.1 <= self.pes.0;
        let some_shrink = self.packets.1 < self.packets.0
            || self.flits.1 < self.flits.0
            || self.faults.1 < self.faults.0
            || self.pes.1 < self.pes.0;
        no_growth && some_shrink
    }
}

/// Runs a candidate; `true` iff it still deadlocks. Candidates that fail to
/// run at all (e.g. a fault set the scheme cannot configure after a shape
/// change) simply don't preserve the property.
fn still_deadlocks(candidate: &Scenario, runs: &mut usize) -> Option<DeadlockInfo> {
    *runs += 1;
    match run_scenario(candidate) {
        Ok(report) => report.deadlock,
        Err(_) => None,
    }
}

fn explicit(scenario: &Scenario, specs: Vec<InjectSpec>) -> Scenario {
    let mut s = scenario.clone();
    s.workload = Workload::Explicit { specs };
    s
}

/// ddmin over the injection schedule: tries removing chunks of specs at
/// halving granularity until no single spec can be removed.
fn ddmin_specs(base: &Scenario, specs: Vec<InjectSpec>, runs: &mut usize) -> Vec<InjectSpec> {
    let mut current = specs;
    let mut chunk = current.len().div_ceil(2).max(1);
    while !current.is_empty() {
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(start..end);
            if candidate.is_empty() {
                start = end;
                continue;
            }
            if still_deadlocks(&explicit(base, candidate.clone()), runs).is_some() {
                current = candidate;
                reduced = true;
                // Re-scan from the front at the same granularity.
                start = 0;
            } else {
                start = end;
            }
        }
        if chunk == 1 && !reduced {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    current
}

/// Binary-searches the minimal flit count of each packet that keeps the
/// deadlock alive.
fn shrink_flits(base: &Scenario, specs: &mut [InjectSpec], runs: &mut usize) -> bool {
    let mut changed = false;
    for i in 0..specs.len() {
        let (mut lo, mut hi) = (1usize, specs[i].flits);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let mut candidate = specs.to_vec();
            candidate[i].flits = mid;
            if still_deadlocks(&explicit(base, candidate), runs).is_some() {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        if hi < specs[i].flits {
            specs[i].flits = hi;
            changed = true;
        }
    }
    changed
}

/// Tries dropping each fault site in turn.
fn shrink_faults(scenario: &mut Scenario, runs: &mut usize) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < scenario.faults.len() {
        let mut candidate = scenario.clone();
        candidate.faults.remove(i);
        if still_deadlocks(&candidate, runs).is_some() {
            *scenario = candidate;
            changed = true;
        } else {
            i += 1;
        }
    }
    changed
}

/// Remaps an explicit scenario onto a smaller shape, if every packet
/// endpoint and fault site fits. Crossbar faults block shape changes (their
/// line index is shape-relative in a non-local way).
fn remap_to_shape(scenario: &Scenario, new_dims: &[u16]) -> Option<Scenario> {
    let old_shape = scenario.shape_obj().ok()?;
    let new_shape = Shape::new(new_dims).ok()?;
    let fits = |c: &mdx_topology::Coord| (0..old_shape.d()).all(|d| c.get(d) < new_shape.extent(d));
    let specs = match &scenario.workload {
        Workload::Explicit { specs } => specs,
        _ => return None,
    };
    let mut remapped = Vec::with_capacity(specs.len());
    for spec in specs {
        let src_coord = old_shape.coord_of(spec.src_pe);
        if !fits(&src_coord) || !fits(&spec.header.src) || !fits(&spec.header.dest) {
            return None;
        }
        let mut s = *spec;
        s.src_pe = new_shape.index_of(src_coord);
        remapped.push(s);
    }
    let mut faults = Vec::with_capacity(scenario.faults.len());
    for &site in &scenario.faults {
        use mdx_fault::FaultSite;
        match site {
            FaultSite::Router(i) => {
                let c = old_shape.coord_of(i);
                if !fits(&c) {
                    return None;
                }
                faults.push(FaultSite::Router(new_shape.index_of(c)));
            }
            FaultSite::Pe(i) => {
                let c = old_shape.coord_of(i);
                if !fits(&c) {
                    return None;
                }
                faults.push(FaultSite::Pe(new_shape.index_of(c)));
            }
            FaultSite::Xbar(_) => return None,
        }
    }
    let mut out = scenario.clone();
    out.shape = new_dims.to_vec();
    out.workload = Workload::Explicit { specs: remapped };
    out.faults = faults;
    out.faults.sort_unstable();
    out.faults.dedup();
    Some(out)
}

/// Tries reducing each dimension's extent by one, repeatedly.
fn shrink_shape(scenario: &mut Scenario, runs: &mut usize) -> bool {
    let mut changed = false;
    loop {
        let mut improved = false;
        for d in 0..scenario.shape.len() {
            if scenario.shape[d] <= 1 {
                continue;
            }
            let mut dims = scenario.shape.clone();
            dims[d] -= 1;
            if let Some(candidate) = remap_to_shape(scenario, &dims) {
                if still_deadlocks(&candidate, runs).is_some() {
                    *scenario = candidate;
                    improved = true;
                    changed = true;
                }
            }
        }
        if !improved {
            return changed;
        }
    }
}

fn spec_sizes(specs: &[InjectSpec]) -> (usize, usize) {
    (specs.len(), specs.iter().map(|s| s.flits).sum())
}

/// Minimizes a deadlocking scenario while preserving the deadlock.
///
/// The workload is first materialized into an explicit injection schedule
/// (so individual packets can be removed), then the reduction passes run to
/// a fixpoint: ddmin over packets, per-packet flit reduction, fault-site
/// removal, and extent reduction.
pub fn shrink(scenario: &Scenario) -> Result<ShrinkReport, ShrinkError> {
    let original = run_scenario(scenario).map_err(ShrinkError::Run)?;
    if !original.is_deadlock() {
        return Err(ShrinkError::NotADeadlock(original.outcome));
    }

    let shape = scenario
        .shape_obj()
        .map_err(|e| ShrinkError::Run(e.into()))?;
    let faults = scenario
        .fault_set()
        .map_err(|e| ShrinkError::Run(e.into()))?;
    let initial_specs = scenario.specs(&shape, &faults);
    let before_sizes = spec_sizes(&initial_specs);
    let before_faults = scenario.faults.len();
    let before_pes = shape.num_pes();

    let mut runs = 0usize;
    let mut steps = Vec::new();
    let mut current = explicit(scenario, initial_specs);

    // The explicit form must still deadlock (it does by construction —
    // `specs` is exactly what the original run injected — but guard anyway).
    if still_deadlocks(&current, &mut runs).is_none() {
        return Err(ShrinkError::NotADeadlock(
            "explicit form diverged".to_string(),
        ));
    }

    loop {
        let mut progressed = false;

        let specs = match &current.workload {
            Workload::Explicit { specs } => specs.clone(),
            _ => unreachable!("shrinker operates on explicit workloads"),
        };
        let n_before = specs.len();
        let mut specs = ddmin_specs(&current, specs, &mut runs);
        if specs.len() < n_before {
            steps.push(format!("ddmin packets: {n_before} -> {}", specs.len()));
            progressed = true;
        }
        if shrink_flits(&current, &mut specs, &mut runs) {
            steps.push(format!(
                "shrink flits: total {}",
                specs.iter().map(|s| s.flits).sum::<usize>()
            ));
            progressed = true;
        }
        current = explicit(&current, specs);

        let f_before = current.faults.len();
        if shrink_faults(&mut current, &mut runs) {
            steps.push(format!(
                "drop faults: {f_before} -> {}",
                current.faults.len()
            ));
            progressed = true;
        }

        let dims_before = current.shape.clone();
        if shrink_shape(&mut current, &mut runs) {
            steps.push(format!(
                "shrink shape: {dims_before:?} -> {:?}",
                current.shape
            ));
            progressed = true;
        }

        if !progressed {
            break;
        }
    }

    let deadlock = still_deadlocks(&current, &mut runs).expect("fixpoint scenario still deadlocks");
    // One final instrumented run: the minimal witness ships with its
    // forensic report.
    runs += 1;
    let postmortem = run_scenario_instrumented(
        &current,
        &ObsOptions {
            flight: Some(DEFAULT_FLIGHT_CAPACITY),
            ..ObsOptions::default()
        },
    )
    .ok()
    .and_then(|(report, _)| report.postmortem);
    let after_sizes = match &current.workload {
        Workload::Explicit { specs } => spec_sizes(specs),
        _ => unreachable!(),
    };
    let after_pes = current
        .shape_obj()
        .map(|s| s.num_pes())
        .unwrap_or(before_pes);
    let after_faults = current.faults.len();
    Ok(ShrinkReport {
        original_token: scenario.token(),
        token: current.token(),
        minimized: current,
        packets: (before_sizes.0, after_sizes.0),
        flits: (before_sizes.1, after_sizes.1),
        faults: (before_faults, after_faults),
        pes: (before_pes, after_pes),
        runs,
        steps,
        deadlock,
        postmortem,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn refuses_non_deadlocking_scenarios() {
        let s = Scenario::new(
            vec![4, 3],
            "sr2201",
            Workload::BroadcastStorm {
                sources: vec![0, 4, 8],
                flits: 16,
            },
            0,
        );
        assert!(matches!(shrink(&s), Err(ShrinkError::NotADeadlock(_))));
    }

    #[test]
    fn shrinks_naive_broadcast_storm() {
        // Six simultaneous naive broadcasts deadlock; the minimal witness
        // needs far fewer packets and flits.
        let s = Scenario::new(
            vec![4, 3],
            "naive-broadcast",
            Workload::BroadcastStorm {
                sources: vec![0, 4, 8, 3, 7, 11],
                flits: 16,
            },
            0,
        );
        let report = shrink(&s).unwrap();
        assert!(report.strictly_smaller(), "no reduction: {report:?}");
        assert!(
            report.packets.1 >= 2,
            "a deadlock needs at least two packets"
        );
        assert!(!report.deadlock.cycle.is_empty());
        // The shrunk witness ships with its forensic report, and the
        // reconstructed cycle names the same channels as the witness.
        let pm = report
            .postmortem
            .as_ref()
            .expect("shrunk witness carries a post-mortem");
        assert_eq!(pm.classification, "fig5-naive-broadcast");
        assert_eq!(pm.cycle.len(), report.deadlock.cycle.len());
        // The minimized scenario replays from its token and still deadlocks.
        let replayed = Scenario::from_token(&report.token).unwrap();
        let rerun = run_scenario(&replayed).unwrap();
        assert!(rerun.is_deadlock());
    }
}
