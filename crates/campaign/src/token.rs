//! The `MDX1.` scenario token: a URL-safe, copy-pastable encoding of a
//! [`crate::Scenario`].
//!
//! Format: the literal prefix `MDX1.` followed by unpadded base64url
//! (RFC 4648 §5) of the scenario's compact JSON. The prefix versions the
//! encoding so future scenario shapes can evolve without ambiguity.

/// Version prefix of every scenario token.
pub const TOKEN_PREFIX: &str = "MDX1.";

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Errors decoding a token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenError {
    /// The string does not start with [`TOKEN_PREFIX`].
    BadPrefix,
    /// The payload contains a byte outside the base64url alphabet, or has
    /// an impossible length.
    BadPayload,
    /// The payload decoded but its JSON does not describe a scenario.
    BadScenario(String),
}

impl std::fmt::Display for TokenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenError::BadPrefix => write!(f, "token must start with `{TOKEN_PREFIX}`"),
            TokenError::BadPayload => write!(f, "token payload is not valid base64url"),
            TokenError::BadScenario(e) => write!(f, "token payload is not a scenario: {e}"),
        }
    }
}

impl std::error::Error for TokenError {}

/// Encodes bytes as unpadded base64url.
pub fn base64url_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let sextets = [(n >> 18) & 63, (n >> 12) & 63, (n >> 6) & 63, n & 63];
        for &s in sextets.iter().take(1 + chunk.len()) {
            out.push(ALPHABET[s as usize] as char);
        }
    }
    out
}

/// Decodes unpadded base64url.
pub fn base64url_decode(s: &str) -> Result<Vec<u8>, TokenError> {
    fn val(c: u8) -> Result<u32, TokenError> {
        match c {
            b'A'..=b'Z' => Ok(u32::from(c - b'A')),
            b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
            b'-' => Ok(62),
            b'_' => Ok(63),
            _ => Err(TokenError::BadPayload),
        }
    }
    if s.len() % 4 == 1 {
        return Err(TokenError::BadPayload);
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() * 3 / 4);
    for chunk in bytes.chunks(4) {
        let mut n = 0u32;
        for &c in chunk {
            n = (n << 6) | val(c)?;
        }
        n <<= 6 * (4 - chunk.len());
        let produced = chunk.len() - 1;
        let decoded = [(n >> 16) as u8, (n >> 8) as u8, n as u8];
        out.extend_from_slice(&decoded[..produced]);
    }
    Ok(out)
}

/// Wraps a JSON payload into a token.
pub fn wrap(json: &str) -> String {
    format!("{TOKEN_PREFIX}{}", base64url_encode(json.as_bytes()))
}

/// Unwraps a token back to its JSON payload.
pub fn unwrap(token: &str) -> Result<String, TokenError> {
    let payload = token
        .strip_prefix(TOKEN_PREFIX)
        .ok_or(TokenError::BadPrefix)?;
    let bytes = base64url_decode(payload.trim())?;
    String::from_utf8(bytes).map_err(|_| TokenError::BadPayload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_roundtrip_all_lengths() {
        for len in 0..40usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let enc = base64url_encode(&data);
            assert!(enc.bytes().all(|b| ALPHABET.contains(&b)));
            assert_eq!(base64url_decode(&enc).unwrap(), data);
        }
    }

    #[test]
    fn wrap_unwrap() {
        let json = r#"{"shape":[4,3],"seed":7}"#;
        let t = wrap(json);
        assert!(t.starts_with("MDX1."));
        assert_eq!(unwrap(&t).unwrap(), json);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(unwrap("nope"), Err(TokenError::BadPrefix));
        assert_eq!(unwrap("MDX1.???"), Err(TokenError::BadPayload));
        assert_eq!(unwrap("MDX1.AAAAA"), Err(TokenError::BadPayload));
    }
}
