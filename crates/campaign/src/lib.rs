//! # mdx-campaign
//!
//! Replayable experiment campaigns over the SR2201 routing reproduction.
//!
//! The crate turns the repo's one-off figure experiments into a general
//! instrument with three pieces:
//!
//! * [`Scenario`] — one fully-specified run (shape, scheme, faults,
//!   workload, seed, engine knobs) with a stable printed encoding, the
//!   `MDX1.` **token** ([`token`]). Any row of any campaign can be
//!   replayed bit-identically from its token alone.
//! * [`runner`] — grid enumeration (schemes × fault sets × workloads ×
//!   seeds), rayon-parallel execution on [`mdx_sim`], and aggregation into
//!   JSONL rows plus a per-scheme summary table.
//! * [`shrink`] — a delta-debugging minimizer that reduces a deadlocking
//!   scenario (fewer packets, shorter packets, fewer faults, smaller
//!   shape) while preserving the deadlock, yielding a minimal witness with
//!   its wait-for-graph cycle.
//!
//! ```
//! use mdx_campaign::{run_scenario, Scenario, Workload};
//!
//! // Fig. 5 in one expression: simultaneous unserialized broadcasts.
//! let s = Scenario::new(
//!     vec![4, 3],
//!     "naive-broadcast",
//!     Workload::BroadcastStorm { sources: vec![0, 4, 8, 3, 7, 11], flits: 16 },
//!     0,
//! );
//! let report = run_scenario(&s).unwrap();
//! assert_eq!(report.outcome, "deadlock");
//! // `report.token` replays this exact run anywhere.
//! let again = run_scenario(&Scenario::from_token(&report.token).unwrap()).unwrap();
//! assert_eq!(again.digest, report.digest);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod meter;
pub mod runner;
pub mod scenario;
pub mod shrink;
pub mod token;

pub use diff::{
    diff_attribution, AttributionDiff, DiffError, DiffSide, PhaseShift, DEFAULT_DIFF_THRESHOLD,
};
pub use meter::{CampaignMeter, EngineMeter, RowProfile};
pub use runner::{
    enumerate_fault_sets, enumerate_scenarios, push_engine_spans, run_campaign,
    run_campaign_metered, run_campaign_traced, run_campaign_with, run_scenario,
    run_scenario_instrumented, CampaignConfig, CampaignError, CampaignResult, ObsOptions,
    RowAttribution, RowStream, RowTelemetry, ScenarioReport, Telemetry, WorkloadKind,
    CAMPAIGN_SCHEMES,
};
pub use scenario::{detour_stress_for, Scenario, ScenarioError, Workload};
pub use shrink::{shrink, ShrinkError, ShrinkReport};
pub use token::{TokenError, TOKEN_PREFIX};
