//! Campaign enumeration, parallel execution, and aggregation.
//!
//! A *campaign* is a grid of [`Scenario`]s — schemes × fault sets ×
//! workloads × seeds — executed in parallel on [`mdx_sim::Simulator`].
//! Every row carries its scenario token, so any interesting outcome can be
//! replayed or shrunk later from the report alone.

use crate::meter::{CampaignMeter, RowProfile};
use crate::scenario::{detour_stress_for, Scenario, ScenarioError, Workload};
use mdx_core::registry::{build_scheme_for, RegistryError};
use mdx_fault::{enumerate_single_faults, sample_fault_sets, FaultSet, FaultTimeline};
use mdx_obs::{
    AttributionObserver, AttributionReport, FanoutObserver, FlightRecorder, MetricsObserver,
    MetricsReport, PostmortemReport, StallProbe, StallReport, TraceRecorder, WindowObserver,
    WindowReport,
};
use mdx_reconfig::{drive_reconfig, ReconfigError, ReconfigReport, ReconfigSpec, RecoveryPolicy};
use mdx_sim::{DeadlockInfo, SimConfig, SimOutcome, SimStats, Simulator};
use mdx_topology::{ChannelId, MdCrossbar, Shape};
use mdx_workloads::TrafficPattern;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The scheme ids a default campaign sweeps: the paper's deadlock-free
/// scheme and its two broken foils.
pub const CAMPAIGN_SCHEMES: &[&str] = &["sr2201", "separate-dxb", "naive-broadcast"];

/// Which workload families to enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Fig. 10 mixed open-loop traffic.
    Mixed,
    /// Fig. 5 broadcast storm.
    Storm,
    /// Fig. 9 broadcast-plus-detoured-unicast race.
    Detour,
    /// Live-reconfiguration stress: background traffic plus a burst at
    /// every fault-timeline event (meaningful with
    /// [`CampaignConfig::timeline_at`]; degenerates to uniform traffic
    /// without one).
    FaultStorm,
}

impl WorkloadKind {
    /// All families, in enumeration order. `FaultStorm` is opt-in — it
    /// only pulls its weight on a timeline campaign.
    pub fn all() -> Vec<WorkloadKind> {
        vec![
            WorkloadKind::Mixed,
            WorkloadKind::Storm,
            WorkloadKind::Detour,
        ]
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<WorkloadKind> {
        match s {
            "mixed" => Some(WorkloadKind::Mixed),
            "storm" => Some(WorkloadKind::Storm),
            "detour" => Some(WorkloadKind::Detour),
            "fault-storm" => Some(WorkloadKind::FaultStorm),
            _ => None,
        }
    }
}

/// Grid parameters for [`enumerate_scenarios`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Topology extents.
    pub shape: Vec<u16>,
    /// Scheme ids to sweep.
    pub schemes: Vec<String>,
    /// Largest fault-set size. `0` runs fault-free only; `1` adds every
    /// single fault exhaustively; higher k adds [`sample_fault_sets`]
    /// samples per size.
    pub max_faults: usize,
    /// Sampled fault sets per size for k >= 2.
    pub fault_samples: usize,
    /// Seeds per (scheme, fault set, workload) cell.
    pub seeds: u64,
    /// Workload families to enumerate.
    pub workloads: Vec<WorkloadKind>,
    /// Engine buffer depth (wormhole at the default 2).
    pub buffer_flits: usize,
    /// Engine cycle limit per scenario.
    pub max_cycles: u64,
    /// When set, the fault dimension goes *live*: every enumerated
    /// scenario starts fault-free and injects its fault set at this cycle
    /// through the epoch protocol instead of wearing it from cycle 0
    /// (fault-free cells keep an empty timeline — a static-equivalence
    /// check). `None` keeps the classic static grid.
    pub timeline_at: Option<u64>,
    /// Recovery policy for live rows (used only with `timeline_at`).
    pub timeline_policy: RecoveryPolicy,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            shape: vec![4, 3],
            schemes: CAMPAIGN_SCHEMES.iter().map(|s| s.to_string()).collect(),
            max_faults: 1,
            fault_samples: 8,
            seeds: 8,
            workloads: WorkloadKind::all(),
            buffer_flits: SimConfig::default().buffer_flits,
            max_cycles: 50_000,
            timeline_at: None,
            timeline_policy: RecoveryPolicy::Reinject,
        }
    }
}

/// The fault sets a config sweeps: fault-free, then every single fault,
/// then sampled k-fault sets up to `max_faults`.
pub fn enumerate_fault_sets(net: &MdCrossbar, cfg: &CampaignConfig) -> Vec<FaultSet> {
    let mut sets = vec![FaultSet::none()];
    if cfg.max_faults >= 1 {
        sets.extend(
            enumerate_single_faults(net)
                .into_iter()
                .map(FaultSet::single),
        );
    }
    for k in 2..=cfg.max_faults {
        sets.extend(sample_fault_sets(
            net,
            k,
            cfg.fault_samples,
            0xFA17 + k as u64,
        ));
    }
    sets
}

/// Expands the grid into concrete scenarios.
pub fn enumerate_scenarios(cfg: &CampaignConfig) -> Result<Vec<Scenario>, ScenarioError> {
    let shape = Shape::new(&cfg.shape).map_err(|e| ScenarioError::BadShape(e.to_string()))?;
    let net = MdCrossbar::build(shape.clone());
    let fault_sets = enumerate_fault_sets(&net, cfg);

    // Fig. 5-style storm sources: PEs spread across the machine.
    let n = shape.num_pes();
    let storm_sources: Vec<usize> = (0..4.min(n)).map(|i| i * n / 4.min(n)).collect();

    let mut scenarios = Vec::new();
    for scheme in &cfg.schemes {
        for faults in &fault_sets {
            for &wk in &cfg.workloads {
                for seed in 0..cfg.seeds {
                    let workload = match wk {
                        WorkloadKind::Mixed => Workload::Mixed {
                            pattern: TrafficPattern::UniformRandom,
                            rate: 0.02,
                            packet_flits: 12,
                            window: 200,
                            broadcast_rate: 0.002,
                        },
                        WorkloadKind::Storm => Workload::BroadcastStorm {
                            sources: storm_sources.clone(),
                            flits: 16,
                        },
                        // Sweep the injection offset with the seed: the
                        // Fig. 9 race is offset-sensitive.
                        WorkloadKind::Detour => detour_stress_for(&shape, 24, 10 + seed % 28),
                        WorkloadKind::FaultStorm => Workload::FaultStorm {
                            rate: 0.01,
                            packet_flits: 12,
                            window: cfg.timeline_at.map_or(200, |at| at + 100),
                            burst: 8,
                        },
                    };
                    let mut s = Scenario::new(cfg.shape.clone(), scheme, workload, seed);
                    s.buffer_flits = cfg.buffer_flits;
                    s.max_cycles = cfg.max_cycles;
                    let s = match cfg.timeline_at {
                        // Live grid: the fault set becomes a mid-run
                        // injection script on a fault-free machine.
                        Some(at) => {
                            let mut tl = FaultTimeline::new();
                            for site in faults.sites() {
                                tl = tl.inject(site, at);
                            }
                            s.with_reconfig(ReconfigSpec::new(tl).with_policy(cfg.timeline_policy))
                        }
                        None => s.with_faults(faults.sites()),
                    };
                    scenarios.push(s);
                }
            }
        }
    }
    Ok(scenarios)
}

/// Why a scenario could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The scenario itself is malformed.
    Scenario(ScenarioError),
    /// The scheme cannot be configured for this shape/fault combination
    /// (e.g. conflicting crossbar faults) — a *skip*, not a failure.
    Registry(RegistryError),
    /// A live-reconfiguration row could not run its epoch protocol (bad
    /// timeline, or a mid-run fault set the scheme cannot be reprogrammed
    /// for) — also a *skip*.
    Reconfig(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Scenario(e) => write!(f, "{e}"),
            CampaignError::Registry(e) => write!(f, "{e}"),
            CampaignError::Reconfig(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ScenarioError> for CampaignError {
    fn from(e: ScenarioError) -> CampaignError {
        CampaignError::Scenario(e)
    }
}

impl From<RegistryError> for CampaignError {
    fn from(e: RegistryError) -> CampaignError {
        CampaignError::Registry(e)
    }
}

impl From<ReconfigError> for CampaignError {
    fn from(e: ReconfigError) -> CampaignError {
        CampaignError::Reconfig(e.to_string())
    }
}

/// FNV-1a over bytes — the digest used to compare replays bit-for-bit.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Which telemetry instruments to attach when running a scenario (see
/// [`run_scenario_instrumented`]). The default attaches none — the
/// zero-cost path [`run_scenario`] takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsOptions {
    /// Attach a [`MetricsObserver`] (channel/crossbar utilization, gather
    /// queue, detour rate).
    pub metrics: bool,
    /// Attach a [`StallProbe`] sampling the wait graph every N cycles.
    pub stall_probe: Option<u64>,
    /// Attach a [`TraceRecorder`] (Chrome `trace_event` JSON for Perfetto).
    pub trace: bool,
    /// Attach a [`FlightRecorder`] with this ring capacity
    /// ([`mdx_obs::DEFAULT_FLIGHT_CAPACITY`] is the usual choice). Failed
    /// runs then carry a [`PostmortemReport`] in their row and telemetry.
    pub flight: Option<usize>,
    /// Attach an [`AttributionObserver`] (per-packet latency phase
    /// decomposition, blame profiles, critical path). The row gains a
    /// [`RowAttribution`] summary and the conservation invariant
    /// `sum(phases) == latency` is asserted for every delivered packet.
    pub attribution: bool,
    /// Embed the raw delivered-latency pool in the row
    /// ([`ScenarioReport::latencies`]), so sweep-level reducers can take
    /// true pooled percentiles instead of averaging per-run ones.
    pub latencies: bool,
    /// Attach a [`WindowObserver`] with this window width in cycles:
    /// fixed-width telemetry intervals in a bounded ring, plus open-loop
    /// saturation detection. The row gains a [`RowStream`] summary; the
    /// full per-window table stays in [`Telemetry::windows`].
    pub windows: Option<u64>,
    /// Enable the engine's per-phase wall-clock split
    /// ([`mdx_sim::Simulator::set_phase_timing`]), so the row's
    /// [`RowProfile::phases`] is populated — the source of the
    /// source/step/probe child spans under an engine-run span.
    pub profile_phases: bool,
}

impl ObsOptions {
    /// True when no *observer* instrument is requested. Phase timing is
    /// deliberately not counted: it is engine self-measurement, never
    /// serialized onto the row, so a phase-timed row is still cacheable
    /// and byte-identical to an untimed one.
    pub fn is_none(&self) -> bool {
        !self.metrics
            && self.stall_probe.is_none()
            && !self.trace
            && self.flight.is_none()
            && !self.attribution
            && self.windows.is_none()
    }
}

/// The compact telemetry summary embedded in a [`ScenarioReport`] row when
/// the scenario ran with [`ObsOptions::metrics`] (and, for the wait-chain
/// fields, a stall probe).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowTelemetry {
    /// Mean output-port utilization of the scheme's S-XB, if it has one.
    pub sxb_util: Option<f64>,
    /// Mean output-port utilization of the scheme's D-XB, if it has one.
    pub dxb_util: Option<f64>,
    /// Highest mean output-port utilization among all *other* crossbars.
    pub max_other_xbar_util: Option<f64>,
    /// Peak S-XB serialization-queue depth.
    pub gather_peak: usize,
    /// Detour initiations observed.
    pub detours: u64,
    /// Longest wait chain any stall probe saw (0 without a probe).
    pub peak_wait_chain: usize,
    /// Longest blocked duration any stall probe saw, in cycles.
    pub peak_blocked_wait: u64,
}

/// The compact latency-attribution summary embedded in a
/// [`ScenarioReport`] row when the scenario ran with
/// [`ObsOptions::attribution`]: the run's phase totals, the heaviest
/// blame rows, and the critical-path shape. The full per-packet records
/// stay in [`Telemetry::attribution`].
///
/// `Deserialize` is implemented by hand in [`crate::diff`]: the diff tool
/// reads attribution sections leniently (older or wider schemas still
/// parse), unlike the derive's strict missing-field behavior.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RowAttribution {
    /// Delivered packets decomposed.
    pub delivered: usize,
    /// Whether `sum(phases) == latency` held for every delivered packet.
    pub conserved: bool,
    /// Total end-to-end latency over delivered packets (cycles).
    pub latency_total: u64,
    /// Total source injection queueing.
    pub inject_wait: u64,
    /// Total reconfiguration epoch-pause cycles.
    pub epoch_pause: u64,
    /// Total S-XB gather serialization wait.
    pub gather_wait: u64,
    /// Total blocked-behind-normal cycles.
    pub blocked_normal: u64,
    /// Total blocked-behind-S-XB (holder RC 1/2) cycles.
    pub blocked_gather: u64,
    /// Total blocked-behind-detour (holder RC 3) cycles.
    pub blocked_detour: u64,
    /// Total RC=3 in-flight cycles.
    pub detour_transfer: u64,
    /// Total ordinary transfer cycles.
    pub base_transfer: u64,
    /// Total detour hop overhead vs. fault-free dimension-order paths.
    pub detour_overhead_hops: u64,
    /// Heaviest blame rows as `(channel description, blocked cycles)`.
    pub top_blame: Vec<(String, u64)>,
    /// Wait-for chain length of the critical path.
    pub critical_len: usize,
    /// Total cycles across the critical path's waits.
    pub critical_wait: u64,
}

impl RowAttribution {
    /// Reduces a full [`AttributionReport`] to the row summary.
    pub fn from_report(rep: &AttributionReport) -> RowAttribution {
        RowAttribution {
            delivered: rep.delivered,
            conserved: rep.conserved,
            latency_total: rep.totals.latency,
            inject_wait: rep.totals.inject_wait,
            epoch_pause: rep.totals.epoch_pause,
            gather_wait: rep.totals.gather_wait,
            blocked_normal: rep.totals.blocked_normal,
            blocked_gather: rep.totals.blocked_gather,
            blocked_detour: rep.totals.blocked_detour,
            detour_transfer: rep.totals.detour_transfer,
            base_transfer: rep.totals.base_transfer,
            detour_overhead_hops: rep.totals.detour_overhead_hops,
            top_blame: rep
                .channel_blame
                .iter()
                .take(3)
                .map(|c| (c.desc.clone(), c.blocked_cycles))
                .collect(),
            critical_len: rep.critical.steps.len(),
            critical_wait: rep.critical.waited_total,
        }
    }

    /// `(name, cycles)` pairs of the cycle phases, in render order — the
    /// schema [`crate::diff`] compares run-to-run.
    pub fn phases(&self) -> [(&'static str, u64); 8] {
        [
            ("inject_wait", self.inject_wait),
            ("epoch_pause", self.epoch_pause),
            ("gather_wait", self.gather_wait),
            ("blocked_normal", self.blocked_normal),
            ("blocked_gather", self.blocked_gather),
            ("blocked_detour", self.blocked_detour),
            ("detour_transfer", self.detour_transfer),
            ("base_transfer", self.base_transfer),
        ]
    }
}

/// The compact open-loop summary embedded in a [`ScenarioReport`] row
/// when the scenario ran with [`ObsOptions::windows`]: whole-run
/// delivered-vs-offered accounting plus the saturation verdict. The full
/// per-window table stays in [`Telemetry::windows`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowStream {
    /// Window width in cycles.
    pub window: u64,
    /// Windows retained in the ring.
    pub windows: usize,
    /// Windows evicted from the ring (the run outlived the cap).
    pub dropped_windows: u64,
    /// Delivered-rate / offered-rate over the whole run (1.0 = keeping up).
    pub delivery_ratio: f64,
    /// Start cycle of the first sustained saturated stretch, if any.
    pub saturated_at: Option<u64>,
    /// Largest end-of-window in-flight backlog among retained windows.
    pub peak_backlog: u64,
    /// Mean delivered latency over the whole run, in cycles (0 when
    /// nothing finished).
    pub mean_latency: f64,
}

impl RowStream {
    /// Reduces a full [`WindowReport`] to the row summary.
    pub fn from_report(rep: &WindowReport) -> RowStream {
        let mean = rep.totals.mean_latency();
        RowStream {
            window: rep.window,
            windows: rep.windows.len(),
            dropped_windows: rep.dropped_windows,
            delivery_ratio: rep.delivery_ratio(),
            saturated_at: rep.saturated_at,
            peak_backlog: rep.windows.iter().map(|w| w.backlog).max().unwrap_or(0),
            mean_latency: if mean.is_nan() { 0.0 } else { mean },
        }
    }
}

/// The full (non-embedded) telemetry of one instrumented run.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Metrics report, when [`ObsOptions::metrics`] was set.
    pub metrics: Option<MetricsReport>,
    /// Stall history, when [`ObsOptions::stall_probe`] was set.
    pub stall: Option<StallReport>,
    /// Rendered Chrome `trace_event` document, when [`ObsOptions::trace`]
    /// was set.
    pub trace: Option<String>,
    /// Deadlock post-mortem, when [`ObsOptions::flight`] was set and the
    /// run failed.
    pub postmortem: Option<PostmortemReport>,
    /// Full latency attribution (per-packet phases, blame profiles,
    /// critical path), when [`ObsOptions::attribution`] was set.
    pub attribution: Option<AttributionReport>,
    /// Per-window open-loop telemetry, when [`ObsOptions::windows`] was
    /// set.
    pub windows: Option<WindowReport>,
    /// S-XB name under the scenario's scheme (e.g. `X0-XB`), for labeling.
    pub sxb_name: Option<String>,
    /// D-XB name under the scenario's scheme.
    pub dxb_name: Option<String>,
}

/// One campaign row: a scenario plus everything observed running it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// The replay token (also recoverable from `scenario`).
    pub token: String,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Terminal condition, as a stable string: `completed`, `deadlock`,
    /// `stalled`, or `cycle-limit`.
    pub outcome: String,
    /// Packets offered by the workload.
    pub offered: usize,
    /// Run aggregates.
    pub stats: SimStats,
    /// Latency percentiles (p50, p95, p99) over delivered packets.
    pub latency_p50: Option<u64>,
    /// 95th percentile latency.
    pub latency_p95: Option<u64>,
    /// 99th percentile latency.
    pub latency_p99: Option<u64>,
    /// The busiest channels as `(description, flits crossed)`, descending.
    pub hot_channels: Vec<(String, u64)>,
    /// The cyclic wait, when the run deadlocked.
    pub deadlock: Option<DeadlockInfo>,
    /// FNV-1a digest (hex) of the full serialized [`mdx_sim::SimResult`] —
    /// two runs match bit-for-bit iff their digests match.
    pub digest: String,
    /// Telemetry summary, when the row ran instrumented (see
    /// [`run_scenario_instrumented`]); `None` on plain runs. Excluded from
    /// the digest, which hashes only the engine's result.
    pub telemetry: Option<RowTelemetry>,
    /// Flight-recorder post-mortem, when the row ran with
    /// [`ObsOptions::flight`] and ended abnormally. Like telemetry,
    /// excluded from the digest.
    pub postmortem: Option<PostmortemReport>,
    /// Epoch-protocol evidence (phase timings, victim accounting,
    /// transition safety), when the scenario carried a fault timeline.
    /// Deterministic per token, but excluded from the digest, which hashes
    /// only the engine's result.
    pub reconfig: Option<ReconfigReport>,
    /// Latency-attribution summary, when the row ran with
    /// [`ObsOptions::attribution`]. Deterministic per token; excluded
    /// from the digest, which hashes only the engine's result.
    pub attribution: Option<RowAttribution>,
    /// Raw delivered-latency pool (sorted), when the row ran with
    /// [`ObsOptions::latencies`] — feeds sweep-level pooled percentiles.
    pub latencies: Option<Vec<u64>>,
    /// Open-loop streaming summary, when the row ran with
    /// [`ObsOptions::windows`]. Like telemetry, excluded from the digest.
    pub stream: Option<RowStream>,
    /// Engine self-profile (wall-clock, idle-tick fraction, occupancy).
    /// Always populated on fresh runs; its wall-clock fields are
    /// machine-dependent, so — like telemetry — it is excluded from the
    /// digest, which hashes only the engine's canonical result.
    pub profile: Option<RowProfile>,
}

impl ScenarioReport {
    /// Whether this row ended in a detected deadlock.
    pub fn is_deadlock(&self) -> bool {
        self.outcome == "deadlock"
    }
}

/// Stable outcome label for report rows.
fn outcome_label(o: &SimOutcome) -> &'static str {
    match o {
        SimOutcome::Completed => "completed",
        SimOutcome::Deadlock(_) => "deadlock",
        SimOutcome::Stalled => "stalled",
        SimOutcome::CycleLimit => "cycle-limit",
    }
}

/// Runs one scenario to completion and aggregates its outcome. No
/// telemetry instruments are attached — the engine takes its zero-cost
/// uninstrumented path. See [`run_scenario_instrumented`] to attach them.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, CampaignError> {
    run_scenario_instrumented(scenario, &ObsOptions::default()).map(|(report, _)| report)
}

/// Runs one scenario with the telemetry instruments selected by `opts`
/// attached, returning the campaign row (with its [`RowTelemetry`] summary
/// when metrics ran) plus the full [`Telemetry`].
///
/// The replay digest is unaffected by instrumentation: observers only read
/// engine state, and the digest hashes the engine's [`mdx_sim::SimResult`].
pub fn run_scenario_instrumented(
    scenario: &Scenario,
    opts: &ObsOptions,
) -> Result<(ScenarioReport, Telemetry), CampaignError> {
    let shape = scenario.shape_obj()?;
    let faults = scenario.fault_set()?;
    let net = scenario.network()?;
    let scheme = build_scheme_for(&scenario.scheme, &net, &faults)?;
    let sxb_name = scheme.serializing_node().map(|n| n.to_string());
    let dxb_name = scheme.detour_node().map(|n| n.to_string());
    // Lane count, so the flight recorder's channel names match the
    // engine's deadlock witness.
    let vcs = scheme.max_vcs().max(1) as usize;
    let specs = scenario.specs(&shape, &faults);
    let stream_source = scenario.stream_source(&shape, &faults)?;

    let mut sim = Simulator::new(net.graph().clone(), scheme, scenario.sim_config());
    if opts.profile_phases {
        sim.set_phase_timing(true);
    }

    let mut metrics_handle = None;
    let mut stall_handle = None;
    let mut trace_handle = None;
    let mut flight_handle = None;
    let mut attribution_handle = None;
    let mut window_handle = None;
    if !opts.is_none() {
        let mut fan = FanoutObserver::new();
        if opts.metrics {
            let (obs, handle) = MetricsObserver::new(net.graph().clone());
            fan.push(Box::new(obs));
            metrics_handle = Some(handle);
        }
        if let Some(interval) = opts.stall_probe {
            let (probe, handle) = StallProbe::new(interval);
            fan.push(Box::new(probe));
            stall_handle = Some(handle);
        }
        if opts.trace {
            let (rec, handle) = TraceRecorder::new(net.graph());
            fan.push(Box::new(rec));
            trace_handle = Some(handle);
        }
        if let Some(capacity) = opts.flight {
            let (rec, handle) = FlightRecorder::new(net.graph().clone(), vcs, capacity);
            fan.push(Box::new(rec));
            flight_handle = Some(handle);
        }
        if opts.attribution {
            let (obs, handle) = AttributionObserver::new(net.graph().clone());
            fan.push(Box::new(obs));
            attribution_handle = Some(handle);
        }
        if let Some(width) = opts.windows {
            let (obs, handle) = WindowObserver::new(width);
            fan.push(Box::new(obs));
            window_handle = Some(handle);
        }
        sim.set_observer(Box::new(fan));
    }

    for &spec in &specs {
        sim.schedule(spec);
    }
    let streaming = stream_source.is_some();
    if let Some(source) = stream_source {
        sim.set_traffic_source(Box::new(source));
    }
    // Streaming scenarios with storm lines run the epoch protocol even
    // without an explicit reconfig segment — the spec is the timeline.
    let effective_reconfig = scenario.effective_reconfig();
    let (result, reconfig) = match &effective_reconfig {
        Some(rspec) => {
            // The epoch protocol reprograms crossbar switches; on the
            // non-crossbar topologies a timeline is a skip, not a run.
            let mdx = net.as_mdx().ok_or_else(|| {
                CampaignError::Reconfig(format!(
                    "live reconfiguration requires the mdx topology, not '{}'",
                    scenario.topology
                ))
            })?;
            let out = drive_reconfig(&mut sim, mdx, &scenario.scheme, &faults, rspec)?;
            (out.result, Some(out.report))
        }
        None => (sim.run(), None),
    };
    let offered = if streaming {
        sim.source_offered()
    } else {
        specs.len()
    };

    let mut hot: Vec<(String, u64)> = sim
        .channel_flits()
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, &f)| (net.graph().describe_channel(ChannelId(i as u32)), f))
        .collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    hot.truncate(5);

    let digest = format!(
        "{:016x}",
        fnv1a64(
            serde_json::to_string(&result)
                .expect("sim result serializes")
                .as_bytes()
        )
    );
    let deadlock = match &result.outcome {
        SimOutcome::Deadlock(info) => Some(info.clone()),
        _ => None,
    };

    let attribution_report = attribution_handle.map(|h| h.report(&result));
    if let Some(rep) = &attribution_report {
        // The hard invariant behind `--attribution`: the phase
        // decomposition must conserve every delivered packet's latency
        // against the engine's own accounting. A violation is a bug in
        // either the observer stream or the sweep — never row data.
        assert!(
            rep.conserved,
            "attribution conservation violated for packet(s) {:?} (token {})",
            rep.violations,
            scenario.token()
        );
    }

    let telemetry = Telemetry {
        metrics: metrics_handle.map(|h| h.report(result.stats.cycles)),
        stall: stall_handle.map(|h| h.report()),
        trace: trace_handle.map(|h| h.render(result.stats.cycles)),
        postmortem: flight_handle.and_then(|h| h.postmortem(&result.outcome, &result.diagnostics)),
        attribution: attribution_report,
        windows: window_handle.map(|h| h.report(result.stats.cycles)),
        sxb_name: sxb_name.clone(),
        dxb_name: dxb_name.clone(),
    };
    let row_telemetry = telemetry.metrics.as_ref().map(|m| {
        let util_of = |name: &Option<String>| {
            name.as_deref()
                .and_then(|n| m.xbar(n))
                .map(|x| x.utilization)
        };
        let special: Vec<&str> = [sxb_name.as_deref(), dxb_name.as_deref()]
            .into_iter()
            .flatten()
            .collect();
        RowTelemetry {
            sxb_util: util_of(&sxb_name),
            dxb_util: util_of(&dxb_name),
            max_other_xbar_util: m
                .crossbars
                .iter()
                .filter(|x| !special.contains(&x.name.as_str()))
                .map(|x| x.utilization)
                .fold(None, |acc: Option<f64>, u| {
                    Some(acc.map_or(u, |a| a.max(u)))
                }),
            gather_peak: m.gather_peak,
            detours: m.detours,
            peak_wait_chain: telemetry.stall.as_ref().map_or(0, |s| s.peak_chain()),
            peak_blocked_wait: telemetry.stall.as_ref().map_or(0, |s| s.peak_wait()),
        }
    });

    // One sort serves all three percentile columns.
    let lats = result.sorted_latencies();
    let report = ScenarioReport {
        token: scenario.token(),
        scenario: scenario.clone(),
        outcome: outcome_label(&result.outcome).to_string(),
        offered,
        stats: result.stats.clone(),
        latency_p50: lats.percentile(50),
        latency_p95: lats.percentile(95),
        latency_p99: lats.percentile(99),
        hot_channels: hot,
        deadlock,
        digest,
        telemetry: row_telemetry,
        postmortem: telemetry.postmortem.clone(),
        reconfig,
        attribution: telemetry
            .attribution
            .as_ref()
            .map(RowAttribution::from_report),
        latencies: opts.latencies.then(|| lats.as_slice().to_vec()),
        stream: telemetry.windows.as_ref().map(RowStream::from_report),
        profile: result.profile.as_ref().map(RowProfile::from_engine),
    };
    Ok((report, telemetry))
}

/// A finished campaign: rows for every runnable scenario, plus the
/// scenarios skipped because their scheme/fault combination admits no
/// routing configuration.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// One row per executed scenario, in enumeration order.
    pub reports: Vec<ScenarioReport>,
    /// `(scenario, reason)` for combinations that cannot be configured.
    pub skipped: Vec<(Scenario, String)>,
}

impl CampaignResult {
    /// Rows that deadlocked.
    pub fn deadlocks(&self) -> impl Iterator<Item = &ScenarioReport> {
        self.reports.iter().filter(|r| r.is_deadlock())
    }

    /// Deadlock count per scheme id, in first-seen order.
    pub fn deadlocks_by_scheme(&self) -> Vec<(String, usize, usize)> {
        let mut rows: Vec<(String, usize, usize)> = Vec::new();
        for r in &self.reports {
            let scheme = &r.scenario.scheme;
            let entry = match rows.iter_mut().find(|(s, _, _)| s == scheme) {
                Some(e) => e,
                None => {
                    rows.push((scheme.clone(), 0, 0));
                    rows.last_mut().expect("just pushed")
                }
            };
            entry.1 += 1;
            if r.is_deadlock() {
                entry.2 += 1;
            }
        }
        rows
    }

    /// Serializes every row as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&serde_json::to_string(r).expect("report serializes"));
            out.push('\n');
        }
        out
    }

    /// A human-readable per-scheme summary table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>9} {:>10} {:>8} {:>11} {:>10} {:>10}\n",
            "scheme", "scenarios", "completed", "deadlock", "cycle-limit", "delivered", "p95 lat"
        ));
        for (scheme, _, _) in self.deadlocks_by_scheme() {
            let rows: Vec<&ScenarioReport> = self
                .reports
                .iter()
                .filter(|r| r.scenario.scheme == scheme)
                .collect();
            let completed = rows.iter().filter(|r| r.outcome == "completed").count();
            let deadlock = rows.iter().filter(|r| r.outcome == "deadlock").count();
            let limit = rows
                .iter()
                .filter(|r| r.outcome == "cycle-limit" || r.outcome == "stalled")
                .count();
            let delivered: usize = rows.iter().map(|r| r.stats.delivered).sum();
            let mut p95s: Vec<u64> = rows.iter().filter_map(|r| r.latency_p95).collect();
            p95s.sort_unstable();
            let p95 = p95s
                .get(p95s.len().saturating_sub(1) / 2)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{scheme:<16} {:>9} {completed:>10} {deadlock:>8} {limit:>11} {delivered:>10} {p95:>10}\n",
                rows.len()
            ));
        }
        if !self.skipped.is_empty() {
            out.push_str(&format!(
                "({} scenario(s) skipped: unconfigurable scheme/fault combinations)\n",
                self.skipped.len()
            ));
        }
        out
    }
}

/// Runs every scenario in parallel (rayon) and collects the rows in
/// enumeration order.
pub fn run_campaign(scenarios: Vec<Scenario>) -> CampaignResult {
    run_campaign_with(scenarios, &ObsOptions::default())
}

/// [`run_campaign`] with telemetry instruments attached to every row. The
/// per-row [`RowTelemetry`] summaries land in the reports; the full
/// [`Telemetry`] payloads (trace documents, raw series) are dropped — use
/// [`run_scenario_instrumented`] for a single run when those are needed.
pub fn run_campaign_with(scenarios: Vec<Scenario>, opts: &ObsOptions) -> CampaignResult {
    run_campaign_metered(scenarios, opts, None)
}

/// [`run_campaign_with`] with sweep-level telemetry fed into a
/// [`CampaignMeter`]: per-row run and serialize latency histograms, a
/// busy-worker gauge sampled at each row start (rayon saturation), rows/s
/// of the sweep, and every row's engine self-profile folded into the
/// `mdx_engine_*` lifetime instruments. With `meter: None` this is
/// byte-identical to [`run_campaign_with`] — the disabled path costs one
/// branch per row.
pub fn run_campaign_metered(
    scenarios: Vec<Scenario>,
    opts: &ObsOptions,
    meter: Option<&CampaignMeter>,
) -> CampaignResult {
    run_campaign_traced(scenarios, opts, meter, None)
}

/// Nests the engine-side children under a finished `run` span in `t`:
///
/// - With a phase-timed profile ([`RowProfile::phases`]), wall-µs
///   source/step/probe children laid end to end from the run span's start
///   (clamped to its end — the split excludes result collection, so the
///   phases cover a prefix of the run).
/// - With a [`ReconfigReport`] (the scenario carried a
///   [`mdx_fault::FaultTimeline`]), a cycle-domain subtree: an `engine`
///   span covering `[0, cycles]`, one `epoch N` span per reconfiguration
///   epoch, and its five controller phases (detect/quiesce/drain/
///   reprogram/resume) tiling the epoch from
///   [`mdx_reconfig::EpochReport::phase_windows`].
///
/// Shared by the serve layer's per-request traces and the campaign
/// runner's per-row traces so both emit identical engine subtrees.
pub fn push_engine_spans(
    t: &mut mdx_obs::TraceBuilder,
    run_span: u64,
    run_start_us: u64,
    run_end_us: u64,
    phases: Option<&mdx_sim::PhaseSplit>,
    cycles: u64,
    reconfig: Option<&ReconfigReport>,
) {
    use mdx_obs::SpanUnit;
    if let Some(split) = phases {
        let mut at = run_start_us;
        for (name, secs) in split.named() {
            let end = (at + (secs * 1e6) as u64).min(run_end_us);
            t.add(Some(run_span), name, at, end, SpanUnit::Micros);
            at = end;
        }
    }
    if let Some(rc) = reconfig {
        let engine = t.add(Some(run_span), "engine", 0, cycles, SpanUnit::Cycles);
        for e in &rc.epochs {
            let windows = e.phase_windows();
            let epoch_end = windows[windows.len() - 1].2;
            let epoch_span = t.add(
                Some(engine),
                &format!("epoch {}", e.epoch),
                e.event_at,
                epoch_end,
                SpanUnit::Cycles,
            );
            for (name, start, end) in windows {
                t.add(Some(epoch_span), name, start, end, SpanUnit::Cycles);
            }
        }
    }
}

/// [`run_campaign_metered`] with a [`mdx_obs::SpanCollector`] attached:
/// every row is offered as a trace — a `row` root span tagged with the
/// scenario's `MDX1.` token, replay digest, and outcome (so a slow span
/// replays deterministically from the log alone), `run` and `serialize`
/// children tiling the root, and the engine subtree from
/// [`push_engine_spans`]. Head sampling is the collector's; abnormal
/// outcomes (deadlock, cycle-limit, stalled) are always kept. With
/// `spans: None` this is [`run_campaign_metered`].
pub fn run_campaign_traced(
    scenarios: Vec<Scenario>,
    opts: &ObsOptions,
    meter: Option<&CampaignMeter>,
    spans: Option<&mdx_obs::SpanCollector>,
) -> CampaignResult {
    let sweep_start = std::time::Instant::now();
    let outcomes: Vec<(Scenario, Result<ScenarioReport, CampaignError>)> = scenarios
        .into_par_iter()
        .map(|s| {
            // Head-sample at row start; the keep decision is revisited at
            // the end only to force-keep abnormal outcomes.
            let tracing = spans.map(|c| (c, c.head_sample()));
            if let Some(m) = meter {
                m.workers_busy.inc();
                m.worker_saturation.observe(m.workers_busy.get());
            }
            let row_start = std::time::Instant::now();
            let row_start_us = sweep_start.elapsed().as_micros() as u64;
            let r = run_scenario_instrumented(&s, opts).map(|(report, _)| report);
            let run_end_us = sweep_start.elapsed().as_micros() as u64;
            if let Some(m) = meter {
                m.row_run_seconds.observe_duration(row_start.elapsed());
                m.workers_busy.dec();
            }
            match &r {
                Ok(report) => {
                    if meter.is_some() || tracing.is_some() {
                        let ser_start = std::time::Instant::now();
                        let _ = serde_json::to_string(report).expect("report serializes");
                        if let Some(m) = meter {
                            m.row_serialize_seconds
                                .observe_duration(ser_start.elapsed());
                        }
                    }
                    if let Some(m) = meter {
                        m.rows.inc();
                        if let Some(p) = &report.profile {
                            m.engine.observe(p);
                        }
                    }
                    if let Some((c, sampled)) = tracing {
                        if sampled || report.outcome != "completed" {
                            let end_us = sweep_start.elapsed().as_micros() as u64;
                            let mut t = mdx_obs::TraceBuilder::new(c.next_trace_id());
                            let root =
                                t.add(None, "row", row_start_us, end_us, mdx_obs::SpanUnit::Micros);
                            t.attr(root, "token", report.token.clone());
                            t.attr(root, "digest", report.digest.clone());
                            t.attr(root, "outcome", report.outcome.clone());
                            let run_span = t.add(
                                Some(root),
                                "run",
                                row_start_us,
                                run_end_us,
                                mdx_obs::SpanUnit::Micros,
                            );
                            t.add(
                                Some(root),
                                "serialize",
                                run_end_us,
                                end_us,
                                mdx_obs::SpanUnit::Micros,
                            );
                            push_engine_spans(
                                &mut t,
                                run_span,
                                row_start_us,
                                run_end_us,
                                report.profile.as_ref().and_then(|p| p.phases.as_ref()),
                                report.stats.cycles,
                                report.reconfig.as_ref(),
                            );
                            c.offer(t.finish());
                        } else {
                            c.drop_unsampled();
                        }
                    }
                }
                Err(_) => {
                    if let Some(m) = meter {
                        m.rows_failed.inc();
                    }
                }
            }
            (s, r)
        })
        .collect();
    let mut reports = Vec::new();
    let mut skipped = Vec::new();
    for (scenario, outcome) in outcomes {
        match outcome {
            Ok(report) => reports.push(report),
            Err(CampaignError::Registry(e)) => skipped.push((scenario, e.to_string())),
            Err(CampaignError::Scenario(e)) => skipped.push((scenario, e.to_string())),
            Err(CampaignError::Reconfig(e)) => skipped.push((scenario, e)),
        }
    }
    if let Some(m) = meter {
        let elapsed = sweep_start.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            m.rows_per_sec.set(reports.len() as f64 / elapsed);
        }
    }
    CampaignResult { reports, skipped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_fault::FaultSite;
    use mdx_topology::Coord;

    #[test]
    fn campaign_schemes_are_a_subset_of_the_registry() {
        // The default sweep is a *curated* subset of the zoo (the paper's
        // scheme and its two mdx baselines), but every id in it must stay
        // buildable through the registry — a rename there must fail here,
        // not at campaign runtime.
        for id in CAMPAIGN_SCHEMES {
            assert!(
                mdx_core::registry::SCHEME_IDS.contains(id),
                "CAMPAIGN_SCHEMES entry `{id}` is not a registered scheme"
            );
        }
    }

    #[test]
    fn enumerate_counts_multiply() {
        let cfg = CampaignConfig {
            schemes: vec!["sr2201".to_string()],
            max_faults: 0,
            seeds: 3,
            workloads: vec![WorkloadKind::Mixed, WorkloadKind::Storm],
            ..CampaignConfig::default()
        };
        let scenarios = enumerate_scenarios(&cfg).unwrap();
        // 1 scheme x 1 fault set (none) x 2 workloads x 3 seeds.
        assert_eq!(scenarios.len(), 6);
    }

    #[test]
    fn single_fault_universe_is_exhaustive() {
        let cfg = CampaignConfig::default();
        let net = MdCrossbar::build(Shape::fig2());
        // Fig. 2: 7 crossbars + 12 routers + 12 PEs, plus fault-free.
        assert_eq!(enumerate_fault_sets(&net, &cfg).len(), 1 + 31);
    }

    #[test]
    fn run_scenario_completes_and_digests() {
        let s = Scenario::new(
            vec![4, 3],
            "sr2201",
            Workload::BroadcastStorm {
                sources: vec![0, 4, 8],
                flits: 16,
            },
            1,
        );
        let r = run_scenario(&s).unwrap();
        assert_eq!(r.outcome, "completed");
        assert_eq!(r.offered, 3);
        assert_eq!(r.stats.delivered, 3);
        assert!(!r.hot_channels.is_empty());
        // The digest is a replay invariant.
        assert_eq!(run_scenario(&s).unwrap().digest, r.digest);
    }

    #[test]
    fn detour_scenario_deadlocks_separate_dxb_only() {
        let shape = Shape::fig2();
        let faulty = shape.index_of(Coord::new(&[1, 0]));
        let mk = |scheme: &str, seed: u64, offset: u64| {
            Scenario::new(
                vec![4, 3],
                scheme,
                detour_stress_for(&shape, 24, offset),
                seed,
            )
            .with_faults([FaultSite::Router(faulty)])
        };
        let mut bad_deadlocks = 0;
        for seed in 0..8 {
            for offset in 10..38 {
                let bad = run_scenario(&mk("separate-dxb", seed, offset)).unwrap();
                if bad.is_deadlock() {
                    bad_deadlocks += 1;
                    assert!(bad.deadlock.is_some());
                }
                let good = run_scenario(&mk("sr2201", seed, offset)).unwrap();
                assert_ne!(good.outcome, "deadlock");
            }
        }
        assert!(bad_deadlocks > 0, "fig9 variant never deadlocked");
    }

    #[test]
    fn skips_unconfigurable_combinations() {
        let s = Scenario::new(
            vec![4, 3],
            "sr2201",
            Workload::BroadcastStorm {
                sources: vec![0],
                flits: 8,
            },
            0,
        )
        .with_faults([
            FaultSite::Xbar(mdx_topology::XbarRef { dim: 0, line: 0 }),
            FaultSite::Xbar(mdx_topology::XbarRef { dim: 1, line: 1 }),
        ]);
        let out = run_campaign(vec![s]);
        assert!(out.reports.is_empty());
        assert_eq!(out.skipped.len(), 1);
    }
}
