//! Seeded sampling of multi-fault sets.
//!
//! The SR2201 facility is specified for a single fault, so exhaustive
//! experiments enumerate [`crate::enumerate_single_faults`]. Probing beyond
//! the specification (the paper's future-work direction) means k-fault
//! sets, and for k >= 2 the universe is too large to enumerate — the Fig. 2
//! network alone has over 400 distinct pairs. This module draws distinct
//! k-subsets reproducibly from a seed so a campaign can sweep a manageable
//! sample and any drawn set can be regenerated later.

use crate::{enumerate_single_faults, FaultSet, FaultSite};
use mdx_topology::MdCrossbar;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::collections::BTreeSet;

/// Draws up to `count` *distinct* fault sets of exactly `k` sites from
/// `net`'s single-fault universe, deterministically from `seed`.
///
/// Returns fewer than `count` sets when the universe has fewer than `count`
/// distinct k-subsets (in particular, `k = 0` yields the single empty set).
/// The result is sorted (by `FaultSet`'s derived order) so output order is
/// independent of draw order.
pub fn sample_fault_sets(net: &MdCrossbar, k: usize, count: usize, seed: u64) -> Vec<FaultSet> {
    let universe = enumerate_single_faults(net);
    if k > universe.len() || count == 0 {
        return Vec::new();
    }
    if k == 0 {
        return vec![FaultSet::none()];
    }

    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut seen: BTreeSet<Vec<FaultSite>> = BTreeSet::new();

    // Rejection-sample distinct subsets. The attempt budget guards the
    // (degenerate) case where `count` approaches the number of distinct
    // subsets and collisions dominate.
    let max_attempts = count.saturating_mul(20).saturating_add(200);
    let mut attempts = 0;
    while seen.len() < count && attempts < max_attempts {
        attempts += 1;
        let mut pick: Vec<FaultSite> = universe.choose_multiple(&mut rng, k).copied().collect();
        pick.sort_unstable();
        seen.insert(pick);
    }

    seen.into_iter()
        .map(|sites| sites.into_iter().collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_topology::Shape;

    fn fig2() -> MdCrossbar {
        MdCrossbar::build(Shape::fig2())
    }

    #[test]
    fn sizes_and_distinctness() {
        let net = fig2();
        let sets = sample_fault_sets(&net, 2, 16, 7);
        assert_eq!(sets.len(), 16);
        for s in &sets {
            assert_eq!(s.len(), 2);
        }
        let uniq: BTreeSet<_> = sets.iter().map(|s| s.sites().collect::<Vec<_>>()).collect();
        assert_eq!(uniq.len(), sets.len());
    }

    #[test]
    fn deterministic_in_seed() {
        let net = fig2();
        assert_eq!(
            sample_fault_sets(&net, 3, 8, 42),
            sample_fault_sets(&net, 3, 8, 42)
        );
        assert_ne!(
            sample_fault_sets(&net, 3, 8, 42),
            sample_fault_sets(&net, 3, 8, 43)
        );
    }

    #[test]
    fn edge_cases() {
        let net = fig2();
        assert_eq!(sample_fault_sets(&net, 0, 5, 0), vec![FaultSet::none()]);
        assert!(sample_fault_sets(&net, 1000, 5, 0).is_empty());
        assert!(sample_fault_sets(&net, 1, 0, 0).is_empty());
        // More requested than exist: k = universe size has exactly 1 subset.
        let all = sample_fault_sets(&net, 31, 10, 0);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].len(), 31);
    }
}
