//! Graph-level reachability under faults.
//!
//! Gives the *upper bound* any routing scheme can achieve: if two PEs are
//! disconnected at the graph level, no detour facility can help. The
//! experiments use this to check the paper's facility delivers everything
//! that is physically deliverable under a single fault.

use crate::FaultSet;
use mdx_topology::{MdCrossbar, NetworkGraph, Node, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Result of a reachability sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectivityReport {
    /// PEs that can still source/sink traffic (not themselves disabled).
    pub usable_pes: Vec<usize>,
    /// Ordered (src, dst) pairs of usable PEs that remain graph-connected
    /// when faulty switches are removed.
    pub connected_pairs: usize,
    /// Ordered usable pairs that are graph-disconnected.
    pub disconnected_pairs: usize,
}

impl ConnectivityReport {
    /// Whether every usable pair remains connected.
    pub fn fully_connected(&self) -> bool {
        self.disconnected_pairs == 0
    }
}

/// BFS over the channel graph skipping disabled nodes.
fn reachable_from(g: &NetworkGraph, faults: &FaultSet, src: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.num_nodes()];
    if faults.disables(g.node(src)) {
        return seen;
    }
    let mut q = VecDeque::new();
    seen[src.0 as usize] = true;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for &ch in g.outgoing(u) {
            let v = g.channel(ch).dst;
            if !seen[v.0 as usize] && !faults.disables(g.node(v)) {
                seen[v.0 as usize] = true;
                q.push_back(v);
            }
        }
    }
    seen
}

/// Sweeps all ordered PE pairs of `net` under `faults`.
pub fn reachable_pairs(net: &MdCrossbar, faults: &FaultSet) -> ConnectivityReport {
    let g = net.graph();
    let n = net.shape().num_pes();
    let usable: Vec<usize> = (0..n).filter(|&p| faults.pe_usable(p)).collect();
    let mut connected = 0usize;
    let mut disconnected = 0usize;
    for &src in &usable {
        let seen = reachable_from(g, faults, net.pe(src));
        for &dst in &usable {
            if dst == src {
                continue;
            }
            if seen[net.pe(dst).0 as usize] {
                connected += 1;
            } else {
                disconnected += 1;
            }
        }
    }
    ConnectivityReport {
        usable_pes: usable,
        connected_pairs: connected,
        disconnected_pairs: disconnected,
    }
}

/// Whether one specific pair stays connected under `faults`.
pub fn pair_connected(net: &MdCrossbar, faults: &FaultSet, src: usize, dst: usize) -> bool {
    if !faults.pe_usable(src) || !faults.pe_usable(dst) {
        return false;
    }
    let seen = reachable_from(net.graph(), faults, net.pe(src));
    seen[net.pe(dst).0 as usize]
}

/// Whether a node survives: convenience for filtering switch lists.
pub fn node_usable(faults: &FaultSet, node: Node) -> bool {
    !faults.disables(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_single_faults, FaultSite};
    use mdx_topology::{Shape, XbarRef};

    fn fig2() -> MdCrossbar {
        MdCrossbar::build(Shape::fig2())
    }

    #[test]
    fn fault_free_network_is_fully_connected() {
        let net = fig2();
        let rep = reachable_pairs(&net, &FaultSet::none());
        assert_eq!(rep.usable_pes.len(), 12);
        assert_eq!(rep.connected_pairs, 12 * 11);
        assert!(rep.fully_connected());
    }

    #[test]
    fn every_single_fault_leaves_survivors_connected() {
        // The premise of the paper's facility: with d >= 2 one faulty switch
        // never partitions the surviving PEs (there are d disjoint crossbar
        // families).
        let net = fig2();
        for site in enumerate_single_faults(&net) {
            let rep = reachable_pairs(&net, &FaultSet::single(site));
            assert!(rep.fully_connected(), "{site} partitioned the network");
        }
    }

    #[test]
    fn one_dimensional_crossbar_fault_partitions() {
        // With d = 1 the sole crossbar is a single point of failure — this is
        // why the facility needs d >= 2 to be useful.
        let net = MdCrossbar::build(Shape::new(&[4]).unwrap());
        let rep = reachable_pairs(
            &net,
            &FaultSet::single(FaultSite::Xbar(XbarRef { dim: 0, line: 0 })),
        );
        assert!(!rep.fully_connected());
        assert_eq!(rep.connected_pairs, 0);
    }

    #[test]
    fn router_fault_removes_its_pe_from_usable() {
        let net = fig2();
        let rep = reachable_pairs(&net, &FaultSet::single(FaultSite::Router(2)));
        assert_eq!(rep.usable_pes.len(), 11);
        assert!(!rep.usable_pes.contains(&2));
        assert!(rep.fully_connected());
    }

    #[test]
    fn pair_connected_handles_faulty_endpoints() {
        let net = fig2();
        let f = FaultSet::single(FaultSite::Router(2));
        assert!(!pair_connected(&net, &f, 2, 5));
        assert!(!pair_connected(&net, &f, 5, 2));
        assert!(pair_connected(&net, &f, 1, 5));
    }

    #[test]
    fn double_fault_can_partition() {
        // Both crossbars of PE (0,0)'s router faulty: PE0 is isolated even
        // though its router works.
        let net = fig2();
        let mut f = FaultSet::none();
        f.insert(FaultSite::Xbar(XbarRef { dim: 0, line: 0 }));
        f.insert(FaultSite::Xbar(XbarRef { dim: 1, line: 0 }));
        let rep = reachable_pairs(&net, &f);
        assert!(!rep.fully_connected());
    }
}
