//! Per-switch neighbor fault registers.
//!
//! Paper Sec. 4: *"to minimize the additional hardware, each switch has only
//! the information of the switches that they are physically connected to
//! ... This information has at most a few bits. For example, the \[routers\]
//! set the information of the XBs that they are connected to and the XBs set
//! the information of the \[routers\] that they are connected to."*
//!
//! [`FaultRegisters`] is the derived, purely local view: routing code in
//! `mdx-core` consults *only* this structure (never the global [`FaultSet`])
//! when making per-switch decisions, so the implementation cannot
//! accidentally use information the hardware would not have.

use crate::{FaultSet, FaultSite};
use mdx_topology::{MdCrossbar, XbarRef};
use serde::{Deserialize, Serialize};

/// The neighbor-fault bits of every switch, derived from a global fault set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRegisters {
    /// Per router (by PE index): bit `d` set means the dimension-`d` crossbar
    /// this router is attached to is faulty.
    router_xbar_bits: Vec<u8>,
    /// Per router (by PE index): the attached PE is faulty.
    router_pe_bit: Vec<bool>,
    /// Per crossbar (indexed by [`MdCrossbar`] xbar enumeration order):
    /// bitmask over line positions of attached routers that are faulty.
    /// Extents are at most `u16::MAX` but practical lines are <= 32; a u64
    /// mask covers every configuration the SR2201 shipped (max extent 32).
    xbar_router_bits: Vec<u64>,
    /// Flattened index of each crossbar: `xbar_base[dim] + line`.
    xbar_base: Vec<usize>,
    dims: usize,
    /// Total hardware bits needed across all crossbar registers (one bit per
    /// attached router).
    xbar_mask_bits: usize,
}

impl FaultRegisters {
    /// Derives the registers for `faults` on `net`.
    ///
    /// # Panics
    /// Panics if some extent exceeds 64 (mask width); the SR2201's largest
    /// line was 32 PEs.
    pub fn derive(net: &MdCrossbar, faults: &FaultSet) -> FaultRegisters {
        let shape = net.shape();
        let d = shape.d();
        assert!(
            shape.extents().iter().all(|&e| e <= 64),
            "line extent exceeds register mask width"
        );
        let mut xbar_base = Vec::with_capacity(d);
        let mut acc = 0usize;
        for dim in 0..d {
            xbar_base.push(acc);
            acc += shape.lines_in_dim(dim);
        }
        let xbar_mask_bits = (0..d)
            .map(|dim| shape.lines_in_dim(dim) * shape.extent(dim) as usize)
            .sum();
        let mut regs = FaultRegisters {
            router_xbar_bits: vec![0; shape.num_pes()],
            router_pe_bit: vec![false; shape.num_pes()],
            xbar_router_bits: vec![0; acc],
            xbar_base,
            dims: d,
            xbar_mask_bits,
        };
        for site in faults.sites() {
            match site {
                FaultSite::Xbar(xb) => {
                    // Every router on the line learns its dim-`xb.dim` XB is
                    // faulty.
                    for c in shape.line_coords(xb.dim as usize, xb.line as usize) {
                        let r = shape.index_of(c);
                        regs.router_xbar_bits[r] |= 1 << xb.dim;
                    }
                }
                FaultSite::Router(r) => {
                    // Every crossbar attached to the router learns the line
                    // position of the faulty router.
                    let c = shape.coord_of(r);
                    for dim in 0..d {
                        let line = shape.line_of(c, dim);
                        let idx = regs.xbar_base[dim] + line;
                        regs.xbar_router_bits[idx] |= 1 << c.get(dim);
                    }
                }
                FaultSite::Pe(p) => {
                    regs.router_pe_bit[p] = true;
                }
            }
        }
        regs
    }

    /// Fault-free registers for `net`.
    pub fn fault_free(net: &MdCrossbar) -> FaultRegisters {
        FaultRegisters::derive(net, &FaultSet::none())
    }

    fn xbar_index(&self, xb: XbarRef) -> usize {
        self.xbar_base[xb.dim as usize] + xb.line as usize
    }

    /// Router `r`'s local view: is its dimension-`dim` crossbar faulty?
    #[inline]
    pub fn router_sees_xbar_fault(&self, r: usize, dim: usize) -> bool {
        self.router_xbar_bits[r] & (1 << dim) != 0
    }

    /// Router `r`'s local view: is its own PE faulty?
    #[inline]
    pub fn router_sees_pe_fault(&self, r: usize) -> bool {
        self.router_pe_bit[r]
    }

    /// Crossbar `xb`'s local view: is the router at line position `pos`
    /// faulty?
    #[inline]
    pub fn xbar_sees_router_fault(&self, xb: XbarRef, pos: u16) -> bool {
        self.xbar_router_bits[self.xbar_index(xb)] & (1 << pos) != 0
    }

    /// Crossbar `xb`'s local view: bitmask of faulty attached routers.
    #[inline]
    pub fn xbar_faulty_router_mask(&self, xb: XbarRef) -> u64 {
        self.xbar_router_bits[self.xbar_index(xb)]
    }

    /// Whether any switch in the network has a fault bit set.
    pub fn any_fault_visible(&self) -> bool {
        self.router_xbar_bits.iter().any(|&b| b != 0)
            || self.router_pe_bit.iter().any(|&b| b)
            || self.xbar_router_bits.iter().any(|&b| b != 0)
    }

    /// Total register storage the facility needs, in bits — the paper's
    /// hardware-cost argument ("at most a few bits" per switch).
    pub fn total_register_bits(&self) -> usize {
        // d fault bits + 1 PE bit per router, one bit per attached router
        // per crossbar (we store u64 masks but the hardware needs only
        // `extent` bits; report the hardware number).
        self.router_xbar_bits.len() * (self.dims + 1) + self.xbar_mask_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_topology::{Coord, Shape};

    fn fig2() -> MdCrossbar {
        MdCrossbar::build(Shape::fig2())
    }

    #[test]
    fn fault_free_registers_are_clear() {
        let net = fig2();
        let regs = FaultRegisters::fault_free(&net);
        assert!(!regs.any_fault_visible());
        for r in 0..12 {
            for dim in 0..2 {
                assert!(!regs.router_sees_xbar_fault(r, dim));
            }
            assert!(!regs.router_sees_pe_fault(r));
        }
    }

    #[test]
    fn router_fault_visible_only_to_its_xbars() {
        // Fig. 8 scenario: router of PE2 is faulty; only the X-XB of PE2's
        // row and the Y-XB of PE2's column see it, at PE2's line positions.
        let net = fig2();
        let shape = net.shape().clone();
        let pe2 = Coord::new(&[2, 0]);
        let r = shape.index_of(pe2);
        let regs = FaultRegisters::derive(&net, &FaultSet::single(FaultSite::Router(r)));
        for xb in net.xbars() {
            let on_line = shape.line_of(pe2, xb.dim as usize) == xb.line as usize;
            let mask = regs.xbar_faulty_router_mask(xb);
            if on_line {
                assert_eq!(mask, 1 << pe2.get(xb.dim as usize), "{xb}");
                assert!(regs.xbar_sees_router_fault(xb, pe2.get(xb.dim as usize)));
            } else {
                assert_eq!(mask, 0, "{xb}");
            }
        }
        // No router sees an XB fault.
        for i in 0..12 {
            assert_eq!(regs.router_xbar_bits[i], 0);
        }
    }

    #[test]
    fn xbar_fault_visible_only_to_its_routers() {
        let net = fig2();
        let shape = net.shape().clone();
        let xb = XbarRef { dim: 1, line: 2 }; // Y-XB of column 2
        let regs = FaultRegisters::derive(&net, &FaultSet::single(FaultSite::Xbar(xb)));
        for i in 0..12 {
            let c = shape.coord_of(i);
            let expect = c.get(0) == 2;
            assert_eq!(regs.router_sees_xbar_fault(i, 1), expect, "router {i}");
            assert!(!regs.router_sees_xbar_fault(i, 0));
        }
    }

    #[test]
    fn pe_fault_sets_only_its_router_bit() {
        let net = fig2();
        let regs = FaultRegisters::derive(&net, &FaultSet::single(FaultSite::Pe(4)));
        for i in 0..12 {
            assert_eq!(regs.router_sees_pe_fault(i), i == 4);
        }
        assert!(regs.any_fault_visible());
    }

    #[test]
    fn multiple_faults_accumulate() {
        let net = fig2();
        let mut faults = FaultSet::none();
        faults.insert(FaultSite::Router(0));
        faults.insert(FaultSite::Router(1));
        let regs = FaultRegisters::derive(&net, &faults);
        let x0 = XbarRef { dim: 0, line: 0 };
        // Routers 0 and 1 are both on X row 0, positions 0 and 1.
        assert_eq!(regs.xbar_faulty_router_mask(x0), 0b11);
    }

    #[test]
    fn router_and_its_own_crossbar_both_faulty() {
        // Overlapping faults: router R2 and the X-XB of its own row. The
        // registers have no precedence rule — each fault independently ORs
        // its bits in, so both remain visible: every row-0 router (including
        // the dead one) sees the X-XB fault, and the column crossbars still
        // carry R2's position in their masks. Only the faulty X-XB itself
        // would report R2 to no one (it is dead), but its register content
        // is derived all the same — the service processor reads it, not the
        // crossbar.
        let net = fig2();
        let shape = net.shape().clone();
        let pe2 = Coord::new(&[2, 0]);
        let r = shape.index_of(pe2);
        let x0 = XbarRef { dim: 0, line: 0 };
        let mut faults = FaultSet::single(FaultSite::Router(r));
        faults.insert(FaultSite::Xbar(x0));
        let regs = FaultRegisters::derive(&net, &faults);
        // The row crossbar fault is visible to every router on row 0.
        for i in 0..12 {
            let on_row = shape.coord_of(i).get(1) == 0;
            assert_eq!(regs.router_sees_xbar_fault(i, 0), on_row, "router {i}");
        }
        // The router fault is visible to both of its crossbars, including
        // the one that is itself faulty.
        assert!(regs.xbar_sees_router_fault(x0, 2));
        let y2 = XbarRef { dim: 1, line: 2 };
        assert!(regs.xbar_sees_router_fault(y2, 0));
        // And the combined set is no longer a single-fault configuration.
        assert_eq!(faults.single_xbar(), None);
    }

    #[test]
    fn derive_is_insertion_order_independent() {
        // `derive` only ORs bits, and `FaultSet` stores sites in a
        // `BTreeSet`, so any insertion order yields identical registers.
        let net = fig2();
        let sites = [
            FaultSite::Router(2),
            FaultSite::Xbar(XbarRef { dim: 0, line: 0 }),
            FaultSite::Pe(7),
        ];
        let forward: FaultSet = sites.into_iter().collect();
        let reverse: FaultSet = sites.into_iter().rev().collect();
        assert_eq!(
            FaultRegisters::derive(&net, &forward),
            FaultRegisters::derive(&net, &reverse)
        );
    }

    #[test]
    fn register_cost_is_small() {
        // Hardware-cost claim: a handful of bits per switch, far less than a
        // redundant network.
        let net = MdCrossbar::build(Shape::sr2201_full());
        let regs = FaultRegisters::fault_free(&net);
        let switches = 2048 + net.num_xbars();
        let bits = regs.total_register_bits();
        assert!(
            bits <= switches * 64,
            "register cost {bits} bits exceeds a u64 per switch"
        );
    }
}
