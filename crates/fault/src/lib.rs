//! # mdx-fault
//!
//! Fault model for the SR2201 multi-dimensional crossbar network.
//!
//! The paper's hardware detour path selection facility (Sec. 4) assumes a
//! *single faulty point* in the network, and distributes knowledge of it the
//! cheapest possible way: *"each switch has only the information of the
//! switches that they are physically connected to"* — routers know which of
//! their crossbars are faulty, and crossbars know which of their attached
//! routers are faulty, a few bits per switch.
//!
//! This crate provides:
//!
//! * [`FaultSite`] / [`FaultSet`] — what is broken;
//! * [`FaultRegisters`] — the per-switch neighbor-fault bits derived from a
//!   fault set, exactly the information the paper allows a switch to use;
//! * [`enumerate_single_faults`] — the single-fault universe for exhaustive
//!   experiments;
//! * [`connectivity`] — graph-level reachability under faults, the upper
//!   bound any routing scheme can achieve;
//! * [`diagnosis`] — the service processor's side of the story: localizing
//!   the faulty component from end-to-end probe outcomes, which is where
//!   the paper's "information ... set in advance" comes from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod diagnosis;
pub mod registers;
pub mod sampling;
pub mod timeline;

pub use connectivity::{reachable_pairs, ConnectivityReport};
pub use diagnosis::{diagnose, diagnose_all_pairs, Diagnosis};
pub use registers::FaultRegisters;
pub use sampling::sample_fault_sets;
pub use timeline::{FaultEvent, FaultEventKind, FaultTimeline, TimelineError};

use mdx_topology::{MdCrossbar, Node, XbarRef};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One faulty component.
///
/// The paper's facility covers faulty crossbars and faulty routers (relay
/// switches); a faulty PE is the degenerate case where the network simply
/// stops delivering to it (Sec. 4, broadcast case b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// A shared crossbar switch is faulty.
    Xbar(XbarRef),
    /// The relay switch (router) of PE `usize` is faulty. Its PE is thereby
    /// disconnected as well.
    Router(usize),
    /// The PE itself is faulty; its router and the network still work.
    Pe(usize),
}

impl FaultSite {
    /// The graph node this fault disables.
    pub fn node(&self) -> Node {
        match *self {
            FaultSite::Xbar(x) => Node::Xbar(x),
            FaultSite::Router(r) => Node::Router(r),
            FaultSite::Pe(p) => Node::Pe(p),
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "faulty {}", self.node())
    }
}

/// A set of faulty components.
///
/// The SR2201 facility is specified for a single fault; [`FaultSet`] still
/// allows several so experiments can probe beyond the specification (the
/// paper's future-work direction).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    sites: BTreeSet<FaultSite>,
}

impl FaultSet {
    /// The empty (fault-free) set.
    pub fn none() -> Self {
        FaultSet::default()
    }

    /// A set holding exactly one fault.
    pub fn single(site: FaultSite) -> Self {
        let mut s = FaultSet::default();
        s.insert(site);
        s
    }

    /// Adds a fault. Returns `true` if it was new.
    pub fn insert(&mut self, site: FaultSite) -> bool {
        self.sites.insert(site)
    }

    /// Removes a fault. Returns `true` if it was present.
    pub fn remove(&mut self, site: FaultSite) -> bool {
        self.sites.remove(&site)
    }

    /// Whether there are no faults.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Iterates over the fault sites.
    pub fn sites(&self) -> impl Iterator<Item = FaultSite> + '_ {
        self.sites.iter().copied()
    }

    /// Whether a specific site is faulty.
    pub fn contains(&self, site: FaultSite) -> bool {
        self.sites.contains(&site)
    }

    /// Whether the graph node is disabled by some fault in the set.
    ///
    /// A faulty router also takes its PE out of service (the PE has no other
    /// connection); a faulty PE leaves its router usable as a through-switch.
    pub fn disables(&self, node: Node) -> bool {
        match node {
            Node::Xbar(x) => self.contains(FaultSite::Xbar(x)),
            Node::Router(r) => self.contains(FaultSite::Router(r)),
            Node::Pe(p) => self.contains(FaultSite::Pe(p)) || self.contains(FaultSite::Router(p)),
        }
    }

    /// Whether PE `p` can source/sink traffic under this fault set.
    pub fn pe_usable(&self, p: usize) -> bool {
        !self.disables(Node::Pe(p))
    }

    /// The faulty crossbar, if the set is *exactly* one crossbar fault.
    ///
    /// The precedence on multi-fault sets is explicit, not an accident of
    /// insertion order: any second fault — even a router on the same line as
    /// the crossbar — makes this return `None`, because the paper's
    /// single-fault detour facility is only specified for one faulty point.
    /// Callers that handle mixed sets (e.g. `RoutingConfig::for_faults`)
    /// filter [`FaultSet::sites`] themselves; `sites` iterates in
    /// `FaultSite` order (crossbars first, then routers, then PEs), so the
    /// result never depends on the order faults were inserted.
    pub fn single_xbar(&self) -> Option<XbarRef> {
        if self.sites.len() != 1 {
            return None;
        }
        self.sites.iter().find_map(|s| match s {
            FaultSite::Xbar(x) => Some(*x),
            _ => None,
        })
    }
}

impl FromIterator<FaultSite> for FaultSet {
    fn from_iter<T: IntoIterator<Item = FaultSite>>(iter: T) -> Self {
        FaultSet {
            sites: iter.into_iter().collect(),
        }
    }
}

/// Every possible single fault in the network: each crossbar, each router,
/// each PE.
pub fn enumerate_single_faults(net: &MdCrossbar) -> Vec<FaultSite> {
    let mut v = Vec::new();
    for xb in net.xbars() {
        v.push(FaultSite::Xbar(xb));
    }
    for i in 0..net.shape().num_pes() {
        v.push(FaultSite::Router(i));
        v.push(FaultSite::Pe(i));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_topology::Shape;

    #[test]
    fn fault_set_basics() {
        let mut f = FaultSet::none();
        assert!(f.is_empty());
        let site = FaultSite::Router(2);
        assert!(f.insert(site));
        assert!(!f.insert(site));
        assert_eq!(f.len(), 1);
        assert!(f.contains(site));
        assert!(f.remove(site));
        assert!(f.is_empty());
    }

    #[test]
    fn router_fault_disables_its_pe() {
        let f = FaultSet::single(FaultSite::Router(2));
        assert!(f.disables(Node::Router(2)));
        assert!(f.disables(Node::Pe(2)));
        assert!(!f.disables(Node::Router(1)));
        assert!(!f.pe_usable(2));
        assert!(f.pe_usable(1));
    }

    #[test]
    fn pe_fault_leaves_router_usable() {
        let f = FaultSet::single(FaultSite::Pe(5));
        assert!(f.disables(Node::Pe(5)));
        assert!(!f.disables(Node::Router(5)));
    }

    #[test]
    fn single_xbar_accessor() {
        let xb = XbarRef { dim: 1, line: 2 };
        assert_eq!(
            FaultSet::single(FaultSite::Xbar(xb)).single_xbar(),
            Some(xb)
        );
        assert_eq!(FaultSet::single(FaultSite::Router(0)).single_xbar(), None);
        let mut two = FaultSet::single(FaultSite::Xbar(xb));
        two.insert(FaultSite::Router(0));
        assert_eq!(two.single_xbar(), None);
    }

    #[test]
    fn single_xbar_is_insertion_order_independent() {
        // A router fault on the crossbar's own line must not shadow (or be
        // shadowed by) the crossbar fault, regardless of which was inserted
        // first: any multi-fault set is outside the single-fault facility.
        let xb = XbarRef { dim: 0, line: 0 };
        let mut xbar_first = FaultSet::single(FaultSite::Xbar(xb));
        xbar_first.insert(FaultSite::Router(0)); // router 0 sits on X row 0
        let mut router_first = FaultSet::single(FaultSite::Router(0));
        router_first.insert(FaultSite::Xbar(xb));
        assert_eq!(xbar_first, router_first);
        assert_eq!(xbar_first.single_xbar(), None);
        assert_eq!(router_first.single_xbar(), None);
        // Removing the router fault restores single-fault semantics.
        xbar_first.remove(FaultSite::Router(0));
        assert_eq!(xbar_first.single_xbar(), Some(xb));
    }

    #[test]
    fn sites_iterate_xbars_before_routers_before_pes() {
        // Documented iteration order for callers that filter mixed sets.
        let f: FaultSet = [
            FaultSite::Pe(0),
            FaultSite::Router(9),
            FaultSite::Xbar(XbarRef { dim: 1, line: 3 }),
        ]
        .into_iter()
        .collect();
        let kinds: Vec<_> = f
            .sites()
            .map(|s| match s {
                FaultSite::Xbar(_) => 0,
                FaultSite::Router(_) => 1,
                FaultSite::Pe(_) => 2,
            })
            .collect();
        assert_eq!(kinds, vec![0, 1, 2]);
    }

    #[test]
    fn enumerate_counts() {
        // Fig. 2 network: 7 crossbars + 12 routers + 12 PEs.
        let net = MdCrossbar::build(Shape::fig2());
        assert_eq!(enumerate_single_faults(&net).len(), 7 + 12 + 12);
    }

    #[test]
    fn display_names() {
        assert_eq!(
            FaultSite::Xbar(XbarRef { dim: 1, line: 0 }).to_string(),
            "faulty Y0-XB"
        );
        assert_eq!(FaultSite::Router(3).to_string(), "faulty R3");
        assert_eq!(FaultSite::Pe(3).to_string(), "faulty PE3");
    }

    #[test]
    fn from_iterator_dedupes() {
        let xb = XbarRef { dim: 0, line: 1 };
        let f: FaultSet = [FaultSite::Xbar(xb), FaultSite::Xbar(xb)]
            .into_iter()
            .collect();
        assert_eq!(f.len(), 1);
    }
}
