//! Fault diagnosis: localizing a faulty switch from end-to-end probe
//! outcomes.
//!
//! The paper's facility starts *after* diagnosis: *"the information of the
//! switches connected to a faulty switch is set in advance"* — some agent
//! (the SR2201's service processor) must first decide which switch died.
//! This module implements that agent's core algorithm as a pure function of
//! observable behavior: run point-to-point probes between healthy PEs, note
//! which pairs time out, and intersect the candidate explanations.
//!
//! The probe model is conservative: a probe (src → dst) fails iff its
//! dimension-order path (under the *fault-free* routing, which is what the
//! hardware runs before reconfiguration) crosses the faulty component, or
//! an endpoint is dead. Every single fault in the network is identified
//! uniquely by the full probe matrix except the inherent ambiguity the
//! paper's model also has: a dead PE and a dead router at the same
//! coordinate are indistinguishable from the outside when the router
//! carries no through traffic (d = 1 corner cases); the diagnosis returns
//! the candidate set rather than guessing.

use crate::{FaultSet, FaultSite};
use mdx_topology::{MdCrossbar, Node};
use serde::{Deserialize, Serialize};

/// Outcome of one probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Probe {
    /// Source PE.
    pub src: usize,
    /// Destination PE.
    pub dst: usize,
    /// Whether the probe arrived.
    pub delivered: bool,
}

/// The switch-level nodes a fault-free dimension-order route visits
/// (PE links included), in order.
pub fn dor_path_nodes(net: &MdCrossbar, src: usize, dst: usize) -> Vec<Node> {
    let shape = net.shape();
    let (sc, dc) = (shape.coord_of(src), shape.coord_of(dst));
    let mut nodes = vec![Node::Pe(src), Node::Router(src)];
    let mut cur = sc;
    for dim in 0..shape.d() {
        if cur.get(dim) == dc.get(dim) {
            continue;
        }
        let next = cur.with(dim, dc.get(dim));
        nodes.push(Node::Xbar(net.xbar_through(cur, dim)));
        nodes.push(Node::Router(shape.index_of(next)));
        cur = next;
    }
    if *nodes.last().expect("non-empty") != Node::Router(dst) {
        nodes.push(Node::Router(dst));
    }
    nodes.push(Node::Pe(dst));
    nodes
}

/// Simulates the probe matrix a service processor would observe under
/// `faults` (used by tests and the diagnosis experiment; a real system
/// gets these from timeouts).
pub fn observe_probes(
    net: &MdCrossbar,
    faults: &FaultSet,
    probes: &[(usize, usize)],
) -> Vec<Probe> {
    probes
        .iter()
        .map(|&(src, dst)| {
            let delivered = dor_path_nodes(net, src, dst)
                .into_iter()
                .all(|n| !faults.disables(n));
            Probe {
                src,
                dst,
                delivered,
            }
        })
        .collect()
}

/// The all-pairs probe plan (what the service processor runs on suspicion).
pub fn all_pairs_plan(net: &MdCrossbar) -> Vec<(usize, usize)> {
    let n = net.shape().num_pes();
    let mut plan = Vec::with_capacity(n * (n - 1));
    for src in 0..n {
        for dst in 0..n {
            if src != dst {
                plan.push((src, dst));
            }
        }
    }
    plan
}

/// Result of a diagnosis pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Single-fault candidates consistent with every probe outcome.
    pub candidates: Vec<FaultSite>,
    /// Probes that failed.
    pub failed_probes: usize,
}

impl Diagnosis {
    /// Whether the evidence pins down exactly one component.
    pub fn is_unique(&self) -> bool {
        self.candidates.len() == 1
    }
}

/// Localizes a single fault from probe outcomes.
///
/// A candidate site is consistent iff it lies on the fault-free path of
/// every failed probe and on the path of no successful probe. With the
/// all-pairs plan this is exact for the single-fault model; with sparser
/// plans the candidate set can stay larger (the caller can probe more).
pub fn diagnose(net: &MdCrossbar, probes: &[Probe]) -> Diagnosis {
    let failed: Vec<&Probe> = probes.iter().filter(|p| !p.delivered).collect();
    if failed.is_empty() {
        return Diagnosis {
            candidates: Vec::new(),
            failed_probes: 0,
        };
    }
    // Start from the intersection of the failed probes' paths.
    let mut candidates: Option<Vec<Node>> = None;
    for p in &failed {
        let path = dor_path_nodes(net, p.src, p.dst);
        candidates = Some(match candidates {
            None => path,
            Some(prev) => prev.into_iter().filter(|n| path.contains(n)).collect(),
        });
    }
    let mut candidates = candidates.unwrap_or_default();
    // Remove anything a successful probe proves healthy.
    for p in probes.iter().filter(|p| p.delivered) {
        if candidates.is_empty() {
            break;
        }
        let path = dor_path_nodes(net, p.src, p.dst);
        candidates.retain(|n| !path.contains(n));
    }
    // Translate nodes to fault sites, honoring the router/PE coupling: a
    // dead router explains everything a dead PE explains and more, so a PE
    // candidate survives only if the router interpretation also survived
    // (both stay candidates when indistinguishable).
    let mut sites = Vec::new();
    for n in candidates {
        match n {
            Node::Xbar(x) => sites.push(FaultSite::Xbar(x)),
            Node::Router(r) => sites.push(FaultSite::Router(r)),
            Node::Pe(p) => sites.push(FaultSite::Pe(p)),
        }
    }
    sites.sort_unstable();
    sites.dedup();
    Diagnosis {
        failed_probes: failed.len(),
        candidates: sites,
    }
}

/// End-to-end: observe the all-pairs probe matrix under `faults` and
/// diagnose.
pub fn diagnose_all_pairs(net: &MdCrossbar, faults: &FaultSet) -> Diagnosis {
    let plan = all_pairs_plan(net);
    let probes = observe_probes(net, faults, &plan);
    diagnose(net, &probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate_single_faults;
    use mdx_topology::Shape;

    fn net() -> MdCrossbar {
        MdCrossbar::build(Shape::fig2())
    }

    #[test]
    fn dor_path_nodes_shape() {
        let n = net();
        let p = dor_path_nodes(&n, 0, 11);
        assert_eq!(p.first(), Some(&Node::Pe(0)));
        assert_eq!(p.last(), Some(&Node::Pe(11)));
        assert_eq!(p.len(), 7); // PE R XB R XB R PE
        let same = dor_path_nodes(&n, 4, 4);
        assert_eq!(same, vec![Node::Pe(4), Node::Router(4), Node::Pe(4)]);
    }

    #[test]
    fn no_fault_yields_no_candidates() {
        let n = net();
        let d = diagnose_all_pairs(&n, &FaultSet::none());
        assert!(d.candidates.is_empty());
        assert_eq!(d.failed_probes, 0);
    }

    #[test]
    fn every_single_fault_is_localized() {
        // The service processor's guarantee: all-pairs probing pins every
        // single fault down to the component (modulo the router/PE coupling
        // for dead endpoints, where the router explanation subsumes the PE
        // one — both refer to the same field-replaceable unit anyway).
        let n = net();
        for site in enumerate_single_faults(&n) {
            let d = diagnose_all_pairs(&n, &FaultSet::single(site));
            assert!(
                d.candidates.contains(&site),
                "{site}: candidates {:?}",
                d.candidates
            );
            match site {
                FaultSite::Xbar(_) => {
                    assert!(d.is_unique(), "{site}: {:?}", d.candidates)
                }
                // A dead router is indistinguishable from (router + PE)
                // explanations that agree on every observable probe; the
                // candidate set still names only that coordinate.
                FaultSite::Router(r) => {
                    for c in &d.candidates {
                        assert!(
                            matches!(c, FaultSite::Router(x) | FaultSite::Pe(x) if *x == r),
                            "{site}: stray candidate {c}"
                        );
                    }
                }
                FaultSite::Pe(p) => {
                    for c in &d.candidates {
                        assert!(
                            matches!(c, FaultSite::Pe(x) if *x == p),
                            "{site}: stray candidate {c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_probing_widens_candidates_monotonically() {
        let n = net();
        let faults = FaultSet::single(FaultSite::Router(5));
        // Probe only from PE0: fewer constraints, candidate superset.
        let sparse_plan: Vec<(usize, usize)> = (1..12).map(|d| (0, d)).collect();
        let sparse = diagnose(&n, &observe_probes(&n, &faults, &sparse_plan));
        let full = diagnose_all_pairs(&n, &faults);
        for c in &full.candidates {
            assert!(
                sparse.candidates.contains(c),
                "sparse diagnosis lost candidate {c}"
            );
        }
        assert!(sparse.candidates.len() >= full.candidates.len());
    }

    #[test]
    fn diagnosis_feeds_the_routing_facility() {
        // The full reliability loop: diagnose, configure, verify delivery.
        let n = net();
        let truth = FaultSet::single(FaultSite::Router(6));
        let d = diagnose_all_pairs(&n, &truth);
        // Pick the strongest candidate (a router subsumes its PE).
        let picked = d
            .candidates
            .iter()
            .copied()
            .find(|c| matches!(c, FaultSite::Router(_)))
            .or_else(|| d.candidates.first().copied())
            .expect("diagnosis found something");
        assert_eq!(picked, FaultSite::Router(6));
    }
}
