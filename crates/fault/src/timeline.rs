//! Fault events on a timeline.
//!
//! The paper's detour facility assumes the fault set is known before any
//! traffic moves: *"the information of the faulty point is set in advance"*
//! by the service processor. A [`FaultTimeline`] relaxes that single
//! assumption: it is an ordered script of inject/repair events that a
//! reconfiguration controller (crate `mdx-reconfig`) applies to a running
//! simulation, triggering an SR2201-style service-processor epoch (quiesce,
//! drain, re-derive [`crate::FaultRegisters`], resume) at each event.
//!
//! The timeline itself is pure data — it knows nothing about the engine.
//! [`FaultTimeline::faults_at`] answers "what is broken at cycle `t`?",
//! which is all the controller needs to re-derive registers and re-validate
//! connectivity at every epoch boundary.

use crate::{FaultSet, FaultSite};
use serde::{Deserialize, Serialize};

/// What a [`FaultEvent`] does to the fault set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// The component fails at the event cycle.
    Inject,
    /// The component is repaired (e.g. a board swap) at the event cycle.
    Repair,
}

impl std::fmt::Display for FaultEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEventKind::Inject => write!(f, "inject"),
            FaultEventKind::Repair => write!(f, "repair"),
        }
    }
}

/// One scheduled change to the fault set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Cycle at which the event takes effect.
    pub at: u64,
    /// Inject or repair.
    pub kind: FaultEventKind,
    /// The component affected.
    pub site: FaultSite,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} @ {}", self.kind, self.site.node(), self.at)
    }
}

/// Why a timeline is not well-formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineError {
    /// An inject targets a site already faulty at that point, or a repair
    /// targets a site that is not faulty.
    RedundantEvent(FaultEvent),
    /// Two events for the same site share a cycle, so their order (and hence
    /// the resulting fault set) would be ambiguous.
    SameCycleConflict(FaultSite, u64),
}

impl std::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimelineError::RedundantEvent(e) => write!(f, "redundant event: {e}"),
            TimelineError::SameCycleConflict(site, at) => {
                write!(f, "conflicting events for {} at cycle {at}", site.node())
            }
        }
    }
}

impl std::error::Error for TimelineError {}

/// An ordered script of fault events.
///
/// Events are kept sorted by `(at, kind, site)`; [`FaultTimeline::validate`]
/// rejects scripts whose replay would be ambiguous or redundant (repairing a
/// healthy component, double-injecting the same fault).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// The empty timeline (equivalent to a static fault-free run).
    pub fn new() -> Self {
        FaultTimeline::default()
    }

    /// Builds a timeline from events, sorting them into replay order.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort();
        FaultTimeline { events }
    }

    /// Schedules a fault injection at `at` (builder style).
    #[must_use]
    pub fn inject(mut self, site: FaultSite, at: u64) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultEventKind::Inject,
            site,
        });
        self
    }

    /// Schedules a repair at `at` (builder style).
    #[must_use]
    pub fn repair(mut self, site: FaultSite, at: u64) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultEventKind::Repair,
            site,
        });
        self
    }

    /// Inserts one event, keeping replay order.
    pub fn push(&mut self, e: FaultEvent) {
        let pos = self.events.partition_point(|x| x <= &e);
        self.events.insert(pos, e);
    }

    /// Whether there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events in replay order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Checks the script replays unambiguously starting from `initial`.
    pub fn validate(&self, initial: &FaultSet) -> Result<(), TimelineError> {
        let mut live = initial.clone();
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                let prev = self.events[i - 1];
                if prev.at == e.at && prev.site == e.site {
                    return Err(TimelineError::SameCycleConflict(e.site, e.at));
                }
            }
            let ok = match e.kind {
                FaultEventKind::Inject => live.insert(e.site),
                FaultEventKind::Repair => live.remove(e.site),
            };
            if !ok {
                return Err(TimelineError::RedundantEvent(*e));
            }
        }
        Ok(())
    }

    /// The fault set in force at cycle `t` (events at exactly `t` have
    /// already taken effect), starting from `initial`.
    pub fn faults_at(&self, initial: &FaultSet, t: u64) -> FaultSet {
        let mut live = initial.clone();
        for e in self.events.iter().take_while(|e| e.at <= t) {
            match e.kind {
                FaultEventKind::Inject => live.insert(e.site),
                FaultEventKind::Repair => live.remove(e.site),
            };
        }
        live
    }

    /// The fault set after the whole script has replayed.
    pub fn final_faults(&self, initial: &FaultSet) -> FaultSet {
        self.faults_at(initial, u64::MAX)
    }

    /// Cycle of the first event, if any.
    pub fn first_event_at(&self) -> Option<u64> {
        self.events.first().map(|e| e.at)
    }

    /// Cycle of the last event, if any.
    pub fn last_event_at(&self) -> Option<u64> {
        self.events.last().map(|e| e.at)
    }
}

impl std::fmt::Display for FaultTimeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.events.is_empty() {
            return write!(f, "(no events)");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_topology::XbarRef;

    #[test]
    fn builder_keeps_events_sorted() {
        let tl = FaultTimeline::new()
            .inject(FaultSite::Router(3), 500)
            .inject(FaultSite::Pe(1), 100)
            .repair(FaultSite::Pe(1), 900);
        let ats: Vec<u64> = tl.events().iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![100, 500, 900]);
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.first_event_at(), Some(100));
        assert_eq!(tl.last_event_at(), Some(900));
    }

    #[test]
    fn faults_at_replays_prefix() {
        let xb = FaultSite::Xbar(XbarRef { dim: 0, line: 1 });
        let tl = FaultTimeline::new().inject(xb, 200).repair(xb, 800);
        let initial = FaultSet::none();
        assert!(tl.faults_at(&initial, 199).is_empty());
        assert!(tl.faults_at(&initial, 200).contains(xb));
        assert!(tl.faults_at(&initial, 799).contains(xb));
        assert!(tl.faults_at(&initial, 800).is_empty());
        assert!(tl.final_faults(&initial).is_empty());
    }

    #[test]
    fn validate_rejects_redundant_repair() {
        let tl = FaultTimeline::new().repair(FaultSite::Router(0), 10);
        let err = tl.validate(&FaultSet::none()).unwrap_err();
        assert!(matches!(err, TimelineError::RedundantEvent(_)));
    }

    #[test]
    fn validate_rejects_double_inject() {
        let tl = FaultTimeline::new()
            .inject(FaultSite::Pe(2), 10)
            .inject(FaultSite::Pe(2), 20);
        let err = tl.validate(&FaultSet::none()).unwrap_err();
        assert!(matches!(err, TimelineError::RedundantEvent(_)));
    }

    #[test]
    fn validate_rejects_same_cycle_conflict() {
        let site = FaultSite::Router(1);
        let tl = FaultTimeline::from_events(vec![
            FaultEvent {
                at: 50,
                kind: FaultEventKind::Inject,
                site,
            },
            FaultEvent {
                at: 50,
                kind: FaultEventKind::Repair,
                site,
            },
        ]);
        let err = tl.validate(&FaultSet::none()).unwrap_err();
        assert_eq!(err, TimelineError::SameCycleConflict(site, 50));
    }

    #[test]
    fn validate_accepts_inject_then_repair() {
        let site = FaultSite::Router(7);
        let tl = FaultTimeline::new()
            .inject(site, 100)
            .repair(site, 400)
            .inject(site, 700);
        assert_eq!(tl.validate(&FaultSet::none()), Ok(()));
        assert!(tl.final_faults(&FaultSet::none()).contains(site));
    }

    #[test]
    fn initial_faults_participate() {
        let site = FaultSite::Pe(3);
        let tl = FaultTimeline::new().repair(site, 10);
        let initial = FaultSet::single(site);
        assert_eq!(tl.validate(&initial), Ok(()));
        assert!(tl.faults_at(&initial, 9).contains(site));
        assert!(!tl.faults_at(&initial, 10).contains(site));
    }

    #[test]
    fn token_roundtrip_via_serde() {
        let tl = FaultTimeline::new().inject(FaultSite::Xbar(XbarRef { dim: 1, line: 2 }), 300);
        let json = serde_json::to_string(&tl).unwrap();
        let back: FaultTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tl);
    }
}
