//! Property: repairing a fault fully clears every neighbor bit it set.
//!
//! The reconfiguration epoch protocol re-derives [`FaultRegisters`] from the
//! live fault set at each event; a repair event must leave the registers
//! exactly as if the fault had never happened, or stale bits would keep
//! detours active forever. The property is `derive(net, faults)` after
//! `insert` + `remove` of arbitrary sites round-trips to
//! `FaultRegisters::fault_free(net)`.

use mdx_fault::{FaultRegisters, FaultSet, FaultSite};
use mdx_topology::{MdCrossbar, Shape, XbarRef};
use proptest::prelude::*;

/// Maps an arbitrary u64 pick onto a valid single fault of `net`.
fn pick_site(net: &MdCrossbar, pick: u64) -> FaultSite {
    let all: Vec<FaultSite> = mdx_fault::enumerate_single_faults(net);
    all[(pick as usize) % all.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert every picked site, then remove them all (in a rotated order):
    /// the derived registers equal the fault-free registers bit for bit.
    #[test]
    fn insert_then_remove_roundtrips_to_fault_free(
        picks in proptest::collection::vec(any::<u64>(), 1..=8),
        rotate in any::<usize>(),
        three_d in any::<bool>(),
    ) {
        let shape = if three_d {
            Shape::new(&[3, 2, 2]).unwrap()
        } else {
            Shape::fig2()
        };
        let net = MdCrossbar::build(shape);
        let mut faults = FaultSet::none();
        let sites: Vec<FaultSite> = picks.iter().map(|&p| pick_site(&net, p)).collect();
        for &s in &sites {
            faults.insert(s);
        }
        // Removal order is independent of insertion order.
        let mut removal = sites.clone();
        removal.sort();
        removal.dedup();
        let k = rotate % removal.len().max(1);
        removal.rotate_left(k);
        for &s in &removal {
            prop_assert!(faults.remove(s), "site {s} missing on removal");
        }
        prop_assert!(faults.is_empty());
        prop_assert_eq!(
            FaultRegisters::derive(&net, &faults),
            FaultRegisters::fault_free(&net)
        );
    }

    /// Partial repair: remove one site from a multi-fault set; the result
    /// equals deriving the reduced set from scratch (no residue from the
    /// repaired site).
    #[test]
    fn partial_repair_matches_fresh_derivation(
        picks in proptest::collection::vec(any::<u64>(), 2..=6),
        victim in any::<usize>(),
    ) {
        let net = MdCrossbar::build(Shape::fig2());
        let mut faults = FaultSet::none();
        for &p in &picks {
            faults.insert(pick_site(&net, p));
        }
        let sites: Vec<FaultSite> = faults.sites().collect();
        let repaired = sites[victim % sites.len()];
        faults.remove(repaired);
        let fresh: FaultSet = sites.into_iter().filter(|&s| s != repaired).collect();
        prop_assert_eq!(
            FaultRegisters::derive(&net, &faults),
            FaultRegisters::derive(&net, &fresh)
        );
    }
}

#[test]
fn repair_clears_every_register_kind() {
    // One deterministic case per fault kind, for readable failure output.
    let net = MdCrossbar::build(Shape::fig2());
    let clean = FaultRegisters::fault_free(&net);
    for site in [
        FaultSite::Xbar(XbarRef { dim: 1, line: 2 }),
        FaultSite::Router(5),
        FaultSite::Pe(5),
    ] {
        let mut faults = FaultSet::none();
        faults.insert(site);
        assert!(FaultRegisters::derive(&net, &faults).any_fault_visible());
        faults.remove(site);
        assert_eq!(FaultRegisters::derive(&net, &faults), clean, "{site}");
    }
}
