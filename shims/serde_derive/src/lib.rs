//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! proc macros implemented directly over `proc_macro::TokenStream` (the
//! environment has no `syn`/`quote`).
//!
//! Supported input shapes — exactly what this workspace uses:
//! structs with named fields, tuple structs, unit structs, and enums with
//! unit / tuple / struct variants (explicit discriminants are skipped).
//! Not supported: generics, lifetimes, `#[serde(...)]` attributes.
//!
//! Generated code targets the `serde` shim's `Value`-based traits:
//! `Serialize::to_value` / `Deserialize::from_value`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(it: &mut Tokens) {
    while let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() != '#' {
            break;
        }
        it.next();
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde derive shim: malformed attribute near {other:?}"),
        }
    }
}

fn skip_visibility(it: &mut Tokens) {
    if let Some(TokenTree::Ident(id)) = it.peek() {
        if id.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

fn expect_ident(it: &mut Tokens, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive shim: expected {what}, found {other:?}"),
    }
}

/// Consumes tokens up to (and including) the next comma at angle-bracket
/// depth zero. Returns `false` when the stream ended instead.
fn skip_to_toplevel_comma(it: &mut Tokens) -> bool {
    let mut depth = 0usize;
    for tok in it.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        if it.peek().is_none() {
            break;
        }
        skip_visibility(&mut it);
        fields.push(expect_ident(&mut it, "field name"));
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive shim: expected `:` after field, found {other:?}"),
        }
        if !skip_to_toplevel_comma(&mut it) {
            break;
        }
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut it = ts.into_iter().peekable();
    let mut count = 0usize;
    loop {
        skip_attributes(&mut it);
        if it.peek().is_none() {
            break;
        }
        count += 1;
        if !skip_to_toplevel_comma(&mut it) {
            break;
        }
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        if it.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut it, "variant name");
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                it.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                it.next();
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skips any `= discriminant` and the trailing comma.
        if !skip_to_toplevel_comma(&mut it) {
            break;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        skip_visibility(&mut it);
        match it.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut it, "struct name");
                return match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Item::Struct {
                            name,
                            fields: Fields::Named(parse_named_fields(g.stream())),
                        }
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Item::Struct {
                            name,
                            fields: Fields::Tuple(count_tuple_fields(g.stream())),
                        }
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                        name,
                        fields: Fields::Unit,
                    },
                    other => panic!(
                        "serde derive shim: unsupported struct body for `{name}` \
                         (generics are not supported): {other:?}"
                    ),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut it, "enum name");
                return match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                        name,
                        variants: parse_variants(g.stream()),
                    },
                    other => panic!(
                        "serde derive shim: unsupported enum body for `{name}` \
                         (generics are not supported): {other:?}"
                    ),
                };
            }
            Some(TokenTree::Ident(_)) => continue, // e.g. `union` would fall through below
            other => panic!("serde derive shim: expected struct or enum, found {other:?}"),
        }
    }
}

fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    out.push_str(s); // identifiers never need escaping
    out.push('"');
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::value::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let mut b = String::from("::serde::value::Value::Seq(vec![");
                    for i in 0..*n {
                        b.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
                    }
                    b.push_str("])");
                    b
                }
                Fields::Named(fields) => {
                    let mut b = String::from(
                        "{ let mut __m: Vec<(String, ::serde::value::Value)> = Vec::new();",
                    );
                    for f in fields {
                        b.push_str("__m.push((String::from(");
                        push_str_lit(&mut b, f);
                        b.push_str(&format!("), ::serde::Serialize::to_value(&self.{f})));"));
                    }
                    b.push_str("::serde::value::Value::Map(__m) }");
                    b
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut b = String::from("match self {");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        b.push_str(&format!("{name}::{vn} => ::serde::value::Value::Str("));
                        b.push_str("String::from(");
                        push_str_lit(&mut b, vn);
                        b.push_str(")),");
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        b.push_str(&format!("{name}::{vn}({}) => ", binds.join(",")));
                        b.push_str("::serde::value::Value::Map(vec![(String::from(");
                        push_str_lit(&mut b, vn);
                        b.push_str("), ");
                        if *n == 1 {
                            b.push_str("::serde::Serialize::to_value(__f0)");
                        } else {
                            b.push_str("::serde::value::Value::Seq(vec![");
                            for bind in &binds {
                                b.push_str(&format!("::serde::Serialize::to_value({bind}),"));
                            }
                            b.push_str("])");
                        }
                        b.push_str(")]),");
                    }
                    Fields::Named(fields) => {
                        b.push_str(&format!("{name}::{vn} {{ {} }} => {{", fields.join(",")));
                        b.push_str(
                            "let mut __m: Vec<(String, ::serde::value::Value)> = Vec::new();",
                        );
                        for f in fields {
                            b.push_str("__m.push((String::from(");
                            push_str_lit(&mut b, f);
                            b.push_str(&format!("), ::serde::Serialize::to_value({f})));"));
                        }
                        b.push_str("::serde::value::Value::Map(vec![(String::from(");
                        push_str_lit(&mut b, vn);
                        b.push_str("), ::serde::value::Value::Map(__m))]) },");
                    }
                }
            }
            b.push('}');
            (name, b)
        }
    };
    format!(
        "#[automatically_derived] #[allow(unused, clippy::all)] \
         impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::value::Value {{ {body} }} \
         }}"
    )
}

fn gen_tuple_from_seq(path: &str, n: usize, seq_expr: &str) -> String {
    let mut b = format!(
        "{{ let __s = {seq_expr}.as_seq().ok_or_else(|| \
           ::serde::de::Error::expected(\"sequence for {path}\"))?; \
         if __s.len() != {n} {{ \
           return ::core::result::Result::Err(::serde::de::Error::custom(format!( \
             \"expected {n} elements for {path}, got {{}}\", __s.len()))); }} \
         ::core::result::Result::Ok({path}("
    );
    for i in 0..n {
        b.push_str(&format!("::serde::Deserialize::from_value(&__s[{i}])?,"));
    }
    b.push_str(")) }");
    b
}

fn gen_named_from_map(path: &str, fields: &[String], map_expr: &str) -> String {
    let mut b = format!(
        "{{ let __m = {map_expr}.as_map().ok_or_else(|| \
           ::serde::de::Error::expected(\"map for {path}\"))?; \
         ::core::result::Result::Ok({path} {{"
    );
    for f in fields {
        b.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::de::field(__m, "
        ));
        push_str_lit(&mut b, f);
        b.push_str(")?)?,");
    }
    b.push_str("}) }");
    b
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::core::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => gen_tuple_from_seq(name, *n, "__v"),
                Fields::Named(fields) => gen_named_from_map(name, fields, "__v"),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut b = String::from(
                "if let ::core::option::Option::Some(__s) = __v.as_str() { return match __s {",
            );
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    push_str_lit(&mut b, &v.name);
                    b.push_str(&format!(
                        " => ::core::result::Result::Ok({name}::{}),",
                        v.name
                    ));
                }
            }
            b.push_str(&format!(
                "_ => ::core::result::Result::Err(::serde::de::Error::custom(format!( \
                   \"unknown variant `{{}}` of {name}\", __s))), }}; }}"
            ));
            b.push_str(
                "if let ::core::option::Option::Some((__tag, __inner)) = __v.as_tagged() { \
                 return match __tag {",
            );
            for v in variants {
                let path = format!("{name}::{}", v.name);
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => {
                        push_str_lit(&mut b, &v.name);
                        b.push_str(&format!(
                            " => ::core::result::Result::Ok({path}( \
                               ::serde::Deserialize::from_value(__inner)?)),"
                        ));
                    }
                    Fields::Tuple(n) => {
                        push_str_lit(&mut b, &v.name);
                        b.push_str(" => ");
                        b.push_str(&gen_tuple_from_seq(&path, *n, "__inner"));
                        b.push(',');
                    }
                    Fields::Named(fields) => {
                        push_str_lit(&mut b, &v.name);
                        b.push_str(" => ");
                        b.push_str(&gen_named_from_map(&path, fields, "__inner"));
                        b.push(',');
                    }
                }
            }
            b.push_str(&format!(
                "_ => ::core::result::Result::Err(::serde::de::Error::custom(format!( \
                   \"unknown variant `{{}}` of {name}\", __tag))), }}; }}"
            ));
            b.push_str(&format!(
                "::core::result::Result::Err(::serde::de::Error::expected(\"enum {name}\"))"
            ));
            (name, b)
        }
    };
    format!(
        "#[automatically_derived] #[allow(unused, clippy::all)] \
         impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::value::Value) \
             -> ::core::result::Result<Self, ::serde::de::Error> {{ {body} }} \
         }}"
    )
}

/// Derives the shim's `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive shim: generated Serialize impl failed to parse")
}

/// Derives the shim's `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive shim: generated Deserialize impl failed to parse")
}
