//! Offline shim for the `rand` crate: the core RNG traits plus the range,
//! bool and slice-sampling helpers this workspace uses. Deterministic, but
//! not bit-compatible with crates.io `rand`. See `shims/README.md`.

/// Source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Range types a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random sampling from slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice sampling helpers (subset of the real crate's trait).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// One uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements, uniformly without replacement (fewer
        /// if the slice is shorter). Order is randomized.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = Counter(9);
        let xs: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }
}
