//! Offline shim for the `serde_json` crate: renders and parses the `serde`
//! shim's [`Value`] data model as JSON. See `shims/README.md`.
//!
//! Encoding notes (self-consistent, shared with the real crate where it
//! matters): maps keep insertion order, non-finite floats render as `null`,
//! integral floats render with a trailing `.0` so they parse back as floats.

use serde::{Deserialize, Serialize};

pub use serde::value::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders any serializable value into the data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes any value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

fn write_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            write_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            write_indent(out, indent, level);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0C}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let v: f64 = from_str("2.0").unwrap();
        assert_eq!(v, 2.0);
        let n: i64 = from_str("-99").unwrap();
        assert_eq!(n, -99);
    }

    #[test]
    fn roundtrip_containers() {
        let xs = vec![(1usize, 2u64), (3, 4)];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        let back: Vec<(usize, u64)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
        let opt: Option<u32> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn pretty_output_shape() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::I64(1)),
            ("b".to_string(), Value::Seq(vec![Value::Bool(false)])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    false\n  ]\n}");
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "Aé😀");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
