//! Offline shim for the `rayon` crate: data parallelism on
//! `std::thread::scope`.
//!
//! Each combinator (`map`, `filter`, `for_each`) is evaluated eagerly across
//! OS threads in contiguous chunks, preserving input order. That keeps the
//! implementation tiny while still using every core for the
//! coarse-grained work (whole simulation runs) this workspace parallelizes.
//! See `shims/README.md`.

/// Number of worker threads to fan out over.
fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item in parallel, preserving order.
fn par_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon shim worker panicked"));
        }
    });
    out
}

/// An eagerly materialized "parallel iterator": holds the items and runs
/// each combinator across threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_apply(self.items, f),
        }
    }

    /// Parallel filter (the predicate runs in parallel).
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T>
    where
        T: Sync,
    {
        let keep = par_apply(self.items.iter().collect::<Vec<&T>>(), &f);
        ParIter {
            items: self
                .items
                .into_iter()
                .zip(keep)
                .filter_map(|(t, k)| k.then_some(t))
                .collect(),
        }
    }

    /// Parallel side effects.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_apply(self.items, f);
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collects into any `FromIterator` container, preserving order.
    #[allow(clippy::should_implement_trait)]
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Reduces with `identity` and `op` (sequential tail after parallel map
    /// stages; adequate for this workspace's workloads).
    pub fn reduce<ID: Fn() -> T, OP: Fn(T, T) -> T>(self, identity: ID, op: OP) -> T {
        self.items.into_iter().fold(identity(), op)
    }
}

/// Types convertible into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Conversion.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Sync, const N: usize> IntoParallelIterator for &'a [T; N] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

range_into_par!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types whose references convert into a [`ParIter`] (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Conversion.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Item = <&'a C as IntoParallelIterator>::Item;
    fn par_iter(&'a self) -> ParIter<Self::Item> {
        self.into_par_iter()
    }
}

/// Marker for API compatibility with `rayon::prelude::ParallelIterator`.
pub trait ParallelIterator {}
impl<T> ParallelIterator for ParIter<T> {}

/// The customary glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_count() {
        let n = (0u64..1000).into_par_iter().filter(|&x| x % 3 == 0).count();
        assert_eq!(n, 334);
    }

    #[test]
    fn ref_par_iter_on_arrays_and_vecs() {
        let arr = [1.0f64, 2.0, 3.0];
        let doubled: Vec<f64> = arr.par_iter().map(|&x| x * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
        let v = vec![5usize, 6];
        let s: usize = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 11);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
