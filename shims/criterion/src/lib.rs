//! Offline shim for the `criterion` crate: the macro/builder API used by
//! this workspace's benches, backed by simple wall-clock timing (median of
//! `sample_size` samples after one warm-up). No statistics, plots or
//! baselines — just honest per-iteration numbers. See `shims/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, f: F) {
        run_bench(&name.to_string(), self.sample_size, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the throughput unit for subsequent benchmarks (recorded for
    /// display purposes only in this shim).
    pub fn throughput(&mut self, _t: Throughput) {}

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput unit of a benchmark's workload.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark timing harness handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: usize,
}

impl Bencher {
    /// Times `f`, recording one sample per call of `iter`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

/// Opaque value sink preventing the optimizer from deleting the benchmark
/// body.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size + 1),
        iters_per_sample: 1,
    };
    // One warm-up sample, then the timed samples.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("bench {name:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "bench {name:<50} median {:>12.3?} over {} samples",
        median,
        b.samples.len()
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
