//! Offline shim for the `bytes` crate: cheaply cloneable byte buffers with
//! the little-endian cursor API this workspace uses. See `shims/README.md`.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice (copies; the real crate borrows,
    /// which callers cannot observe through this API).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        front
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Bytes {
        Bytes::from(m.data)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", &self[..])
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { data: s.to_vec() }
    }
}

/// Read cursor over a byte buffer. Getters consume from the front and panic
/// when the buffer is too short, matching the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes (contiguous in this shim).
    fn chunk(&self) -> &[u8];
    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_le_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u16_le(0x1234);
        m.put_u32_le(0xDEAD_BEEF);
        m.extend_from_slice(b"xy");
        let mut b = m.freeze();
        assert_eq!(b.len(), 9);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0x1234);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        let tail = b.split_to(2);
        assert_eq!(&tail[..], b"xy");
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn split_to_keeps_rest() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        let front = b.split_to(1);
        assert_eq!(&front[..], &[1]);
        assert_eq!(&b[..], &[2, 3, 4]);
        assert_eq!(Bytes::from_static(&[2, 3, 4]), b);
    }
}
