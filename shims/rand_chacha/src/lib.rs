//! Offline shim for the `rand_chacha` crate: a real ChaCha stream-cipher
//! core (8/12/20 rounds) keyed from a 64-bit seed via SplitMix64.
//!
//! Deterministic and stable for this repository, but **not** bit-compatible
//! with the crates.io `rand_chacha` output stream. See `shims/README.md`.

use rand::{RngCore, SeedableRng};

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[derive(Clone, Debug)]
struct ChaChaCore {
    state: [u32; 16],
    buf: [u32; 16],
    idx: usize,
    rounds: usize,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaChaCore {
    fn from_seed_u64(seed: u64, rounds: usize) -> ChaChaCore {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..4 {
            let w = splitmix64(&mut sm);
            state[4 + 2 * i] = w as u32;
            state[4 + 2 * i + 1] = (w >> 32) as u32;
        }
        // counter = 0, nonce = 0
        ChaChaCore {
            state,
            buf: [0; 16],
            idx: 16,
            rounds,
        }
    }

    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..self.rounds / 2 {
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (i, out) in self.buf.iter_mut().enumerate() {
            *out = w[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $rounds:expr) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name {
            core: ChaChaCore,
        }

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                $name {
                    core: ChaChaCore::from_seed_u64(seed, $rounds),
                }
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                lo | (hi << 32)
            }

            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// ChaCha with 12 rounds (the workspace's reproducibility workhorse).
    ChaCha12Rng,
    12
);
chacha_rng!(
    /// ChaCha with 20 rounds.
    ChaCha20Rng,
    20
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(1234);
        let mut b = ChaCha12Rng::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha12Rng::seed_from_u64(1235);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha20_test_vector_block_shape() {
        // Sanity: the all-zero-keyed raw block function must match the
        // RFC 8439 structure (first word of block 0 for the zero key/nonce).
        let mut core = ChaChaCore {
            state: {
                let mut s = [0u32; 16];
                s[..4].copy_from_slice(&SIGMA);
                s
            },
            buf: [0; 16],
            idx: 16,
            rounds: 20,
        };
        // RFC 8439 §2.3.2-style zero-key block: spot-check the constant mix.
        let w = core.next_word();
        assert_eq!(w, 0xade0b876, "zero-key ChaCha20 block 0 word 0");
    }

    #[test]
    fn stream_continues_across_blocks() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..40).map(|_| r.next_u32()).collect();
        let mut r2 = ChaCha8Rng::seed_from_u64(7);
        let again: Vec<u32> = (0..40).map(|_| r2.next_u32()).collect();
        assert_eq!(first, again);
        // More than one 16-word block was produced and they differ.
        assert_ne!(&first[..16], &first[16..32]);
    }
}
