//! Offline shim for the `proptest` crate (see `shims/README.md`).
//!
//! Covers the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, `prop_assert*!`/`prop_assume!`,
//! `any::<T>()`, integer/float range strategies, `collection::vec`, and
//! `.prop_map`. Cases are generated from deterministic per-case seeds
//! derived from the test name, so failures are reproducible; there is no
//! shrinking — the failure message reports the offending case seed instead.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps the produced value through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A fixed, always-identical value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Types with a canonical "any value" generator.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Returns the canonical strategy for `T` (use as `any::<T>()`).
pub fn any<T: arbitrary::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element`-generated items.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// The RNG handed to strategies and test bodies.
    pub type TestRng = rand_chacha::ChaCha12Rng;

    /// Runner configuration (only `cases` is honored by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case's preconditions failed (`prop_assume!`); retried.
        Reject(String),
        /// The property is false for this case; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (filtered-out) case.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    fn fnv1a64(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drives one property over `config.cases` deterministic cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner with the given config.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// Runs `f` until `config.cases` cases pass; panics on the first
        /// failing case (reporting its seed) or when too many cases are
        /// rejected by `prop_assume!`.
        pub fn run<F>(&mut self, name: &str, mut f: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let base = fnv1a64(name);
            let max_attempts = u64::from(self.config.cases) * 20 + 200;
            let mut passed = 0u32;
            let mut attempt = 0u64;
            while passed < self.config.cases {
                assert!(
                    attempt < max_attempts,
                    "property `{name}`: too many rejected cases \
                     ({passed}/{} passed after {attempt} attempts)",
                    self.config.cases
                );
                let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                attempt += 1;
                let mut rng = TestRng::seed_from_u64(seed);
                match f(&mut rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("property `{name}` failed (case seed {seed:#018x}): {msg}")
                    }
                }
            }
        }
    }
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and one or more
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __runner = $crate::test_runner::TestRunner::new($cfg);
                __runner.run(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($a),
                        stringify!($b),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if *__l == *__r {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($a),
                        stringify!($b),
                        __l
                    )));
                }
            }
        }
    };
}

/// Rejects the current case when its preconditions don't hold; the runner
/// draws a fresh case instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u16..9, y in 0usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(1u32..5, 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }
    }

    proptest! {
        #[test]
        fn default_config_and_assume(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert_eq!(a.max(b), b.max(a));
        }
    }

    #[test]
    fn prop_map_applies() {
        use rand::SeedableRng;
        let strat = (2u16..5).prop_map(|n| n * 10);
        let mut rng = crate::test_runner::TestRng::seed_from_u64(7);
        for _ in 0..20 {
            let v = strat.generate(&mut rng);
            assert!(v == 20 || v == 30 || v == 40);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::SeedableRng;
        let strat = crate::collection::vec(0u64..1000, 3..=3);
        let a = strat.generate(&mut crate::test_runner::TestRng::seed_from_u64(42));
        let b = strat.generate(&mut crate::test_runner::TestRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
