//! Offline shim for the `serde` crate.
//!
//! Instead of the real crate's visitor-based `Serializer`/`Deserializer`
//! machinery, this shim routes everything through one in-memory data model
//! ([`value::Value`]): `Serialize` renders a value *into* the model and
//! `Deserialize` reads one back *out of* it. `serde_json` (also shimmed)
//! prints and parses that model. The derive macros (`serde_derive` shim,
//! re-exported under the `derive` feature) generate impls of these traits
//! for the struct/enum shapes used in this workspace. See `shims/README.md`.

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
