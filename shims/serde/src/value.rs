//! The in-memory data model every shimmed `Serialize`/`Deserialize` impl
//! goes through (the shim's analogue of `serde_json::Value`).

use std::cmp::Ordering;

/// A self-describing value: the serialization data model.
///
/// Maps preserve insertion order (struct field order), which is what makes
/// serialized output canonical and replay tokens stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also unit and the non-finite float encoding).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit an `i64`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered key-value map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, coercing in-range unsigned values.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, coercing non-negative signed values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, coercing integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// A single-entry map viewed as an externally tagged enum variant.
    pub fn as_tagged(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Map(m) if m.len() == 1 => Some((&m[0].0, &m[0].1)),
            _ => None,
        }
    }

    /// Total order over values, used to canonicalize the serialization of
    /// unordered containers (`HashMap`, `HashSet`).
    pub fn canonical_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::I64(_) => 2,
                Value::U64(_) => 3,
                Value::F64(_) => 4,
                Value::Str(_) => 5,
                Value::Seq(_) => 6,
                Value::Map(_) => 7,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::I64(a), Value::I64(b)) => a.cmp(b),
            (Value::U64(a), Value::U64(b)) => a.cmp(b),
            (Value::F64(a), Value::F64(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Seq(a), Value::Seq(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.canonical_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Map(a), Value::Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let o = ka.cmp(kb).then_with(|| va.canonical_cmp(vb));
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}
