//! The `Serialize` trait and its impls for std types.

use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Types renderable into the shim's data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(v),
                }
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| a.canonical_cmp(b));
        Value::Seq(items)
    }
}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    sort: bool,
) -> Value {
    let mut pairs: Vec<Value> = entries
        .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
        .collect();
    if sort {
        pairs.sort_by(|a, b| a.canonical_cmp(b));
    }
    Value::Seq(pairs)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter(), false)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter(), true)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
