//! The `Deserialize` trait, its error type, its impls for std types, and
//! the helpers the derive macro's generated code calls.

use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An arbitrary-message error.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// "Expected X" error.
    pub fn expected(what: &str) -> Error {
        Error {
            msg: format!("expected {what}"),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a struct field in deserialized map entries (derive helper).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Types reconstructible from the shim's data model.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool"))
    }
}

macro_rules! de_int {
    ($($t:ty: $via:ident),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let raw = v.$via().ok_or_else(|| Error::expected(stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

de_int!(
    i8: as_i64,
    i16: as_i64,
    i32: as_i64,
    i64: as_i64,
    isize: as_i64,
    u8: as_u64,
    u16: as_u64,
    u32: as_u64,
    u64: as_u64,
    usize: as_u64
);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            // Non-finite floats serialize as null (JSON has no NaN/inf).
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::expected("f64")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string"))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<(), Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

fn seq_of<T: Deserialize>(v: &Value, what: &str) -> Result<Vec<T>, Error> {
    v.as_seq()
        .ok_or_else(|| Error::expected(what))?
        .iter()
        .map(T::from_value)
        .collect()
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        seq_of(v, "sequence")
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<VecDeque<T>, Error> {
        seq_of(v, "sequence")
            .map(Vec::into_iter)
            .map(VecDeque::from_iter)
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items: Vec<T> = seq_of(v, "array")?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected {N} elements, got {n}")))
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<BTreeSet<T>, Error> {
        seq_of(v, "set")
            .map(Vec::into_iter)
            .map(BTreeSet::from_iter)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<HashSet<T>, Error> {
        seq_of(v, "set").map(Vec::into_iter).map(HashSet::from_iter)
    }
}

fn pairs_of<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    v.as_seq()
        .ok_or_else(|| Error::expected("map (as a sequence of pairs)"))?
        .iter()
        .map(|entry| {
            let pair = entry
                .as_seq()
                .ok_or_else(|| Error::expected("map entry pair"))?;
            if pair.len() != 2 {
                return Err(Error::expected("two-element map entry"));
            }
            Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
        })
        .collect()
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, Error> {
        pairs_of(v).map(Vec::into_iter).map(BTreeMap::from_iter)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<HashMap<K, V>, Error> {
        pairs_of(v).map(Vec::into_iter).map(HashMap::from_iter)
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), Error> {
                let s = v.as_seq().ok_or_else(|| Error::expected("tuple sequence"))?;
                if s.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of {}, got {}", $len, s.len())));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}

de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}
