#!/usr/bin/env sh
# Serve-mode smoke gate, two phases.
#
# Phase 1 (stdio): drive one `campaign serve` process with three token
# requests (the third a duplicate that must be answered from the result
# cache), plus stats, metrics, and shutdown, then validate every streamed
# JSONL response line against the protocol schema.
#
# Phase 2 (TCP): start `campaign serve --tcp` with a live Prometheus
# endpoint (`--metrics-addr 127.0.0.1:0`), run a session over a socket,
# scrape the endpoint mid-session, and validate the exposition format and
# the required series (per-verb request latency, cache hits, engine
# idle-tick fraction).
#
# Artifacts (under target/ so the work tree stays clean):
#   target/serve-smoke-session.jsonl   the stdio response stream
#   target/serve-smoke-metrics.prom    the scraped Prometheus exposition
#   target/serve-smoke-tcp.stderr      the TCP server's banners
set -eu

BIN=${CAMPAIGN_BIN:-target/release/campaign}
OUTDIR=${SERVE_SMOKE_DIR:-target}
OUT=${SERVE_SMOKE_OUT:-$OUTDIR/serve-smoke-session.jsonl}
PROM=${SERVE_SMOKE_PROM:-$OUTDIR/serve-smoke-metrics.prom}
ERR=$OUTDIR/serve-smoke-tcp.stderr
mkdir -p "$OUTDIR"

# ---- Phase 1: stdio session ------------------------------------------------
# The `spec` verb mints the scenario token server-side, so the session is
# fully self-contained: requests 1 and 3 are the same spec (and therefore
# the same token) — the duplicate must come back as a cache hit.
{
  printf '%s\n' '{"cmd":"spec","id":1,"spec":"seed 1\nflits 2\nphase 0..200 uniform rate=0.03\nhorizon 600","shape":[4,3],"seed":1}'
  printf '%s\n' '{"cmd":"spec","id":2,"spec":"seed 2\nflits 2\nphase 0..200 transpose rate=0.03\nhorizon 600","shape":[4,4],"seed":2}'
  printf '%s\n' '{"cmd":"spec","id":3,"spec":"seed 1\nflits 2\nphase 0..200 uniform rate=0.03\nhorizon 600","shape":[4,3],"seed":1}'
  printf '%s\n' '{"cmd":"stats","id":4}'
  printf '%s\n' '{"cmd":"metrics","id":5}'
  printf '%s\n' '{"cmd":"shutdown","id":6}'
} | "$BIN" serve --windows 100 > "$OUT"

python3 - "$OUT" <<'EOF'
import json, sys

path = sys.argv[1]
lines = [l for l in open(path) if l.strip()]
assert len(lines) == 6, f"expected 6 response lines, got {len(lines)}"

by_id = {}
for line in lines:
    resp = json.loads(line)
    assert resp["kind"] in {"row", "stats", "metrics", "ok", "error", "postmortem"}, resp
    assert resp["kind"] != "error", f"server error: {resp}"
    by_id[resp.get("id")] = resp

for rid in (1, 2, 3):
    resp = by_id[rid]
    assert resp["kind"] == "row", resp
    row = resp["row"]
    # Row schema: token, outcome, and the windowed stream summary.
    assert row["token"].startswith("MDX1."), row["token"]
    assert row["outcome"] == "completed", (rid, row["outcome"])
    assert row["stream"]["window"] == 100, row["stream"]
    assert row["stream"]["windows"] > 0

# Request 3 duplicates request 1: same token, same digest, served from the
# result cache.
assert by_id[1]["cached"] is False
assert by_id[3]["cached"] is True, "duplicate token was re-simulated"
assert by_id[1]["row"]["token"] == by_id[3]["row"]["token"]
assert by_id[1]["row"]["digest"] == by_id[3]["row"]["digest"]
assert by_id[2]["row"]["token"] != by_id[1]["row"]["token"]

stats = by_id[4]["stats"]
assert stats["served"] == 3 and stats["cache_hits"] == 1, stats
assert stats["cache_misses"] == 2, stats
assert stats["cache_evictions"] == 0, stats

# The metrics verb returns the registry snapshot as JSON.
snapshot = by_id[5]["metrics"]
families = {f["name"] for f in snapshot["families"]}
for name in ("mdx_serve_requests_total", "mdx_serve_request_seconds",
             "mdx_serve_cache_hits_total", "mdx_engine_idle_tick_fraction"):
    assert name in families, f"metrics snapshot missing {name}: {sorted(families)}"
assert by_id[6]["kind"] == "ok"

print(f"serve stdio smoke OK: 3 rows (1 cache hit), session in {path}")
EOF

# ---- Phase 2: TCP session with a live Prometheus scrape --------------------
: > "$ERR"
"$BIN" serve --tcp 127.0.0.1:0 --windows 100 --metrics-addr 127.0.0.1:0 2> "$ERR" &
SRV=$!

# Both banners carry ephemeral ports; wait for them.
i=0
while ! grep -q "listening on" "$ERR" || ! grep -q "metrics on" "$ERR"; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "error: serve --tcp did not come up" >&2
    cat "$ERR" >&2
    kill "$SRV" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
ADDR=$(sed -n 's/^campaign serve: listening on \([^ ]*\).*/\1/p' "$ERR" | head -1)
MADDR=$(sed -n 's/^campaign serve: metrics on \([^ ]*\).*/\1/p' "$ERR" | head -1)

python3 - "$ADDR" "$MADDR" "$PROM" <<'EOF'
import json, re, socket, sys

addr, maddr, prom = sys.argv[1], sys.argv[2], sys.argv[3]
host, port = addr.rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=30)
f = sock.makefile("rw")
spec = "seed 1\nflits 2\nphase 0..200 uniform rate=0.03\nhorizon 600"
for i in (1, 2):
    f.write(json.dumps({"cmd": "spec", "id": i, "spec": spec,
                        "shape": [4, 3], "seed": 1}) + "\n")
f.flush()
rows = [json.loads(f.readline()) for _ in (1, 2)]
assert all(r["kind"] == "row" for r in rows), rows
assert sorted(r["cached"] for r in rows) == [False, True], rows

# Scrape the endpoint mid-session (the server is still up).
mh, mp = maddr.rsplit(":", 1)
m = socket.create_connection((mh, int(mp)), timeout=30)
m.sendall(b"GET /metrics HTTP/1.1\r\nHost: smoke\r\n\r\n")
data = b""
while True:
    chunk = m.recv(65536)
    if not chunk:
        break
    data += chunk
text = data.decode()
head, _, body = text.partition("\r\n\r\n")
assert "200 OK" in head, head
assert "text/plain; version=0.0.4" in head, head
open(prom, "w").write(body)

# Exposition format: every non-comment line is `name[{labels}] value`.
sample = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$')
for line in body.splitlines():
    if not line or line.startswith("#"):
        continue
    assert sample.match(line), f"malformed exposition line: {line!r}"

for series in ("mdx_serve_requests_total", "mdx_serve_request_seconds_bucket",
               "mdx_serve_cache_hits_total", "mdx_serve_cache_misses_total",
               "mdx_engine_idle_tick_fraction", "mdx_engine_cycles_total"):
    assert series in body, f"scrape missing {series}"
# The session's cache hit is visible on the endpoint.
assert "mdx_serve_cache_hits_total 1" in body, "cache hit not on the endpoint"

f.write(json.dumps({"cmd": "shutdown", "id": 9}) + "\n")
f.flush()
ack = json.loads(f.readline())
assert ack["kind"] == "ok", ack
print(f"serve TCP smoke OK: live scrape in {prom}")
EOF

wait "$SRV"
echo "serve smoke OK"
