#!/usr/bin/env sh
# Serve-mode smoke gate, three phases.
#
# Phase 1 (stdio): drive one `campaign serve` process with three token
# requests (the third a duplicate that must be answered from the result
# cache), plus stats, metrics, and shutdown, then validate every streamed
# JSONL response line against the protocol schema.
#
# Phase 2 (TCP): start `campaign serve --tcp` with a live Prometheus
# endpoint (`--metrics-addr 127.0.0.1:0`), run a session over a socket,
# scrape the endpoint mid-session, and validate the exposition format and
# the required series (per-verb request latency, cache hits, engine
# idle-tick fraction).
#
# Phase 3 (spans): run a traced stdio session (`--span-log` at sample
# rate 1), validate the span-log JSONL schema, require every root span's
# trace id to be echoed on a response line (client-supplied ids
# included), and run the `campaign spans` summarizer over the log.
#
# Artifacts (under target/ so the work tree stays clean):
#   target/serve-smoke-session.jsonl   the stdio response stream
#   target/serve-smoke-metrics.prom    the scraped Prometheus exposition
#   target/serve-smoke-tcp.stderr      the TCP server's banners
#   target/serve-smoke-spans.jsonl     the traced session's span log
set -eu

BIN=${CAMPAIGN_BIN:-target/release/campaign}
OUTDIR=${SERVE_SMOKE_DIR:-target}
OUT=${SERVE_SMOKE_OUT:-$OUTDIR/serve-smoke-session.jsonl}
PROM=${SERVE_SMOKE_PROM:-$OUTDIR/serve-smoke-metrics.prom}
SPANS=${SERVE_SMOKE_SPANS:-$OUTDIR/serve-smoke-spans.jsonl}
SPANOUT=$OUTDIR/serve-smoke-spans-session.jsonl
ERR=$OUTDIR/serve-smoke-tcp.stderr
mkdir -p "$OUTDIR"

# ---- Phase 1: stdio session ------------------------------------------------
# The `spec` verb mints the scenario token server-side, so the session is
# fully self-contained: requests 1 and 3 are the same spec (and therefore
# the same token) — the duplicate must come back as a cache hit.
{
  printf '%s\n' '{"cmd":"spec","id":1,"spec":"seed 1\nflits 2\nphase 0..200 uniform rate=0.03\nhorizon 600","shape":[4,3],"seed":1}'
  printf '%s\n' '{"cmd":"spec","id":2,"spec":"seed 2\nflits 2\nphase 0..200 transpose rate=0.03\nhorizon 600","shape":[4,4],"seed":2}'
  printf '%s\n' '{"cmd":"spec","id":3,"spec":"seed 1\nflits 2\nphase 0..200 uniform rate=0.03\nhorizon 600","shape":[4,3],"seed":1}'
  printf '%s\n' '{"cmd":"stats","id":4}'
  printf '%s\n' '{"cmd":"metrics","id":5}'
  printf '%s\n' '{"cmd":"shutdown","id":6}'
} | "$BIN" serve --windows 100 > "$OUT"

python3 - "$OUT" <<'EOF'
import json, sys

path = sys.argv[1]
lines = [l for l in open(path) if l.strip()]
assert len(lines) == 6, f"expected 6 response lines, got {len(lines)}"

by_id = {}
for line in lines:
    resp = json.loads(line)
    assert resp["kind"] in {"row", "stats", "metrics", "ok", "error", "postmortem"}, resp
    assert resp["kind"] != "error", f"server error: {resp}"
    by_id[resp.get("id")] = resp

for rid in (1, 2, 3):
    resp = by_id[rid]
    assert resp["kind"] == "row", resp
    row = resp["row"]
    # Row schema: token, outcome, and the windowed stream summary.
    assert row["token"].startswith("MDX1."), row["token"]
    assert row["outcome"] == "completed", (rid, row["outcome"])
    assert row["stream"]["window"] == 100, row["stream"]
    assert row["stream"]["windows"] > 0

# Request 3 duplicates request 1: same token, same digest, served from the
# result cache.
assert by_id[1]["cached"] is False
assert by_id[3]["cached"] is True, "duplicate token was re-simulated"
assert by_id[1]["row"]["token"] == by_id[3]["row"]["token"]
assert by_id[1]["row"]["digest"] == by_id[3]["row"]["digest"]
assert by_id[2]["row"]["token"] != by_id[1]["row"]["token"]

stats = by_id[4]["stats"]
assert stats["served"] == 3 and stats["cache_hits"] == 1, stats
assert stats["cache_misses"] == 2, stats
assert stats["cache_evictions"] == 0, stats

# The metrics verb returns the registry snapshot as JSON.
snapshot = by_id[5]["metrics"]
families = {f["name"] for f in snapshot["families"]}
for name in ("mdx_serve_requests_total", "mdx_serve_request_seconds",
             "mdx_serve_cache_hits_total", "mdx_engine_idle_tick_fraction"):
    assert name in families, f"metrics snapshot missing {name}: {sorted(families)}"
assert by_id[6]["kind"] == "ok"

print(f"serve stdio smoke OK: 3 rows (1 cache hit), session in {path}")
EOF

# ---- Phase 2: TCP session with a live Prometheus scrape --------------------
: > "$ERR"
"$BIN" serve --tcp 127.0.0.1:0 --windows 100 --metrics-addr 127.0.0.1:0 2> "$ERR" &
SRV=$!

# Both banners carry ephemeral ports; wait for them.
i=0
while ! grep -q "listening on" "$ERR" || ! grep -q "metrics on" "$ERR"; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "error: serve --tcp did not come up" >&2
    cat "$ERR" >&2
    kill "$SRV" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
ADDR=$(sed -n 's/^campaign serve: listening on \([^ ]*\).*/\1/p' "$ERR" | head -1)
MADDR=$(sed -n 's/^campaign serve: metrics on \([^ ]*\).*/\1/p' "$ERR" | head -1)

python3 - "$ADDR" "$MADDR" "$PROM" <<'EOF'
import json, re, socket, sys

addr, maddr, prom = sys.argv[1], sys.argv[2], sys.argv[3]
host, port = addr.rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=30)
f = sock.makefile("rw")
spec = "seed 1\nflits 2\nphase 0..200 uniform rate=0.03\nhorizon 600"
for i in (1, 2):
    f.write(json.dumps({"cmd": "spec", "id": i, "spec": spec,
                        "shape": [4, 3], "seed": 1}) + "\n")
f.flush()
rows = [json.loads(f.readline()) for _ in (1, 2)]
assert all(r["kind"] == "row" for r in rows), rows
assert sorted(r["cached"] for r in rows) == [False, True], rows

# Scrape the endpoint mid-session (the server is still up).
mh, mp = maddr.rsplit(":", 1)
m = socket.create_connection((mh, int(mp)), timeout=30)
m.sendall(b"GET /metrics HTTP/1.1\r\nHost: smoke\r\n\r\n")
data = b""
while True:
    chunk = m.recv(65536)
    if not chunk:
        break
    data += chunk
text = data.decode()
head, _, body = text.partition("\r\n\r\n")
assert "200 OK" in head, head
assert "text/plain; version=0.0.4" in head, head
open(prom, "w").write(body)

# Exposition format: every non-comment line is `name[{labels}] value`.
sample = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$')
for line in body.splitlines():
    if not line or line.startswith("#"):
        continue
    assert sample.match(line), f"malformed exposition line: {line!r}"

for series in ("mdx_serve_requests_total", "mdx_serve_request_seconds_bucket",
               "mdx_serve_cache_hits_total", "mdx_serve_cache_misses_total",
               "mdx_engine_idle_tick_fraction", "mdx_engine_cycles_total"):
    assert series in body, f"scrape missing {series}"
# The session's cache hit is visible on the endpoint.
assert "mdx_serve_cache_hits_total 1" in body, "cache hit not on the endpoint"

f.write(json.dumps({"cmd": "shutdown", "id": 9}) + "\n")
f.flush()
ack = json.loads(f.readline())
assert ack["kind"] == "ok", ack
print(f"serve TCP smoke OK: live scrape in {prom}")
EOF

wait "$SRV"

# ---- Phase 3: traced session with a span log -------------------------------
# Sample rate 1 keeps every trace; request 1 carries a client-chosen trace
# id that must come back on its response line *and* name its spans.
: > "$SPANS"
{
  printf '%s\n' '{"cmd":"spec","id":1,"trace":"smoke-trace-1","spec":"seed 1\nflits 2\nphase 0..200 uniform rate=0.03\nhorizon 600","shape":[4,3],"seed":1}'
  printf '%s\n' '{"cmd":"spec","id":2,"spec":"seed 1\nflits 2\nphase 0..200 uniform rate=0.03\nhorizon 600","shape":[4,3],"seed":1}'
  printf '%s\n' '{"cmd":"spans","id":3}'
  printf '%s\n' '{"cmd":"shutdown","id":4}'
} | "$BIN" serve --windows 100 --span-log "$SPANS" --span-sample 1 > "$SPANOUT"

python3 - "$SPANS" "$SPANOUT" <<'EOF'
import json, sys

spans_path, session_path = sys.argv[1], sys.argv[2]
spans = [json.loads(l) for l in open(spans_path) if l.strip()]
assert spans, f"no spans in {spans_path}"

# Span-log JSONL schema: trace/span/name/start/end/unit per line, with
# optional parent and string-to-string attrs.
for s in spans:
    assert isinstance(s["trace"], str) and s["trace"], s
    assert isinstance(s["span"], int), s
    assert isinstance(s["name"], str) and s["name"], s
    assert isinstance(s["start"], int) and isinstance(s["end"], int), s
    assert s["end"] >= s["start"], s
    assert s["unit"] in {"us", "cycles"}, s
    if "parent" in s:
        assert isinstance(s["parent"], int), s
    for k, v in s.get("attrs", {}).items():
        assert isinstance(k, str) and isinstance(v, str), s

roots = [s for s in spans if "parent" not in s]
assert roots, "span log has no root spans"
assert all(r["name"] == "request" and r["unit"] == "us" for r in roots), roots

# Both run requests were traced (the second under a server-minted id),
# and each root carries the request's phase children.
traces = {r["trace"] for r in roots}
assert "smoke-trace-1" in traces, f"client trace id not in span log: {traces}"
by_root = {r["trace"]: [s for s in spans if s["trace"] == r["trace"]] for r in roots}
for trace, members in by_root.items():
    names = {s["name"] for s in members}
    assert {"queue", "serialize"} <= names, (trace, names)

# Every root span's trace id appears on a response line — the log and the
# session stream join on the echoed `trace` field.
responses = [json.loads(l) for l in open(session_path) if l.strip()]
echoed = {r.get("trace") for r in responses}
for trace in traces:
    assert trace in echoed, f"trace {trace} has spans but no response echo"

# The spans verb's ledger saw the session's traces.
ledger = next(r for r in responses if r.get("id") == 3)["spans"]
assert ledger["kept"] >= 2, ledger
print(f"serve span smoke OK: {len(spans)} spans / {len(roots)} traces in {spans_path}")
EOF

# The summarizer must digest its own log (critical-path table + exemplars).
"$BIN" spans "$SPANS" --top 3 > /dev/null

echo "serve smoke OK"
