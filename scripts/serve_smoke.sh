#!/usr/bin/env sh
# Serve-mode smoke gate: drive one `campaign serve` process over stdio with
# three token requests (the third a duplicate that must be answered from
# the result cache), plus stats and shutdown, then validate every streamed
# JSONL response line against the protocol schema.
#
# Artifacts: serve-smoke-session.jsonl (the raw response stream).
set -eu

BIN=${CAMPAIGN_BIN:-target/release/campaign}
OUT=${SERVE_SMOKE_OUT:-serve-smoke-session.jsonl}

# The `spec` verb mints the scenario token server-side, so the session is
# fully self-contained: requests 1 and 3 are the same spec (and therefore
# the same token) — the duplicate must come back as a cache hit.
{
  printf '%s\n' '{"cmd":"spec","id":1,"spec":"seed 1\nflits 2\nphase 0..200 uniform rate=0.03\nhorizon 600","shape":[4,3],"seed":1}'
  printf '%s\n' '{"cmd":"spec","id":2,"spec":"seed 2\nflits 2\nphase 0..200 transpose rate=0.03\nhorizon 600","shape":[4,4],"seed":2}'
  printf '%s\n' '{"cmd":"spec","id":3,"spec":"seed 1\nflits 2\nphase 0..200 uniform rate=0.03\nhorizon 600","shape":[4,3],"seed":1}'
  printf '%s\n' '{"cmd":"stats","id":4}'
  printf '%s\n' '{"cmd":"shutdown","id":5}'
} | "$BIN" serve --windows 100 > "$OUT"

python3 - "$OUT" <<'EOF'
import json, sys

path = sys.argv[1]
lines = [l for l in open(path) if l.strip()]
assert len(lines) == 5, f"expected 5 response lines, got {len(lines)}"

by_id = {}
for line in lines:
    resp = json.loads(line)
    assert resp["kind"] in {"row", "stats", "ok", "error", "postmortem"}, resp
    assert resp["kind"] != "error", f"server error: {resp}"
    by_id[resp.get("id")] = resp

for rid in (1, 2, 3):
    resp = by_id[rid]
    assert resp["kind"] == "row", resp
    row = resp["row"]
    # Row schema: token, outcome, and the windowed stream summary.
    assert row["token"].startswith("MDX1."), row["token"]
    assert row["outcome"] == "completed", (rid, row["outcome"])
    assert row["stream"]["window"] == 100, row["stream"]
    assert row["stream"]["windows"] > 0

# Request 3 duplicates request 1: same token, same digest, served from the
# result cache.
assert by_id[1]["cached"] is False
assert by_id[3]["cached"] is True, "duplicate token was re-simulated"
assert by_id[1]["row"]["token"] == by_id[3]["row"]["token"]
assert by_id[1]["row"]["digest"] == by_id[3]["row"]["digest"]
assert by_id[2]["row"]["token"] != by_id[1]["row"]["token"]

stats = by_id[4]["stats"]
assert stats["served"] == 3 and stats["cache_hits"] == 1, stats
assert by_id[5]["kind"] == "ok"

print(f"serve smoke OK: 3 rows (1 cache hit), session in {path}")
EOF
