#!/usr/bin/env sh
# Tournament smoke gate: the whole scheme zoo through one small grid.
#
# Runs `campaign tournament` twice over a spec that touches every
# registered scheme, every topology family, both canonical fault classes,
# and both workload templates, then checks:
#
#   - the matrix completes: every (scheme, topology, fault, workload)
#     combination is either an executed cell or a skip with its reason
#     (schemes only run on their home topology, so most cells are skips);
#   - the table replays byte-identically (JSONL artifacts compared with
#     cmp) — the tournament is deterministic end to end;
#   - every cell carries the full column set, deadlocking cells carry a
#     shrunken witness, and a witness token replays to a deadlock through
#     `campaign replay`;
#   - the rendered table's trailer agrees with the JSONL cell counts.
#
# Artifacts (under target/ so the work tree stays clean):
#   target/tournament-smoke.spec       the grid spec
#   target/tournament-smoke-a.jsonl    first run's cell stream
#   target/tournament-smoke-b.jsonl    replay (must equal the first)
#   target/tournament-smoke-table.txt  the rendered table
set -eu

BIN=${CAMPAIGN_BIN:-target/release/campaign}
OUTDIR=${TOURNAMENT_SMOKE_DIR:-target}
SPEC=$OUTDIR/tournament-smoke.spec
A=$OUTDIR/tournament-smoke-a.jsonl
B=$OUTDIR/tournament-smoke-b.jsonl
TABLE=$OUTDIR/tournament-smoke-table.txt
mkdir -p "$OUTDIR"

cat > "$SPEC" <<'SPEC'
# Tournament smoke grid: every scheme on every topology family (home
# topologies execute, the rest must surface as explained skips), clean
# and router-faulted, under a deadlocking broadcast storm and a mixed
# load that exercises the latency columns.
scheme all
topology mdx:3x3 hyperx:3x3 fullmesh:5 hypercube:2x2x2
faults none router
workload storm flits=16
workload mixed rate=0.03 flits=8 window=100
seeds 1
max-cycles 5000
SPEC

"$BIN" tournament "$SPEC" --jsonl "$A" > "$TABLE"
"$BIN" tournament "$SPEC" --jsonl "$B" --quiet > /dev/null

# Determinism: the replayed table is byte-identical.
cmp "$A" "$B"

WITNESS=$(python3 - "$A" "$TABLE" <<'EOF'
import json, sys

cells = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
table = open(sys.argv[2]).read()

# The matrix completes: 7 schemes x 4 topologies x 2 faults x 2 workloads.
assert len(cells) == 7 * 4 * 2 * 2, f"expected 112 cells, got {len(cells)}"

columns = {"scheme", "topology", "shape", "faults", "workload", "status",
           "skip_reason", "runs", "deadlocks", "deadlock_rate", "delivered",
           "offered", "cycles", "throughput", "p50", "p95", "p99",
           "blocked_share", "detour_share", "witness"}
ok = [c for c in cells if c["status"] == "ok"]
for c in cells:
    assert columns <= set(c), f"cell missing columns: {sorted(columns - set(c))}"
    assert c["status"] in {"ok", "skip"}, c["status"]
    if c["status"] == "skip":
        assert c["skip_reason"], f"unexplained skip: {c}"
    else:
        # Unicast-only schemes legally deliver nothing under a broadcast
        # storm (they drop the traffic), but anything delivered must have
        # taken cycles to deliver.
        assert c["runs"] >= 1, c
        assert c["delivered"] == 0 or c["cycles"] > 0, c

# Every scheme in the zoo executed somewhere (its home topology).
schemes_run = {c["scheme"] for c in ok}
expected = {"sr2201", "separate-dxb", "naive-broadcast", "o1turn",
            "hyperx-ft", "fullmesh-vcfree", "hypercube-avoid"}
assert schemes_run == expected, f"zoo coverage hole: {expected - schemes_run}"

# Deadlocking cells carry shrunken witnesses; the storm grid must produce
# at least one (naive-broadcast wedges the crossbar by construction).
deadlocked = [c for c in ok if c["deadlocks"] > 0]
assert deadlocked, "no cell deadlocked; the smoke grid lost its storm"
for c in deadlocked:
    w = c["witness"]
    assert w, f"deadlocking cell without witness: {c['scheme']}"
    assert w["token"].startswith("MDX1."), w
    assert w["from_token"].startswith("MDX1."), w
    assert w["cycle_len"] >= 2, f"degenerate witness cycle: {w}"
    assert w["packets"] >= 1, w

# The rendered trailer agrees with the JSONL counts.
trailer = f"{len(cells)} cells ({len(ok)} run, {len(cells) - len(ok)} skipped)"
assert trailer in table, f"table trailer mismatch: wanted {trailer!r}"

print(f"tournament matrix OK: {trailer}; "
      f"{len(deadlocked)} deadlocking cell(s) with witnesses",
      file=sys.stderr)
print(deadlocked[0]["witness"]["token"])
EOF
)

# The witness token replays to a deadlock through the ordinary replay path.
"$BIN" replay "$WITNESS" --no-cache | grep -q '"outcome": "deadlock"' || {
  echo "error: witness token did not replay to a deadlock" >&2
  exit 1
}
echo "witness replay OK: $WITNESS" | cut -c1-80

echo "tournament smoke OK"
