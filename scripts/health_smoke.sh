#!/usr/bin/env sh
# Health/SLO smoke gate, three phases.
#
# Phase 1 (byte-identity): run the same tiny campaign twice, with and
# without `--slo`. The `--slo` rows must be the plain rows plus exactly
# one injected `health` object — stripping it must reproduce the plain
# JSONL byte-for-byte, so turning health off costs nothing and old
# consumers never see new bytes.
#
# Phase 2 (storm -> breach, end-to-end): start `campaign serve --tcp`
# with an SLO spec, an alert log, a 1s evaluation period, and a live
# Prometheus endpoint. Mint a deadlocking witness token (the paper's
# naive broadcast wedges a 4x3 storm), force it through the server four
# times, and require: every response verdict-stamped, the `health` verb
# reporting a breach on the deadlock-budget objective, the breach
# visible on the Prometheus endpoint (`mdx_health_status 2` plus the
# per-objective burn-rate gauges), `campaign watch --once` rendering the
# degraded view, and the alert log carrying a schema-valid
# pass -> warn/breach transition.
#
# Phase 3 (sentinel): the median/MAD regression sentinel must come up
# clean on the committed BENCH_*.json history, and must exit 1 on a
# synthetic trajectory whose last entry collapses.
#
# Artifacts (under target/ so the work tree stays clean):
#   target/health-smoke-slo.txt        the SLO spec the server loaded
#   target/health-smoke-alerts.jsonl   the structured alert log
#   target/health-smoke-health.json    the breached HealthReport
#   target/health-smoke-metrics.prom   the scraped Prometheus exposition
#   target/health-smoke-watch.txt      the `campaign watch --once` screen
#   target/health-smoke-tcp.stderr     the TCP server's banners
set -eu

BIN=${CAMPAIGN_BIN:-target/release/campaign}
EXP=${EXPERIMENTS_BIN:-target/release/experiments}
OUTDIR=${HEALTH_SMOKE_DIR:-target}
SLO=$OUTDIR/health-smoke-slo.txt
ALERTS=$OUTDIR/health-smoke-alerts.jsonl
HEALTH=$OUTDIR/health-smoke-health.json
PROM=$OUTDIR/health-smoke-metrics.prom
WATCH=$OUTDIR/health-smoke-watch.txt
ERR=$OUTDIR/health-smoke-tcp.stderr
mkdir -p "$OUTDIR"

cat > "$SLO" <<'EOF'
# Health-smoke objectives: a zero-tolerance deadlock budget, a delivery
# floor, and a p99 latency ceiling with an early-warning line.
window fast=3 slow=9
burn fast=2.0 slow=1.0
objective deadlock_budget deadlock_rate ceiling 0.0 budget=0.05
objective delivery delivery_ratio floor 0.9 budget=0.1
objective tail_latency latency_p99 ceiling 500 budget=0.1 warn=400
EOF

# ---- Phase 1: --slo output is plain output plus one key --------------------
"$BIN" run --scheme sr2201 --shape 4x3 --max-faults 0 --seeds 2 \
  --jsonl "$OUTDIR/health-smoke-plain.jsonl" --quiet > /dev/null
"$BIN" run --scheme sr2201 --shape 4x3 --max-faults 0 --seeds 2 \
  --slo "$SLO" --jsonl "$OUTDIR/health-smoke-slo-rows.jsonl" --quiet > /dev/null

python3 - "$OUTDIR/health-smoke-plain.jsonl" "$OUTDIR/health-smoke-slo-rows.jsonl" <<'EOF'
import json, sys

plain = open(sys.argv[1]).read().splitlines()
slo = open(sys.argv[2]).read().splitlines()
assert len(plain) == len(slo) and plain, (len(plain), len(slo))
for p, s in zip(plain, slo):
    row = json.loads(s)
    verdict = row.pop("health")
    assert verdict["status"] in {"pass", "warn", "breach"}, verdict
    assert {v["objective"] for v in verdict["violations"]} <= \
        {"deadlock_budget", "delivery", "tail_latency"}, verdict
    # Re-serializing without the health key must give back the plain row
    # byte-for-byte: the verdict is injected at the output layer, the row
    # structs never change.
    assert json.dumps(row, separators=(",", ":")) == p, (p, s)
print(f"health byte-identity OK: {len(plain)} rows, --slo = plain + health key")
EOF

# ---- Phase 2: storm -> breach over a live server ---------------------------
# Mint a deadlocking witness token first: the naive broadcast scheme
# wedges the 4x3 broadcast storm (the failure fig5 demonstrates).
"$BIN" run --scheme naive-broadcast --shape 4x3 --max-faults 0 --seeds 1 \
  --workloads storm --jsonl "$OUTDIR/health-smoke-naive.jsonl" --quiet \
  > /dev/null 2>&1 || true
TOKEN=$(python3 - "$OUTDIR/health-smoke-naive.jsonl" <<'EOF'
import json, sys
rows = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
dead = [r for r in rows if r["outcome"] == "deadlock"]
assert dead, "naive broadcast produced no deadlock witness"
print(dead[0]["token"])
EOF
)

: > "$ERR"
"$BIN" serve --tcp 127.0.0.1:0 --workers 2 --metrics-addr 127.0.0.1:0 \
  --slo "$SLO" --alert-log "$ALERTS" --slo-every 1 2> "$ERR" &
SRV=$!

i=0
while ! grep -q "listening on" "$ERR" || ! grep -q "metrics on" "$ERR"; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "error: serve --tcp did not come up" >&2
    cat "$ERR" >&2
    kill "$SRV" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
ADDR=$(sed -n 's/^campaign serve: listening on \([^ ]*\).*/\1/p' "$ERR" | head -1)
MADDR=$(sed -n 's/^campaign serve: metrics on \([^ ]*\).*/\1/p' "$ERR" | head -1)

python3 - "$ADDR" "$TOKEN" "$HEALTH" <<'EOF'
import json, socket, sys, time

addr, token, health_out = sys.argv[1], sys.argv[2], sys.argv[3]
host, port = addr.rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=30)
f = sock.makefile("rw")

def rpc(req):
    f.write(json.dumps(req) + "\n")
    f.flush()
    return json.loads(f.readline())

# Four forced deadlock rows: the storm. Every response is verdict-stamped
# from the first line on (pass until the evaluator has seen the damage).
for i in range(4):
    r = rpc({"cmd": "run", "token": token, "id": i, "force": True})
    assert r["kind"] == "row", r
    assert r["row"]["outcome"] == "deadlock", r["row"]["outcome"]
    assert r.get("verdict") in {"pass", "warn", "breach"}, r

# Let the periodic evaluator (1s) tick over the deadlock-rate window.
deadline = time.time() + 15
while True:
    h = rpc({"cmd": "health", "id": 99, "trace": "health-smoke"})
    assert h["kind"] == "health", h
    assert h.get("trace") == "health-smoke", h
    if h["health"]["status"] == "breach" or time.time() > deadline:
        break
    time.sleep(0.5)
report = h["health"]
assert report["status"] == "breach", f"no breach within deadline: {report}"
objectives = {o["id"]: o for o in report["objectives"]}
dl = objectives["deadlock_budget"]
assert dl["status"] == "breach", dl
assert dl["fast_burn"] > 2.0 and dl["slow_burn"] > 1.0, dl
assert h.get("verdict") == "breach", h
open(health_out, "w").write(json.dumps(report, indent=2) + "\n")
print(f"health breach OK: deadlock_budget burn fast={dl['fast_burn']:.1f} "
      f"slow={dl['slow_burn']:.1f}, report in {health_out}")
EOF

# The breach is on the Prometheus endpoint: overall status gauge at 2
# (0 pass / 1 warn / 2 breach) plus per-objective burn-rate gauges.
python3 - "$MADDR" "$PROM" <<'EOF'
import socket, sys

maddr, prom = sys.argv[1], sys.argv[2]
host, port = maddr.rsplit(":", 1)
m = socket.create_connection((host, int(port)), timeout=30)
m.sendall(b"GET /metrics HTTP/1.1\r\nHost: smoke\r\n\r\n")
data = b""
while True:
    chunk = m.recv(65536)
    if not chunk:
        break
    data += chunk
body = data.decode().partition("\r\n\r\n")[2]
open(prom, "w").write(body)
assert "mdx_health_status 2" in body, "overall status gauge is not breach"
for series in ("mdx_slo_burn_rate", "mdx_slo_budget_remaining"):
    assert series in body, f"scrape missing {series}"
assert 'mdx_slo_budget_remaining{objective="deadlock_budget"} 0' in body, \
    "deadlock budget not exhausted on the endpoint"
print(f"health scrape OK: breach visible on the endpoint, scrape in {prom}")
EOF

# The live top-style view renders the same breach in one screen.
"$BIN" watch "$ADDR" --once --no-clear > "$WATCH"
grep -q "health: BREACH" "$WATCH"
grep -q "deadlock_budget" "$WATCH"

python3 - "$ADDR" <<'EOF'
import json, socket, sys
addr = sys.argv[1]
host, port = addr.rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=30)
f = sock.makefile("rw")
f.write(json.dumps({"cmd": "shutdown", "id": 100}) + "\n")
f.flush()
assert json.loads(f.readline())["kind"] == "ok"
EOF
wait "$SRV"

# Alert-log JSONL schema: every line a status transition with burn rates;
# the storm must have produced a pass -> warn/breach edge.
python3 - "$ALERTS" <<'EOF'
import json, sys

alerts = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert alerts, "alert log is empty after a breach"
STATUSES = {"pass", "warn", "breach"}
for a in alerts:
    assert isinstance(a["tick"], int) and a["tick"] >= 0, a
    assert isinstance(a["objective"], str) and a["objective"], a
    assert a["from"] in STATUSES and a["to"] in STATUSES, a
    assert a["from"] != a["to"], a
    assert isinstance(a["fast_burn"], (int, float)), a
    assert isinstance(a["slow_burn"], (int, float)), a
assert any(a["objective"] == "deadlock_budget" and a["from"] == "pass"
           and a["to"] in {"warn", "breach"} for a in alerts), alerts
print(f"alert log OK: {len(alerts)} transition(s), schema valid")
EOF

# ---- Phase 3: the regression sentinel ---------------------------------------
# Clean on the committed history; exit 1 on a synthetic collapse.
"$EXP" sentinel --dir .

python3 - > "$OUTDIR/health-smoke-regressed.json" <<'EOF'
import json
entry = {"figure": "fig9", "recorded_at_epoch_s": 1700000000, "wall_clock_s": 1.0,
         "scenarios": 224, "deadlock_rate": 0.0, "completed_rate": 1.0,
         "throughput": 2.0, "mean_latency": 40.0, "p95_latency": 80.0,
         "sxb_util": 0.3, "idle_tick_fraction": 0.3, "cycles_per_sec": 1e6,
         "p99_queue_wait_s": 0.0, "p99_engine_run_s": 0.0}
entries = []
for i, t in enumerate([2.00, 2.02, 1.98, 2.01, 1.99, 2.00]):
    e = dict(entry, throughput=t, recorded_at_epoch_s=entry["recorded_at_epoch_s"] + i)
    entries.append(e)
bad = dict(entry, throughput=1.0, deadlock_rate=0.25, completed_rate=0.75,
           recorded_at_epoch_s=entry["recorded_at_epoch_s"] + 6)
entries.append(bad)
print(json.dumps({"figure": "fig9", "entries": entries}, indent=2))
EOF
if "$EXP" sentinel "$OUTDIR/health-smoke-regressed.json" > /dev/null 2>&1; then
  echo "error: sentinel passed a synthetic regression" >&2
  exit 1
fi
echo "sentinel OK: clean on committed history, caught the synthetic collapse"

echo "health smoke OK"
