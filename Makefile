# Convenience targets for the SR2201 reproduction.

.PHONY: test experiments trajectory sentinel bench examples doc clippy lint campaign campaign-smoke metrics-demo metrics-serve-demo reconfig-demo reconfig-smoke attribution-smoke serve-smoke tournament-smoke health-smoke spans-demo bench-serve all

test:
	cargo test --workspace

experiments: trajectory
	cargo run --release -p mdx-bench --bin experiments -- --json results all

# Append one metric snapshot each to BENCH_fig9.json / BENCH_fig10.json /
# BENCH_serve.json / BENCH_tournament.json and diff against the previous run.
trajectory:
	cargo run --release -p mdx-bench --bin experiments -- trajectory --dir .

# Median/MAD regression sentinel over the committed BENCH_*.json history:
# exits nonzero when the latest snapshot of any diffed metric deviates
# from its robust baseline in the bad direction. Runs no sweeps.
sentinel:
	cargo run --release -p mdx-bench --bin experiments -- sentinel --dir .

bench:
	cargo bench --workspace

examples:
	cargo run --release --example quickstart
	cargo run --release --example fault_tolerant_routing
	cargo run --release --example broadcast_storm -- 3
	cargo run --release --example topology_explorer -- 8 8
	cargo run --release --example reliability_loop
	cargo run --release --example campaign_witness
	cargo run --release --example attribution_report

doc:
	cargo doc --workspace --no-deps

clippy:
	cargo clippy --workspace --all-targets

lint:
	cargo fmt --check
	cargo clippy --workspace -- -D warnings

# The full acceptance sweep: the paper scheme must be deadlock-free, the
# broken variants must not be.
campaign:
	cargo run --release -p mdx-serve -- run --scheme all --max-faults 1 --seeds 32

# Small deterministic campaign gating the paper scheme on zero deadlocks.
# The flight recorder rides along: any failure auto-dumps a post-mortem.
campaign-smoke:
	cargo run --release -p mdx-serve -- run --scheme sr2201 --max-faults 1 \
		--seeds 4 --fail-on-deadlock --flight-recorder --postmortem-dir postmortems

# Telemetry dashboard: heatmap + stall timeline on the fig10/fig5 scenarios.
metrics-demo:
	cargo run --release --example telemetry_dashboard

# Production telemetry walkthrough: boots `campaign serve --tcp` with a live
# Prometheus endpoint, drives a session, scrapes the exposition, and prints
# the series the session produced.
metrics-serve-demo:
	cargo build --release -p mdx-serve
	cargo run --release --example metrics_scrape

# Live reconfiguration walkthrough: a crossbar dies mid-run, the epoch
# protocol drains/reprograms/resumes, under all three recovery policies.
reconfig-demo:
	cargo run --release --example live_reconfig

# Small deterministic live-fault campaign: every single fault on 4x4x4
# activates at cycle 40; reinject must lose nothing and every transition
# must be free of mixed-epoch wait cycles.
reconfig-smoke:
	cargo run --release -p mdx-serve -- run --scheme sr2201 --shape 4x4x4 \
		--max-faults 1 --seeds 1 --workloads fault-storm \
		--timeline 40 --recovery reinject --fail-on-deadlock --fail-on-loss \
		--jsonl reconfig-smoke.jsonl

# Deterministic attribution gate: the same faulted sweep attributed twice
# must diff clean (zero flagged phase shifts) — the phase decomposition is
# exact and replayable, not sampled. The runner also asserts per-packet
# conservation (sum of phases == latency) on every attributed row.
attribution-smoke:
	cargo run --release -p mdx-serve -- run --scheme sr2201 --shape 4x4x4 \
		--max-faults 1 --seeds 2 --workloads detour --attribution \
		--jsonl attribution-smoke-a.jsonl --quiet
	cargo run --release -p mdx-serve -- run --scheme sr2201 --shape 4x4x4 \
		--max-faults 1 --seeds 2 --workloads detour --attribution \
		--jsonl attribution-smoke-b.jsonl --quiet
	cargo run --release -p mdx-serve -- diff \
		attribution-smoke-a.jsonl attribution-smoke-b.jsonl --fail-on-shift

# Resident-service gate, three phases: (1) pipe a session (two tokens, one
# duplicate, stats, metrics, shutdown) through `campaign serve` on stdio and
# require every line to be a valid response with the duplicate answered from
# the cache; (2) run a TCP session with --metrics-addr and scrape the live
# Prometheus endpoint mid-session; (3) run a traced session with --span-log,
# validate the span-log schema, and require every root span's trace id to be
# echoed on a response line. Artifacts land under target/.
serve-smoke:
	cargo build --release -p mdx-serve
	./scripts/serve_smoke.sh

# Cross-scheme tournament gate: the whole zoo through one small grid —
# every scheme executes on its home topology, incompatible cells skip with
# reasons, the JSONL replays byte-identically, and a deadlocking cell's
# shrunken witness token replays to a deadlock. Artifacts land under target/.
tournament-smoke:
	cargo build --release -p mdx-serve
	./scripts/tournament_smoke.sh

# Health/SLO gate, end to end: `--slo` campaign rows must be the plain
# rows plus one stripped-away `health` key; a deadlock storm against a
# live `campaign serve --slo` must breach the deadlock budget on the
# health verb, the Prometheus endpoint, the `campaign watch` screen, and
# the alert log; the bench sentinel must be clean on the committed
# history and catch a synthetic collapse. Artifacts land under target/.
health-smoke:
	cargo build --release -p mdx-serve -p mdx-bench
	./scripts/health_smoke.sh

# Request-tracing walkthrough: capture a span log from a traced `campaign
# serve` session, then summarize it (critical-path breakdown + slowest
# exemplar traces) and export a Perfetto trace to open at ui.perfetto.dev.
spans-demo:
	cargo build --release -p mdx-serve
	printf '%s\n' \
		'{"cmd":"spec","id":1,"trace":"demo-1","spec":"seed 1\nflits 2\nphase 0..600 uniform rate=0.04\nstorm 200 xbar:0:1\nstorm 420 repair xbar:0:1\nhorizon 1200","shape":[4,4],"seed":5}' \
		'{"cmd":"spec","id":2,"trace":"demo-2","spec":"seed 1\nflits 2\nphase 0..600 uniform rate=0.04\nstorm 200 xbar:0:1\nstorm 420 repair xbar:0:1\nhorizon 1200","shape":[4,4],"seed":5}' \
		'{"cmd":"shutdown","id":3}' \
		| target/release/campaign serve --windows 100 \
			--span-log target/spans-demo.jsonl --span-sample 1
	target/release/campaign spans target/spans-demo.jsonl \
		--perfetto target/spans-demo-perfetto.json

# In-process service throughput: tokens/sec cold, cache-hit latency hot.
# Exits nonzero when a duplicate token misses the cache.
bench-serve:
	cargo run --release -p mdx-serve -- bench-serve --tokens 100

all: test experiments bench doc
