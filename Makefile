# Convenience targets for the SR2201 reproduction.

.PHONY: test experiments bench examples doc clippy all

test:
	cargo test --workspace

experiments:
	cargo run --release -p mdx-bench --bin experiments -- --json results all

bench:
	cargo bench --workspace

examples:
	cargo run --release --example quickstart
	cargo run --release --example fault_tolerant_routing
	cargo run --release --example broadcast_storm -- 3
	cargo run --release --example topology_explorer -- 8 8
	cargo run --release --example reliability_loop

doc:
	cargo doc --workspace --no-deps

clippy:
	cargo clippy --workspace --all-targets

all: test experiments bench doc
